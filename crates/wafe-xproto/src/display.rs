//! The display: window tree, event queue, injection, grabs, selections.

use std::collections::{HashMap, VecDeque};

use crate::color::{Pixel, WHITE};
use crate::damage::{Damage, DamageTracker};
use crate::event::{Event, EventKind, Modifiers};
use crate::font::FontDb;
use crate::framebuffer::{AsciiCanvas, DrawOp, Framebuffer};
use crate::geometry::{Point, Rect};
use crate::keysym::{key_for_char, key_for_name, KeyInfo};
use crate::window::{Window, WindowId};

/// An interned atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Atom(pub u32);

/// Grab kinds, matching `XtGrabKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrabKind {
    /// No grab: events flow normally (`XtGrabNone`).
    None,
    /// Events are confined to the grab subtree (`XtGrabExclusive`).
    Exclusive,
    /// Spring-loaded addition to the grab list (`XtGrabNonexclusive`).
    Nonexclusive,
}

/// Creation-time attributes for a window.
#[derive(Debug, Clone)]
pub struct WindowAttributes {
    /// Geometry relative to the parent.
    pub rect: Rect,
    /// Border width in pixels.
    pub border_width: u32,
    /// Background fill.
    pub background: Pixel,
    /// True to bypass window management (menus, override shells).
    pub override_redirect: bool,
}

impl Default for WindowAttributes {
    fn default() -> Self {
        WindowAttributes {
            rect: Rect::new(0, 0, 100, 100),
            border_width: 1,
            background: WHITE,
            override_redirect: false,
        }
    }
}

/// A simulated X display (one screen, TrueColor).
pub struct Display {
    /// The display name it was opened with (e.g. `:0`, `dec4:0`).
    pub name: String,
    windows: HashMap<WindowId, Window>,
    root: WindowId,
    next_id: u64,
    queue: VecDeque<Event>,
    serial: u64,
    pointer: Point,
    pointer_window: WindowId,
    focus: Option<WindowId>,
    grabs: Vec<(WindowId, GrabKind)>,
    /// The font database for this display.
    pub fonts: FontDb,
    atoms: Vec<String>,
    selections: HashMap<Atom, (WindowId, String)>,
    framebuffer: Framebuffer,
    blocked_events: u64,
    held_modifiers: Modifiers,
    /// Damage pending since the last flush: every visible mutation
    /// records a rectangle here; [`Self::flush`] takes and repaints it.
    damage: DamageTracker,
    /// Flushed damage not yet shipped to an attached display client —
    /// frames coalesce here when the outbound queue is busy.
    pending_frame: DamageTracker,
    /// A remote display client is attached: flushes composite into the
    /// persistent framebuffer and accumulate frame damage.
    compositing: bool,
    /// Monotonic sequence number of shipped display frames.
    frame_seq: u64,
}

/// Default screen size.
pub const SCREEN_W: u32 = 1024;
/// Default screen height.
pub const SCREEN_H: u32 = 768;

impl Display {
    /// Opens a display with an empty root window.
    pub fn open(name: &str) -> Self {
        let root = WindowId(1);
        let mut windows = HashMap::new();
        let mut root_win = Window::new(root, None, Rect::new(0, 0, SCREEN_W, SCREEN_H));
        root_win.mapped = true;
        root_win.background = 0xbebebe; // Root weave grey.
        windows.insert(root, root_win);
        Display {
            name: name.to_string(),
            windows,
            root,
            next_id: 2,
            queue: VecDeque::new(),
            serial: 0,
            pointer: Point::new(0, 0),
            pointer_window: root,
            focus: None,
            grabs: Vec::new(),
            fonts: FontDb::new(),
            atoms: Vec::new(),
            selections: HashMap::new(),
            // Materialized only when pixels are actually needed (a
            // display client attaches, or `framebuffer()` is read):
            // headless sessions (wafe-serve runs thousands) never
            // composite, and the 1024x768 pixel buffer is ~3 MB per
            // display. A headless flush only moves damage rectangles.
            framebuffer: Framebuffer::new(0, 0, 0xbebebe),
            blocked_events: 0,
            held_modifiers: Modifiers::NONE,
            damage: {
                let mut d = DamageTracker::new(SCREEN_W, SCREEN_H);
                d.add_full();
                d
            },
            pending_frame: DamageTracker::new(SCREEN_W, SCREEN_H),
            compositing: false,
            frame_seq: 0,
        }
    }

    /// The root window.
    pub fn root(&self) -> WindowId {
        self.root
    }

    /// Number of live (non-destroyed) windows, including the root.
    pub fn window_count(&self) -> usize {
        self.windows.values().filter(|w| !w.destroyed).count()
    }

    /// Events dropped because an exclusive grab confined input.
    pub fn blocked_event_count(&self) -> u64 {
        self.blocked_events
    }

    // ----- window management -------------------------------------------

    /// Creates a window.
    pub fn create_window(&mut self, parent: WindowId, attrs: WindowAttributes) -> WindowId {
        let id = WindowId(self.next_id);
        self.next_id += 1;
        let mut w = Window::new(id, Some(parent), attrs.rect);
        w.border_width = attrs.border_width;
        w.background = attrs.background;
        w.override_redirect = attrs.override_redirect;
        self.windows.insert(id, w);
        if let Some(p) = self.windows.get_mut(&parent) {
            p.children.push(id);
        }
        id
    }

    /// Records the on-screen footprint of a window (content plus
    /// border) as damaged, if it is currently visible.
    fn damage_window(&mut self, id: WindowId) {
        let border = match self.windows.get(&id) {
            Some(w) if !w.destroyed => w.border_width,
            _ => return,
        };
        if !self.is_viewable(id) {
            return;
        }
        let r = self.abs_rect(id).inflated(border);
        self.damage.add(r);
    }

    /// Destroys a window and its subtree, generating `DestroyNotify` for
    /// each, depth-first.
    pub fn destroy_window(&mut self, id: WindowId) {
        if id == self.root {
            return;
        }
        self.damage_window(id);
        let children = match self.windows.get(&id) {
            Some(w) if !w.destroyed => w.children.clone(),
            _ => return,
        };
        for c in children {
            self.destroy_window(c);
        }
        if let Some(w) = self.windows.get_mut(&id) {
            w.destroyed = true;
            w.mapped = false;
            let parent = w.parent;
            if let Some(p) = parent.and_then(|p| self.windows.get_mut(&p)) {
                p.children.retain(|&c| c != id);
            }
        }
        self.grabs.retain(|(g, _)| *g != id);
        if self.focus == Some(id) {
            self.focus = None;
        }
        self.push(Event::new(EventKind::DestroyNotify, id));
    }

    /// Maps a window, generating `MapNotify` and an `Expose`.
    pub fn map_window(&mut self, id: WindowId) {
        let ok = matches!(self.windows.get(&id), Some(w) if !w.destroyed && !w.mapped);
        if !ok {
            return;
        }
        self.windows.get_mut(&id).unwrap().mapped = true;
        self.damage_window(id);
        self.push(Event::new(EventKind::MapNotify, id));
        self.expose(id);
        self.update_pointer_window();
    }

    /// Unmaps a window, generating `UnmapNotify`.
    pub fn unmap_window(&mut self, id: WindowId) {
        let ok = matches!(self.windows.get(&id), Some(w) if w.mapped);
        if !ok {
            return;
        }
        self.damage_window(id);
        self.windows.get_mut(&id).unwrap().mapped = false;
        self.push(Event::new(EventKind::UnmapNotify, id));
        self.update_pointer_window();
    }

    /// True if a window is mapped (and every ancestor is, making it
    /// viewable).
    pub fn is_viewable(&self, id: WindowId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            match self.windows.get(&c) {
                Some(w) if w.mapped && !w.destroyed => cur = w.parent,
                _ => return false,
            }
        }
        true
    }

    /// Moves/resizes a window, generating `ConfigureNotify` (and an
    /// `Expose` when the size changed).
    pub fn configure_window(&mut self, id: WindowId, rect: Rect) {
        let changed = match self.windows.get(&id) {
            Some(w) if !w.destroyed => w.rect != rect,
            _ => return,
        };
        if changed {
            self.damage_window(id); // Old footprint: parent must repaint it.
        }
        let resized = match self.windows.get_mut(&id) {
            Some(w) => {
                let resized = w.rect.w != rect.w || w.rect.h != rect.h;
                w.rect = rect;
                resized
            }
            None => return,
        };
        if changed {
            self.damage_window(id); // New footprint.
            let mut e = Event::new(EventKind::ConfigureNotify, id);
            e.x = rect.x;
            e.y = rect.y;
            self.push(e);
            if resized && self.is_viewable(id) {
                self.expose(id);
            }
            self.update_pointer_window();
        }
    }

    /// Reads back a window's geometry.
    pub fn window_rect(&self, id: WindowId) -> Option<Rect> {
        self.windows
            .get(&id)
            .filter(|w| !w.destroyed)
            .map(|w| w.rect)
    }

    /// Window border width.
    pub fn border_width(&self, id: WindowId) -> u32 {
        self.windows.get(&id).map(|w| w.border_width).unwrap_or(0)
    }

    /// Sets background/border attributes.
    pub fn set_window_attrs(
        &mut self,
        id: WindowId,
        background: Option<Pixel>,
        border_pixel: Option<Pixel>,
        border_width: Option<u32>,
    ) {
        // Damage only on a real change: the toolkit re-syncs attributes
        // for whole trees after a layout pass, and an unchanged window
        // must not dirty the screen.
        let changed = match self.windows.get(&id) {
            Some(w) => {
                background.is_some_and(|b| b != w.background)
                    || border_pixel.is_some_and(|b| b != w.border_pixel)
                    || border_width.is_some_and(|b| b != w.border_width)
            }
            None => false,
        };
        if !changed {
            return;
        }
        self.damage_window(id); // Old footprint (border width may shrink).
        if let Some(w) = self.windows.get_mut(&id) {
            if let Some(b) = background {
                w.background = b;
            }
            if let Some(b) = border_pixel {
                w.border_pixel = b;
            }
            if let Some(b) = border_width {
                w.border_width = b;
            }
        }
        self.damage_window(id);
    }

    /// Raises a window to the top of its siblings' stacking order.
    pub fn raise_window(&mut self, id: WindowId) {
        self.damage_window(id);
        let parent = match self.windows.get(&id) {
            Some(w) => w.parent,
            None => return,
        };
        if let Some(p) = parent.and_then(|p| self.windows.get_mut(&p)) {
            p.children.retain(|&c| c != id);
            p.children.push(id);
        }
    }

    /// The absolute (root-relative) position of a window's origin.
    pub fn abs_position(&self, id: WindowId) -> Point {
        let mut p = Point::new(0, 0);
        let mut cur = Some(id);
        while let Some(c) = cur {
            match self.windows.get(&c) {
                Some(w) => {
                    p = p.offset(
                        w.rect.x + w.border_width as i32,
                        w.rect.y + w.border_width as i32,
                    );
                    cur = w.parent;
                }
                None => break,
            }
        }
        p
    }

    /// The absolute rectangle of a window.
    pub fn abs_rect(&self, id: WindowId) -> Rect {
        let p = self.abs_position(id);
        let r = self.window_rect(id).unwrap_or_default();
        Rect::new(p.x, p.y, r.w, r.h)
    }

    /// The deepest viewable window containing the root-relative point.
    pub fn window_at(&self, p: Point) -> WindowId {
        self.descend(self.root, p)
    }

    fn descend(&self, win: WindowId, p: Point) -> WindowId {
        let w = &self.windows[&win];
        // Children are stored bottom-most first; hit-test topmost first.
        for &c in w.children.iter().rev() {
            match self.windows.get(&c) {
                Some(cw) if cw.mapped && !cw.destroyed => {}
                _ => continue,
            }
            let abs = self.abs_rect(c);
            if abs.contains(p) {
                return self.descend(c, p);
            }
        }
        win
    }

    // ----- drawing ------------------------------------------------------

    /// Replaces a window's retained display list. Damages the window
    /// only when the list actually changed — redisplay passes rebuild
    /// whole trees, and identical output must not dirty the screen.
    pub fn set_display_list(&mut self, id: WindowId, ops: Vec<DrawOp>) {
        if let Some(w) = self.windows.get_mut(&id) {
            if w.display_list == ops {
                return;
            }
            w.display_list = ops;
        }
        self.damage_window(id);
    }

    /// Generates `Expose` for a window and its viewable descendants.
    pub fn expose(&mut self, id: WindowId) {
        if !self.is_viewable(id) {
            return;
        }
        let rect = self.window_rect(id).unwrap_or_default();
        let mut e = Event::new(EventKind::Expose, id);
        e.x = 0;
        e.y = 0;
        e.x_root = rect.w as i32; // Expose carries width/height in x_root/y_root slots.
        e.y_root = rect.h as i32;
        self.push(e);
        let children = self.windows[&id].children.clone();
        for c in children {
            self.expose(c);
        }
    }

    /// Composites pending damage into the framebuffer. Damage tracked
    /// twice over: a no-op when nothing changed since the last flush,
    /// and only the damaged regions are repainted when something did.
    /// A headless display (no client attached, pixels never read) only
    /// moves damage rectangles here — the pixel buffer stays
    /// unallocated.
    pub fn flush(&mut self) {
        if !self.damage.is_dirty() {
            return;
        }
        let damage = self.damage.take();
        if self.compositing || !self.framebuffer.is_empty() {
            self.repaint(&damage);
        }
        // Whatever changed on screen is owed to an attached client.
        self.pending_frame.merge(&damage);
    }

    /// Repaints the damaged regions into the persistent framebuffer,
    /// materializing it (with a full paint) on first use. `paint`
    /// starts at the root, whose background covers every clip, so a
    /// damaged region needs no separate clear.
    fn repaint(&mut self, damage: &Damage) {
        let mut fb = std::mem::replace(&mut self.framebuffer, Framebuffer::new(0, 0, 0));
        let first = fb.is_empty();
        if first {
            fb = Framebuffer::new(SCREEN_W, SCREEN_H, 0xbebebe);
        }
        if first || damage.full {
            self.paint(self.root, Rect::new(0, 0, SCREEN_W, SCREEN_H), &mut fb);
        } else {
            for r in &damage.rects {
                self.paint(self.root, *r, &mut fb);
            }
        }
        self.framebuffer = fb;
    }

    fn paint(&self, id: WindowId, clip: Rect, fb: &mut Framebuffer) {
        let w = &self.windows[&id];
        if !w.mapped || w.destroyed {
            return;
        }
        let abs = self.abs_rect(id);
        let clip = match abs.intersect(&clip) {
            Some(c) => c,
            None => return,
        };
        if w.border_width > 0 {
            let b = w.border_width as i32;
            let border = Rect::new(
                abs.x - b,
                abs.y - b,
                abs.w + 2 * w.border_width,
                abs.h + 2 * w.border_width,
            );
            fb.draw_rect(border, border, w.border_pixel);
        }
        fb.fill_rect(abs, clip, w.background);
        for op in &w.display_list {
            match op {
                DrawOp::FillRect { rect, pixel } => {
                    fb.fill_rect(rect.translated(abs.x, abs.y), clip, *pixel);
                }
                DrawOp::DrawRect { rect, pixel } => {
                    fb.draw_rect(rect.translated(abs.x, abs.y), clip, *pixel);
                }
                DrawOp::DrawLine {
                    x1,
                    y1,
                    x2,
                    y2,
                    pixel,
                } => {
                    fb.draw_line(abs.x + x1, abs.y + y1, abs.x + x2, abs.y + y2, clip, *pixel);
                }
                DrawOp::DrawText {
                    x,
                    y,
                    text,
                    pixel,
                    font,
                } => {
                    let f = self.fonts.get(*font);
                    fb.draw_text_blocks(abs.x + x, abs.y + y, text, clip, *pixel, f.char_width);
                }
                DrawOp::PutImage {
                    x,
                    y,
                    w: iw,
                    h: ih,
                    data,
                } => {
                    fb.put_image(abs.x + x, abs.y + y, *iw, *ih, data, clip);
                }
            }
        }
        for &c in &w.children.clone() {
            self.paint(c, clip, fb);
        }
    }

    /// Access to the composited framebuffer (call [`Self::flush`]
    /// first). Reading the pixels materializes the buffer on first use;
    /// until then a display is pure bookkeeping.
    pub fn framebuffer(&mut self) -> &Framebuffer {
        if self.framebuffer.is_empty() {
            self.repaint(&Damage::full());
        }
        &self.framebuffer
    }

    // ----- remote display (frame damage) --------------------------------

    /// Turns compositing on or off. While on, every flush repaints the
    /// persistent framebuffer and accumulates frame damage for an
    /// attached remote client; turning it on schedules a full repaint
    /// so the client's first frame covers the whole screen.
    pub fn set_compositing(&mut self, on: bool) {
        self.compositing = on;
        if on {
            self.damage.add_full();
            self.pending_frame = DamageTracker::new(SCREEN_W, SCREEN_H);
        }
    }

    /// Whether a remote display client is compositing this display.
    pub fn compositing(&self) -> bool {
        self.compositing
    }

    /// Whether the pixel buffer has been allocated.
    pub fn is_materialized(&self) -> bool {
        !self.framebuffer.is_empty()
    }

    /// Whether flushed damage is waiting to be shipped as a frame.
    pub fn has_pending_frame(&self) -> bool {
        self.pending_frame.is_dirty()
    }

    /// Takes the accumulated frame damage for encoding.
    pub fn take_frame_damage(&mut self) -> Damage {
        self.pending_frame.take()
    }

    /// Requests that the next shipped frame cover the whole screen —
    /// the client-side resync path after a rejected frame.
    pub fn request_full_frame(&mut self) {
        self.damage.add_full();
    }

    /// Sequence number of the last allocated display frame.
    pub fn frame_seq(&self) -> u64 {
        self.frame_seq
    }

    /// Allocates the next frame sequence number.
    pub fn next_frame_seq(&mut self) -> u64 {
        self.frame_seq += 1;
        self.frame_seq
    }

    /// The damage state a session snapshot carries: `(frame_seq,
    /// compositing, pending-full flag, pending rects)`. Un-flushed
    /// damage is flushed into the pending frame first so nothing is
    /// lost across a park.
    pub fn damage_state(&mut self) -> (u64, bool, bool, Vec<Rect>) {
        self.flush();
        (
            self.frame_seq,
            self.compositing,
            self.pending_frame.is_full(),
            self.pending_frame.rects().to_vec(),
        )
    }

    /// Restores the state captured by [`Self::damage_state`].
    pub fn restore_damage_state(
        &mut self,
        seq: u64,
        compositing: bool,
        full: bool,
        rects: &[Rect],
    ) {
        self.frame_seq = seq;
        self.compositing = compositing;
        self.pending_frame = DamageTracker::new(SCREEN_W, SCREEN_H);
        if full {
            self.pending_frame.add_full();
        }
        for r in rects {
            self.pending_frame.add(*r);
        }
    }

    /// Renders an ASCII screenshot of the viewable window tree — the
    /// reproduction's stand-in for the paper's figures. Two passes:
    /// window boxes first, then all text, so borders never overwrite
    /// labels.
    pub fn snapshot_ascii(&self, area: Rect) -> String {
        let mut canvas = AsciiCanvas::new(area.w, area.h);
        self.snap(self.root, area, &mut canvas, false);
        self.snap(self.root, area, &mut canvas, true);
        canvas.render()
    }

    fn snap(&self, id: WindowId, area: Rect, canvas: &mut AsciiCanvas, text_pass: bool) {
        let w = &self.windows[&id];
        if !w.mapped || w.destroyed {
            return;
        }
        let abs = self.abs_rect(id);
        if !text_pass && id != self.root && w.border_width > 0 {
            canvas.box_at_pixel(abs.translated(-area.x, -area.y));
        }
        if text_pass {
            for op in &w.display_list {
                if let DrawOp::DrawText {
                    x, y, text, font, ..
                } = op
                {
                    let f = self.fonts.get(*font);
                    canvas.text_at_pixel(
                        abs.x + x - area.x,
                        abs.y + y - f.ascent as i32 / 2 - area.y,
                        text,
                    );
                }
            }
        }
        for &c in &w.children {
            self.snap(c, area, canvas, text_pass);
        }
    }

    // ----- event queue and injection -------------------------------------

    fn push(&mut self, mut e: Event) {
        self.serial += 1;
        e.serial = self.serial;
        self.queue.push_back(e);
    }

    /// Takes the next queued event.
    pub fn next_event(&mut self) -> Option<Event> {
        self.queue.pop_front()
    }

    /// Number of queued events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Current pointer position (root-relative).
    pub fn pointer(&self) -> Point {
        self.pointer
    }

    /// Assigns keyboard focus.
    pub fn set_input_focus(&mut self, id: Option<WindowId>) {
        self.focus = id;
    }

    fn update_pointer_window(&mut self) {
        let now = self.window_at(self.pointer);
        let was = self.pointer_window;
        if now != was {
            // Leave the old, enter the new (no virtual crossing chain —
            // sufficient for the toolkit's translation matching).
            if self.windows.contains_key(&was) {
                let abs = self.abs_rect(was);
                let mut e = Event::new(EventKind::LeaveNotify, was);
                e.x = self.pointer.x - abs.x;
                e.y = self.pointer.y - abs.y;
                e.x_root = self.pointer.x;
                e.y_root = self.pointer.y;
                e.modifiers = self.held_modifiers;
                self.deliver(e);
            }
            self.pointer_window = now;
            let abs = self.abs_rect(now);
            let mut e = Event::new(EventKind::EnterNotify, now);
            e.x = self.pointer.x - abs.x;
            e.y = self.pointer.y - abs.y;
            e.x_root = self.pointer.x;
            e.y_root = self.pointer.y;
            e.modifiers = self.held_modifiers;
            self.deliver(e);
        }
    }

    /// Moves the pointer, generating Enter/Leave (and Motion on the
    /// target window).
    pub fn inject_pointer_move(&mut self, x: i32, y: i32) {
        self.pointer = Point::new(x, y);
        self.update_pointer_window();
        let target = self.pointer_window;
        let abs = self.abs_rect(target);
        let mut e = Event::new(EventKind::MotionNotify, target);
        e.x = x - abs.x;
        e.y = y - abs.y;
        e.x_root = x;
        e.y_root = y;
        e.modifiers = self.held_modifiers;
        self.deliver(e);
    }

    /// Presses or releases a pointer button at the current position.
    pub fn inject_button(&mut self, button: u8, press: bool) {
        let target = self.pointer_window;
        let abs = self.abs_rect(target);
        let mut e = Event::new(
            if press {
                EventKind::ButtonPress
            } else {
                EventKind::ButtonRelease
            },
            target,
        );
        e.button = button;
        e.x = self.pointer.x - abs.x;
        e.y = self.pointer.y - abs.y;
        e.x_root = self.pointer.x;
        e.y_root = self.pointer.y;
        e.modifiers = self.held_modifiers;
        self.deliver(e);
    }

    /// Convenience: move the pointer and click (press + release).
    pub fn inject_click(&mut self, x: i32, y: i32, button: u8) {
        self.inject_pointer_move(x, y);
        self.inject_button(button, true);
        self.inject_button(button, false);
    }

    fn key_event(&mut self, info: &KeyInfo, press: bool) {
        let target = self.focus.unwrap_or(self.pointer_window);
        let abs = self.abs_rect(target);
        let mut e = Event::new(
            if press {
                EventKind::KeyPress
            } else {
                EventKind::KeyRelease
            },
            target,
        );
        e.keycode = info.keycode;
        e.keysym = info.keysym.clone();
        e.ascii = info.ascii.clone();
        e.x = self.pointer.x - abs.x;
        e.y = self.pointer.y - abs.y;
        e.x_root = self.pointer.x;
        e.y_root = self.pointer.y;
        e.modifiers = self.held_modifiers;
        self.deliver(e);
    }

    /// Types a string: every character becomes its key press/release
    /// sequence, with `Shift_L` wrapped around shifted symbols — typing
    /// `w!` reproduces the paper's `w`, `Shift_L`, `exclam` sequence.
    pub fn inject_key_text(&mut self, text: &str) {
        for c in text.chars() {
            let info = match key_for_char(c) {
                Some(i) => i,
                None => continue,
            };
            if info.shifted {
                let shift = key_for_name("Shift_L").unwrap();
                self.held_modifiers.shift = false;
                self.key_event(&shift, true);
                self.held_modifiers.shift = true;
                self.key_event(&info, true);
                self.key_event(&info, false);
                self.held_modifiers.shift = false;
                self.key_event(&shift, false);
            } else {
                self.key_event(&info, true);
                self.key_event(&info, false);
            }
        }
    }

    /// Presses (and releases) a named key, e.g. `Return`.
    pub fn inject_key_named(&mut self, name: &str, modifiers: Modifiers) {
        if let Some(info) = key_for_name(name) {
            let saved = self.held_modifiers;
            self.held_modifiers = modifiers;
            self.key_event(&info, true);
            self.key_event(&info, false);
            self.held_modifiers = saved;
        }
    }

    fn deliver(&mut self, e: Event) {
        if self.grab_allows(e.window) {
            self.push(e);
        } else {
            self.blocked_events += 1;
        }
    }

    fn grab_allows(&self, target: WindowId) -> bool {
        // Find the most recent exclusive grab; targets must descend from
        // it or from a later (spring-loaded) grab entry.
        let last_exclusive = self
            .grabs
            .iter()
            .rposition(|(_, k)| *k == GrabKind::Exclusive);
        let start = match last_exclusive {
            Some(i) => i,
            None => return true, // Only nonexclusive (or no) grabs: all events flow.
        };
        self.grabs[start..]
            .iter()
            .any(|(g, _)| self.is_ancestor_or_self(*g, target))
    }

    fn is_ancestor_or_self(&self, anc: WindowId, mut w: WindowId) -> bool {
        loop {
            if w == anc {
                return true;
            }
            match self.windows.get(&w).and_then(|x| x.parent) {
                Some(p) => w = p,
                None => return false,
            }
        }
    }

    // ----- grabs ----------------------------------------------------------

    /// Adds a window to the grab list (`XtAddGrab`).
    pub fn add_grab(&mut self, id: WindowId, kind: GrabKind) {
        if kind != GrabKind::None {
            self.grabs.push((id, kind));
        }
    }

    /// Removes a window (and everything stacked above it) from the grab
    /// list (`XtRemoveGrab`).
    pub fn remove_grab(&mut self, id: WindowId) {
        if let Some(pos) = self.grabs.iter().position(|(g, _)| *g == id) {
            self.grabs.truncate(pos);
        }
    }

    /// Current grab stack depth.
    pub fn grab_depth(&self) -> usize {
        self.grabs.len()
    }

    // ----- atoms and selections --------------------------------------------

    /// Interns an atom by name.
    pub fn intern_atom(&mut self, name: &str) -> Atom {
        if let Some(i) = self.atoms.iter().position(|a| a == name) {
            return Atom(i as u32);
        }
        self.atoms.push(name.to_string());
        Atom((self.atoms.len() - 1) as u32)
    }

    /// Name of an interned atom.
    pub fn atom_name(&self, atom: Atom) -> Option<&str> {
        self.atoms.get(atom.0 as usize).map(String::as_str)
    }

    /// Takes ownership of a selection with its current value.
    pub fn own_selection(&mut self, atom: Atom, owner: WindowId, value: String) {
        self.selections.insert(atom, (owner, value));
    }

    /// Reads a selection's value.
    pub fn get_selection(&self, atom: Atom) -> Option<&str> {
        self.selections.get(&atom).map(|(_, v)| v.as_str())
    }

    /// Clears a selection if owned by `owner`.
    pub fn clear_selection(&mut self, atom: Atom, owner: WindowId) {
        if self.selections.get(&atom).map(|(o, _)| *o) == Some(owner) {
            self.selections.remove(&atom);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Display, WindowId, WindowId) {
        let mut d = Display::open(":0");
        let top = d.create_window(
            d.root(),
            WindowAttributes {
                rect: Rect::new(100, 100, 200, 150),
                ..Default::default()
            },
        );
        let child = d.create_window(
            top,
            WindowAttributes {
                rect: Rect::new(10, 10, 50, 20),
                ..Default::default()
            },
        );
        d.map_window(top);
        d.map_window(child);
        while d.next_event().is_some() {}
        (d, top, child)
    }

    #[test]
    fn create_map_generates_events() {
        let mut d = Display::open(":0");
        let w = d.create_window(d.root(), WindowAttributes::default());
        d.map_window(w);
        let e1 = d.next_event().unwrap();
        assert_eq!(e1.kind, EventKind::MapNotify);
        let e2 = d.next_event().unwrap();
        assert_eq!(e2.kind, EventKind::Expose);
        assert_eq!(e2.window, w);
    }

    #[test]
    fn child_not_viewable_until_parent_mapped() {
        let mut d = Display::open(":0");
        let p = d.create_window(d.root(), WindowAttributes::default());
        let c = d.create_window(p, WindowAttributes::default());
        d.map_window(c);
        assert!(!d.is_viewable(c));
        d.map_window(p);
        assert!(d.is_viewable(c));
    }

    #[test]
    fn window_at_finds_deepest() {
        let (d, top, child) = setup();
        // Child occupies (111..161, 111..131) in root coords (borders 1px).
        assert_eq!(d.window_at(Point::new(120, 120)), child);
        assert_eq!(d.window_at(Point::new(250, 200)), top);
        assert_eq!(d.window_at(Point::new(5, 5)), d.root());
    }

    #[test]
    fn click_delivers_relative_coords() {
        let (mut d, _, child) = setup();
        d.inject_click(120, 120, 1);
        let events: Vec<Event> = std::iter::from_fn(|| d.next_event()).collect();
        let press = events
            .iter()
            .find(|e| e.kind == EventKind::ButtonPress)
            .unwrap();
        assert_eq!(press.window, child);
        assert_eq!(press.button, 1);
        assert_eq!(press.x_root, 120);
        assert_eq!(press.y_root, 120);
        // abs position of child = 100+1 (top border) + 10 + 1 (child border) = 112.
        assert_eq!(press.x, 120 - 112);
        assert!(events.iter().any(|e| e.kind == EventKind::ButtonRelease));
    }

    #[test]
    fn pointer_move_generates_enter_leave() {
        let (mut d, top, child) = setup();
        d.inject_pointer_move(120, 120); // into child
        d.inject_pointer_move(250, 200); // into top (out of child)
        let events: Vec<Event> = std::iter::from_fn(|| d.next_event()).collect();
        let enters: Vec<&Event> = events
            .iter()
            .filter(|e| e.kind == EventKind::EnterNotify)
            .collect();
        let leaves: Vec<&Event> = events
            .iter()
            .filter(|e| e.kind == EventKind::LeaveNotify)
            .collect();
        assert!(enters.iter().any(|e| e.window == child));
        assert!(enters.iter().any(|e| e.window == top));
        assert!(leaves.iter().any(|e| e.window == child));
    }

    #[test]
    fn key_text_with_shift_sequence() {
        let (mut d, _, child) = setup();
        d.inject_pointer_move(120, 120);
        while d.next_event().is_some() {}
        d.set_input_focus(Some(child));
        d.inject_key_text("w!");
        let presses: Vec<Event> = std::iter::from_fn(|| d.next_event())
            .filter(|e| e.kind == EventKind::KeyPress)
            .collect();
        let syms: Vec<&str> = presses.iter().map(|e| e.keysym.as_str()).collect();
        assert_eq!(syms, vec!["w", "Shift_L", "exclam"]);
        assert!(presses[2].modifiers.shift);
        assert!(!presses[0].modifiers.shift);
    }

    #[test]
    fn exclusive_grab_blocks_outside_events() {
        let (mut d, _top, _child) = setup();
        let menu = d.create_window(
            d.root(),
            WindowAttributes {
                rect: Rect::new(400, 400, 100, 100),
                ..Default::default()
            },
        );
        d.map_window(menu);
        while d.next_event().is_some() {}
        d.add_grab(menu, GrabKind::Exclusive);
        // Click inside the menu: delivered.
        d.inject_click(450, 450, 1);
        let got: Vec<Event> = std::iter::from_fn(|| d.next_event()).collect();
        assert!(got
            .iter()
            .any(|e| e.kind == EventKind::ButtonPress && e.window == menu));
        // Click outside: blocked.
        let blocked_before = d.blocked_event_count();
        d.inject_click(120, 120, 1);
        assert!(d.blocked_event_count() > blocked_before);
        assert!(d.next_event().into_iter().all(|e| e.window == menu));
        // Remove the grab: events flow again.
        d.remove_grab(menu);
        while d.next_event().is_some() {}
        d.inject_click(120, 120, 1);
        assert!(std::iter::from_fn(|| d.next_event()).any(|e| e.kind == EventKind::ButtonPress));
    }

    #[test]
    fn nonexclusive_grab_allows_all() {
        let (mut d, _top, child) = setup();
        let menu = d.create_window(d.root(), WindowAttributes::default());
        d.map_window(menu);
        while d.next_event().is_some() {}
        d.add_grab(menu, GrabKind::Nonexclusive);
        d.inject_click(120, 120, 1);
        assert!(std::iter::from_fn(|| d.next_event())
            .any(|e| e.kind == EventKind::ButtonPress && e.window == child));
    }

    #[test]
    fn destroy_removes_subtree() {
        let (mut d, top, child) = setup();
        let before = d.window_count();
        d.destroy_window(top);
        assert_eq!(d.window_count(), before - 2);
        assert!(d.window_rect(child).is_none());
        let kinds: Vec<EventKind> = std::iter::from_fn(|| d.next_event())
            .map(|e| e.kind)
            .collect();
        assert_eq!(
            kinds
                .iter()
                .filter(|k| **k == EventKind::DestroyNotify)
                .count(),
            2
        );
    }

    #[test]
    fn configure_generates_events() {
        let (mut d, top, _) = setup();
        d.configure_window(top, Rect::new(100, 100, 300, 150));
        let kinds: Vec<EventKind> = std::iter::from_fn(|| d.next_event())
            .map(|e| e.kind)
            .collect();
        assert!(kinds.contains(&EventKind::ConfigureNotify));
        assert!(kinds.contains(&EventKind::Expose));
        // Same geometry again: no event.
        d.configure_window(top, Rect::new(100, 100, 300, 150));
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn flush_composites_background() {
        let (mut d, top, _) = setup();
        d.set_window_attrs(top, Some(0xff0000), None, None);
        d.flush();
        let fb = d.framebuffer();
        // A pixel inside top (but outside child) is red.
        assert_eq!(fb.get(250, 200), 0xff0000);
        // A pixel outside is root grey.
        assert_eq!(fb.get(5, 5), 0xbebebe);
    }

    #[test]
    fn display_list_text_in_snapshot() {
        let (mut d, top, _) = setup();
        let font = d.fonts.default_font();
        d.set_display_list(
            top,
            vec![DrawOp::DrawText {
                x: 8,
                y: 72,
                text: "hello".into(),
                pixel: 0,
                font,
            }],
        );
        let snap = d.snapshot_ascii(Rect::new(0, 0, 400, 300));
        assert!(snap.contains("hello"), "snapshot was:\n{snap}");
    }

    #[test]
    fn atoms_and_selections() {
        let mut d = Display::open(":0");
        let a = d.intern_atom("PRIMARY");
        let b = d.intern_atom("PRIMARY");
        assert_eq!(a, b);
        assert_eq!(d.atom_name(a), Some("PRIMARY"));
        let w = d.create_window(d.root(), WindowAttributes::default());
        d.own_selection(a, w, "the selection".into());
        assert_eq!(d.get_selection(a), Some("the selection"));
        d.clear_selection(a, w);
        assert_eq!(d.get_selection(a), None);
    }

    #[test]
    fn raise_changes_hit_testing() {
        let mut d = Display::open(":0");
        let a = d.create_window(
            d.root(),
            WindowAttributes {
                rect: Rect::new(0, 0, 100, 100),
                border_width: 0,
                ..Default::default()
            },
        );
        let b = d.create_window(
            d.root(),
            WindowAttributes {
                rect: Rect::new(0, 0, 100, 100),
                border_width: 0,
                ..Default::default()
            },
        );
        d.map_window(a);
        d.map_window(b);
        assert_eq!(d.window_at(Point::new(50, 50)), b);
        d.raise_window(a);
        assert_eq!(d.window_at(Point::new(50, 50)), a);
    }

    #[test]
    fn headless_flush_never_materializes() {
        let (mut d, top, _) = setup();
        d.set_window_attrs(top, Some(0xff0000), None, None);
        d.flush();
        d.configure_window(top, Rect::new(50, 60, 200, 150));
        d.flush();
        assert!(
            !d.is_materialized(),
            "a headless session must not allocate a pixel buffer on flush"
        );
        // Flushed damage still accumulates for a future attach.
        assert!(d.has_pending_frame());
    }

    #[test]
    fn incremental_repaint_matches_full_paint() {
        let (mut d, top, child) = setup();
        d.framebuffer(); // Materialize, full paint of the initial tree.
        d.flush();
        // A series of damaging mutations, each incrementally repainted.
        d.set_window_attrs(top, Some(0xff0000), None, None);
        d.flush();
        d.set_window_attrs(child, Some(0x00ff00), None, None);
        d.flush();
        d.configure_window(child, Rect::new(30, 40, 60, 25));
        d.flush();
        d.unmap_window(child);
        d.flush();
        d.map_window(child);
        d.flush();
        let incremental = d.framebuffer().clone();
        // A fresh display replaying the same end state, painted once.
        let mut fresh = Display::open(":0");
        let top2 = fresh.create_window(
            fresh.root(),
            WindowAttributes {
                rect: Rect::new(100, 100, 200, 150),
                background: 0xff0000,
                ..Default::default()
            },
        );
        let child2 = fresh.create_window(
            top2,
            WindowAttributes {
                rect: Rect::new(30, 40, 60, 25),
                background: 0x00ff00,
                ..Default::default()
            },
        );
        fresh.map_window(top2);
        fresh.map_window(child2);
        fresh.flush();
        let full = fresh.framebuffer();
        for y in 0..SCREEN_H as i32 {
            for x in 0..SCREEN_W as i32 {
                assert_eq!(
                    incremental.get(x, y),
                    full.get(x, y),
                    "pixel ({x},{y}) diverged between incremental and full paint"
                );
            }
        }
    }

    #[test]
    fn frame_damage_accumulates_across_flushes() {
        let (mut d, top, _) = setup();
        d.set_compositing(true);
        d.flush();
        // Attach scheduled a full frame.
        let first = d.take_frame_damage();
        assert!(first.full);
        assert!(!d.has_pending_frame());
        // Two small mutations, two flushes, one coalesced frame.
        d.set_window_attrs(top, Some(0xff0000), None, None);
        d.flush();
        d.configure_window(top, Rect::new(100, 100, 210, 150));
        d.flush();
        let frame = d.take_frame_damage();
        assert!(!frame.is_empty());
        // Footprint of the old geometry (border outer edge at 100,100).
        assert!(frame.covers(&Rect::new(100, 100, 202, 152)));
        // Resync path: a requested full frame arrives on the next flush.
        d.request_full_frame();
        d.flush();
        assert!(d.take_frame_damage().full);
    }

    #[test]
    fn multiple_displays_are_independent() {
        // The paper: `applicationShell top2 dec4:0` maps children onto a
        // second display.
        let mut d1 = Display::open(":0");
        let mut d2 = Display::open("dec4:0");
        let w1 = d1.create_window(d1.root(), WindowAttributes::default());
        let w2 = d2.create_window(d2.root(), WindowAttributes::default());
        d1.map_window(w1);
        assert!(d1.pending() > 0);
        assert_eq!(d2.pending(), 0);
        d2.map_window(w2);
        assert_eq!(d2.name, "dec4:0");
        assert!(d1.is_viewable(w1));
        assert!(d2.is_viewable(w2));
    }
}
