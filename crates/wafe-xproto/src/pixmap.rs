//! XBM bitmap and XPM pixmap parsing.
//!
//! The paper's extended String-to-Bitmap converter "checks additionally
//! whether the specified file is in Xpm format, when the attempt to read
//! the file in the standard X bitmap format failed" — both formats are
//! implemented here so the Wafe converter can reproduce that fallback.

use crate::color::{lookup_color, Pixel};

/// A decoded image: row-major pixels.
#[derive(Debug, Clone, PartialEq)]
pub struct Pixmap {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Row-major pixel data, length `width * height`.
    pub data: Vec<Pixel>,
    /// Transparency mask (true = opaque); XPM `None` pixels are
    /// transparent, XBM images are fully opaque.
    pub mask: Vec<bool>,
}

/// Parses an X11 bitmap (`.xbm`) file: C source defining
/// `<name>_width`, `<name>_height` and a `static char <name>_bits[]`.
///
/// Set bits become `fg`, clear bits `bg`.
pub fn parse_xbm(text: &str, fg: Pixel, bg: Pixel) -> Option<Pixmap> {
    let mut width: Option<u32> = None;
    let mut height: Option<u32> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("#define") {
            let mut it = rest.split_whitespace();
            let name = it.next()?;
            let value = it.next()?;
            if name.ends_with("_width") {
                width = value.parse().ok();
            } else if name.ends_with("_height") {
                height = value.parse().ok();
            }
        }
    }
    let (w, h) = (width?, height?);
    // Collect every 0xNN byte after the '{'.
    let body = text.split('{').nth(1)?.split('}').next()?;
    let mut bytes: Vec<u8> = Vec::new();
    for tok in body.split(',') {
        let tok = tok.trim();
        if tok.is_empty() {
            continue;
        }
        let v = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
            u8::from_str_radix(hex, 16).ok()?
        } else {
            tok.parse::<u8>().ok()?
        };
        bytes.push(v);
    }
    let stride = w.div_ceil(8) as usize;
    if bytes.len() < stride * h as usize {
        return None;
    }
    let mut data = Vec::with_capacity((w * h) as usize);
    for row in 0..h as usize {
        for col in 0..w as usize {
            let byte = bytes[row * stride + col / 8];
            // XBM is little-endian within bytes.
            let bit = (byte >> (col % 8)) & 1;
            data.push(if bit == 1 { fg } else { bg });
        }
    }
    let mask = vec![true; (w * h) as usize];
    Some(Pixmap {
        width: w,
        height: h,
        data,
        mask,
    })
}

/// Parses an XPM (X PixMap) file or buffer.
///
/// Supports XPM2/XPM3 with single- and multi-character colour keys and
/// the `c` colour class; `None` means transparent.
pub fn parse_xpm(text: &str) -> Option<Pixmap> {
    // Pull out every C string literal "..." in order; XPM3's payload is a
    // list of strings. (XPM2 lines are not quoted; handle both.)
    let strings: Vec<String> = if text.contains('"') {
        let mut out = Vec::new();
        let mut rest = text;
        while let Some(start) = rest.find('"') {
            let tail = &rest[start + 1..];
            let end = tail.find('"')?;
            out.push(tail[..end].to_string());
            rest = &tail[end + 1..];
        }
        out
    } else {
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('!'))
            .map(String::from)
            .collect()
    };
    if strings.is_empty() {
        return None;
    }
    // Header: "width height ncolors chars_per_pixel".
    let mut hdr = strings[0].split_whitespace();
    let width: u32 = hdr.next()?.parse().ok()?;
    let height: u32 = hdr.next()?.parse().ok()?;
    let ncolors: usize = hdr.next()?.parse().ok()?;
    let cpp: usize = hdr.next()?.parse().ok()?;
    if strings.len() < 1 + ncolors + height as usize {
        return None;
    }
    // Colour table.
    let mut table: Vec<(String, Option<Pixel>)> = Vec::with_capacity(ncolors);
    for line in &strings[1..1 + ncolors] {
        let chars: Vec<char> = line.chars().collect();
        if chars.len() < cpp {
            return None;
        }
        let key: String = chars[..cpp].iter().collect();
        let spec: String = chars[cpp..].iter().collect();
        // Find the `c` class value.
        let toks: Vec<&str> = spec.split_whitespace().collect();
        let mut color: Option<Pixel> = None;
        let mut transparent = false;
        let mut k = 0;
        while k < toks.len() {
            if toks[k] == "c" && k + 1 < toks.len() {
                // Colour value may be multiple words (e.g. "navy blue").
                let value = toks[k + 1..].join(" ");
                if value.eq_ignore_ascii_case("none") {
                    transparent = true;
                } else {
                    color = lookup_color(&value);
                    if color.is_none() {
                        // Unknown name: fall back to black rather than failing.
                        color = Some(0);
                    }
                }
                break;
            }
            k += 1;
        }
        if transparent {
            table.push((key, None));
        } else {
            table.push((key, Some(color?)));
        }
    }
    // Pixel rows.
    let mut data = Vec::with_capacity((width * height) as usize);
    let mut mask = Vec::with_capacity((width * height) as usize);
    for line in &strings[1 + ncolors..1 + ncolors + height as usize] {
        let chars: Vec<char> = line.chars().collect();
        if chars.len() < cpp * width as usize {
            return None;
        }
        for col in 0..width as usize {
            let key: String = chars[col * cpp..(col + 1) * cpp].iter().collect();
            match table.iter().find(|(k, _)| *k == key) {
                Some((_, Some(px))) => {
                    data.push(*px);
                    mask.push(true);
                }
                Some((_, None)) => {
                    data.push(0);
                    mask.push(false);
                }
                None => return None,
            }
        }
    }
    Some(Pixmap {
        width,
        height,
        data,
        mask,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const XBM: &str = r#"
#define test_width 8
#define test_height 2
static char test_bits[] = {
   0x01, 0x80};
"#;

    #[test]
    fn xbm_basic() {
        let p = parse_xbm(XBM, 0xff0000, 0x000000).unwrap();
        assert_eq!(p.width, 8);
        assert_eq!(p.height, 2);
        // Bit 0 of row 0 set (little-endian): pixel (0,0) fg.
        assert_eq!(p.data[0], 0xff0000);
        assert_eq!(p.data[1], 0x000000);
        // Bit 7 of row 1 set: pixel (7,1) fg.
        assert_eq!(p.data[8 + 7], 0xff0000);
        assert!(p.mask.iter().all(|&m| m));
    }

    #[test]
    fn xbm_malformed() {
        assert!(parse_xbm("not a bitmap", 1, 0).is_none());
        assert!(parse_xbm(
            "#define w_width 8\n#define w_height 4\nstatic char b[] = {0x01};",
            1,
            0
        )
        .is_none());
    }

    const XPM: &str = r#"
/* XPM */
static char *test[] = {
"3 2 3 1",
"  c None",
". c black",
"X c red",
".X.",
"X X",
};
"#;

    #[test]
    fn xpm_basic() {
        let p = parse_xpm(XPM).unwrap();
        assert_eq!(p.width, 3);
        assert_eq!(p.height, 2);
        assert_eq!(p.data[0], 0x000000); // .
        assert_eq!(p.data[1], 0xff0000); // X
        assert!(p.mask[0]);
        assert!(!p.mask[4]); // middle of row 2 is None -> transparent
    }

    #[test]
    fn xpm_multichar_keys() {
        let text = r#"
"2 1 2 2",
"aa c white",
"bb c blue",
"aabb",
"#;
        let p = parse_xpm(text).unwrap();
        assert_eq!(p.data, vec![0xffffff, 0x0000ff]);
    }

    #[test]
    fn xpm_unknown_color_falls_back_to_black() {
        let text = r#"
"1 1 1 1",
"x c notacolorname",
"x",
"#;
        let p = parse_xpm(text).unwrap();
        assert_eq!(p.data, vec![0]);
    }

    #[test]
    fn xpm_malformed() {
        assert!(parse_xpm("").is_none());
        assert!(parse_xpm("\"zz\"").is_none());
        // Too few rows.
        assert!(parse_xpm("\"2 2 1 1\",\". c black\",\"..\"").is_none());
    }

    #[test]
    fn fallback_chain_like_wafe_converter() {
        // The Wafe converter first tries XBM, then XPM.
        let try_both = |text: &str| parse_xbm(text, 1, 0).or_else(|| parse_xpm(text));
        assert!(try_both(XBM).is_some());
        assert!(try_both(XPM).is_some());
        assert!(try_both("garbage").is_none());
    }
}
