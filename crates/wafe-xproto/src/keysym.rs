//! Keycodes, keysyms and the keyboard map.
//!
//! The paper's `xev`-style example binds `<KeyPress>` and prints
//! `%k %a %s` — keycode, ascii character and keysym name. Typing `w!`
//! produces three key presses (`w`, `Shift_L`, `exclam`). This module
//! provides the deterministic keyboard map that reproduces that
//! behaviour: every ASCII character maps to a keycode, a keysym name and
//! a shift requirement.

/// Everything the event layer needs to synthesise a key press.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyInfo {
    /// The device keycode (deterministic, stable across runs).
    pub keycode: u8,
    /// The keysym name, e.g. `w`, `exclam`, `Return`, `Shift_L`.
    pub keysym: String,
    /// The ASCII text the key produces (empty for modifiers and
    /// function keys).
    pub ascii: String,
    /// True if reaching this symbol requires the Shift modifier.
    pub shifted: bool,
}

/// Keycode of the left Shift key.
pub const KEYCODE_SHIFT_L: u8 = 174;

/// Names of shifted ASCII punctuation, indexed by character.
fn punct_name(c: char) -> Option<(&'static str, bool)> {
    Some(match c {
        ' ' => ("space", false),
        '!' => ("exclam", true),
        '"' => ("quotedbl", true),
        '#' => ("numbersign", true),
        '$' => ("dollar", true),
        '%' => ("percent", true),
        '&' => ("ampersand", true),
        '\'' => ("apostrophe", false),
        '(' => ("parenleft", true),
        ')' => ("parenright", true),
        '*' => ("asterisk", true),
        '+' => ("plus", true),
        ',' => ("comma", false),
        '-' => ("minus", false),
        '.' => ("period", false),
        '/' => ("slash", false),
        ':' => ("colon", true),
        ';' => ("semicolon", false),
        '<' => ("less", true),
        '=' => ("equal", false),
        '>' => ("greater", true),
        '?' => ("question", true),
        '@' => ("at", true),
        '[' => ("bracketleft", false),
        '\\' => ("backslash", false),
        ']' => ("bracketright", false),
        '^' => ("asciicircum", true),
        '_' => ("underscore", true),
        '`' => ("grave", false),
        '{' => ("braceleft", true),
        '|' => ("bar", true),
        '}' => ("braceright", true),
        '~' => ("asciitilde", true),
        _ => return None,
    })
}

/// Maps an ASCII character to its key info.
///
/// Lower-case letters and digits are unshifted; upper-case letters and
/// shifted punctuation require Shift. Control characters map to their
/// named keys (`\n` → `Return`, `\t` → `Tab`, `\x1b` → `Escape`,
/// `\x7f`/`\x08` → `Delete`/`BackSpace`).
///
/// # Examples
///
/// ```
/// use wafe_xproto::keysym::key_for_char;
/// let w = key_for_char('w').unwrap();
/// assert_eq!(w.keysym, "w");
/// assert!(!w.shifted);
/// let bang = key_for_char('!').unwrap();
/// assert_eq!(bang.keysym, "exclam");
/// assert!(bang.shifted);
/// ```
pub fn key_for_char(c: char) -> Option<KeyInfo> {
    // Deterministic keycode assignment: base 8 + offset per class, in the
    // flavour of real X servers (keycodes 8..=255).
    match c {
        'a'..='z' => Some(KeyInfo {
            keycode: 190 + (c as u8 - b'a') / 4, // A few keys share rows; uniqueness is not required by X.
            keysym: c.to_string(),
            ascii: c.to_string(),
            shifted: false,
        }),
        'A'..='Z' => {
            let lower = c.to_ascii_lowercase();
            Some(KeyInfo {
                keycode: 190 + (lower as u8 - b'a') / 4,
                keysym: c.to_string(),
                ascii: c.to_string(),
                shifted: true,
            })
        }
        '0'..='9' => Some(KeyInfo {
            keycode: 100 + (c as u8 - b'0'),
            keysym: c.to_string(),
            ascii: c.to_string(),
            shifted: false,
        }),
        '\n' | '\r' => Some(KeyInfo {
            keycode: 150,
            keysym: "Return".into(),
            ascii: "\r".into(),
            shifted: false,
        }),
        '\t' => Some(KeyInfo {
            keycode: 151,
            keysym: "Tab".into(),
            ascii: "\t".into(),
            shifted: false,
        }),
        '\x1b' => Some(KeyInfo {
            keycode: 152,
            keysym: "Escape".into(),
            ascii: "\x1b".into(),
            shifted: false,
        }),
        '\x08' => Some(KeyInfo {
            keycode: 153,
            keysym: "BackSpace".into(),
            ascii: "\x08".into(),
            shifted: false,
        }),
        '\x7f' => Some(KeyInfo {
            keycode: 154,
            keysym: "Delete".into(),
            ascii: "\x7f".into(),
            shifted: false,
        }),
        _ => {
            let (name, shifted) = punct_name(c)?;
            Some(KeyInfo {
                keycode: 160 + (c as u8 % 32),
                keysym: name.into(),
                ascii: c.to_string(),
                shifted,
            })
        }
    }
}

/// Key info for a named keysym (`Return`, `Escape`, `Shift_L`, `F1`…).
pub fn key_for_name(name: &str) -> Option<KeyInfo> {
    match name {
        "Return" => key_for_char('\n'),
        "Tab" => key_for_char('\t'),
        "Escape" => key_for_char('\x1b'),
        "BackSpace" => key_for_char('\x08'),
        "Delete" => key_for_char('\x7f'),
        "space" => key_for_char(' '),
        "Shift_L" => Some(KeyInfo {
            keycode: KEYCODE_SHIFT_L,
            keysym: "Shift_L".into(),
            ascii: String::new(),
            shifted: false,
        }),
        "Shift_R" => Some(KeyInfo {
            keycode: 175,
            keysym: "Shift_R".into(),
            ascii: String::new(),
            shifted: false,
        }),
        "Control_L" => Some(KeyInfo {
            keycode: 176,
            keysym: "Control_L".into(),
            ascii: String::new(),
            shifted: false,
        }),
        "Up" | "Down" | "Left" | "Right" | "Home" | "End" => Some(KeyInfo {
            keycode: 180
                + match name {
                    "Up" => 0,
                    "Down" => 1,
                    "Left" => 2,
                    "Right" => 3,
                    "Home" => 4,
                    _ => 5,
                },
            keysym: name.into(),
            ascii: String::new(),
            shifted: false,
        }),
        _ => {
            // Single-character names are the character's own keysym.
            let mut chars = name.chars();
            if let (Some(c), None) = (chars.next(), chars.next()) {
                return key_for_char(c);
            }
            if let Some(num) = name.strip_prefix('F') {
                if let Ok(n) = num.parse::<u8>() {
                    if (1..=12).contains(&n) {
                        return Some(KeyInfo {
                            keycode: 110 + n,
                            keysym: name.into(),
                            ascii: String::new(),
                            shifted: false,
                        });
                    }
                }
            }
            None
        }
    }
}

/// Human-readable keysym name for display (identity; keysyms here are
/// already names).
pub fn keysym_name(keysym: &str) -> &str {
    keysym
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_and_digits() {
        let a = key_for_char('a').unwrap();
        assert_eq!(a.keysym, "a");
        assert_eq!(a.ascii, "a");
        assert!(!a.shifted);
        let z = key_for_char('Z').unwrap();
        assert_eq!(z.keysym, "Z");
        assert!(z.shifted);
        let five = key_for_char('5').unwrap();
        assert_eq!(five.keysym, "5");
    }

    #[test]
    fn paper_w_exclam_sequence() {
        // Typing "w!" in the paper's example prints keysyms w, Shift_L,
        // exclam. Verify the pieces.
        let w = key_for_char('w').unwrap();
        assert_eq!(w.keysym, "w");
        assert!(!w.shifted);
        let bang = key_for_char('!').unwrap();
        assert_eq!(bang.keysym, "exclam");
        assert!(bang.shifted);
        let shift = key_for_name("Shift_L").unwrap();
        assert_eq!(shift.keycode, KEYCODE_SHIFT_L);
        assert_eq!(shift.ascii, "");
    }

    #[test]
    fn named_keys() {
        assert_eq!(key_for_name("Return").unwrap().keysym, "Return");
        assert_eq!(key_for_name("Escape").unwrap().keysym, "Escape");
        assert_eq!(key_for_name("F5").unwrap().keysym, "F5");
        assert_eq!(key_for_name("q").unwrap().keysym, "q");
        assert!(key_for_name("NoSuchKey").is_none());
        assert!(key_for_name("F99").is_none());
    }

    #[test]
    fn control_chars() {
        assert_eq!(key_for_char('\n').unwrap().keysym, "Return");
        assert_eq!(key_for_char('\t').unwrap().keysym, "Tab");
        assert_eq!(key_for_char('\x7f').unwrap().keysym, "Delete");
    }

    #[test]
    fn punctuation_coverage() {
        for c in "!\"#$%&'()*+,-./:;<=>?@[\\]^_`{|}~ ".chars() {
            let k = key_for_char(c).unwrap();
            assert!(!k.keysym.is_empty(), "{c}");
            assert_eq!(k.ascii, c.to_string());
        }
        assert!(key_for_char('\u{1F600}').is_none());
    }

    #[test]
    fn keycodes_in_x_range() {
        for c in ('a'..='z').chain('0'..='9') {
            let k = key_for_char(c).unwrap();
            assert!(k.keycode >= 8, "keycode {} for {c}", k.keycode);
        }
    }
}
