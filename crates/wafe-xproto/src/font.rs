//! Synthetic fonts with XLFD-style pattern matching.
//!
//! Real font rasterisation is out of scope (and irrelevant to every
//! figure); what the toolkit needs from fonts is *metrics* — character
//! width, ascent, descent — and a way to resolve the font *names* the
//! paper uses: `fixed`, and XLFD patterns such as
//! `*b&h-lucida-medium-r*14*`. Fonts here are fixed-cell with per-face
//! weight so bold/medium resolve to distinct fonts, which E5 (compound
//! strings) depends on.

/// Identifies a loaded font within a [`FontDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FontId(pub usize);

/// A loaded font's metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Font {
    /// The full XLFD name of the resolved font.
    pub name: String,
    /// Advance width of every glyph (fixed-cell).
    pub char_width: u32,
    /// Pixels above the baseline.
    pub ascent: u32,
    /// Pixels below the baseline.
    pub descent: u32,
    /// `medium` or `bold`.
    pub weight: Weight,
}

/// Font weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weight {
    /// Regular stroke.
    Medium,
    /// Heavy stroke.
    Bold,
}

impl Font {
    /// Total line height (ascent + descent).
    pub fn height(&self) -> u32 {
        self.ascent + self.descent
    }

    /// Pixel width of a string in this font.
    pub fn text_width(&self, s: &str) -> u32 {
        s.chars().count() as u32 * self.char_width
    }
}

/// The font database: a fixed set of synthetic faces resolved by name or
/// XLFD glob pattern.
pub struct FontDb {
    fonts: Vec<Font>,
}

impl Default for FontDb {
    fn default() -> Self {
        Self::new()
    }
}

impl FontDb {
    /// Creates the database with the standard synthetic faces.
    pub fn new() -> Self {
        let mk = |name: &str, w, a, d, weight| Font {
            name: name.into(),
            char_width: w,
            ascent: a,
            descent: d,
            weight,
        };
        FontDb {
            fonts: vec![
                mk("fixed", 6, 11, 2, Weight::Medium),
                mk(
                    "-misc-fixed-medium-r-normal--13-120-75-75-c-60-iso8859-1",
                    6,
                    11,
                    2,
                    Weight::Medium,
                ),
                mk(
                    "-misc-fixed-bold-r-normal--13-120-75-75-c-60-iso8859-1",
                    6,
                    11,
                    2,
                    Weight::Bold,
                ),
                mk(
                    "-adobe-helvetica-medium-r-normal--12-120-75-75-p-67-iso8859-1",
                    7,
                    10,
                    3,
                    Weight::Medium,
                ),
                mk(
                    "-adobe-helvetica-bold-r-normal--12-120-75-75-p-70-iso8859-1",
                    7,
                    10,
                    3,
                    Weight::Bold,
                ),
                mk(
                    "-b&h-lucida-medium-r-normal-sans-14-100-100-100-p-80-iso8859-1",
                    8,
                    11,
                    3,
                    Weight::Medium,
                ),
                mk(
                    "-b&h-lucida-bold-r-normal-sans-14-100-100-100-p-85-iso8859-1",
                    8,
                    11,
                    3,
                    Weight::Bold,
                ),
                mk("6x13", 6, 11, 2, Weight::Medium),
                mk("9x15", 9, 12, 3, Weight::Medium),
            ],
        }
    }

    /// Resolves a font name or XLFD glob pattern to a font id.
    ///
    /// Exact names match first; otherwise the pattern is glob-matched
    /// against the database (with `*` and `?`), first hit wins — the same
    /// order-dependent behaviour as the X server's `XListFonts`.
    pub fn resolve(&self, pattern: &str) -> Option<FontId> {
        if let Some(i) = self.fonts.iter().position(|f| f.name == pattern) {
            return Some(FontId(i));
        }
        self.fonts
            .iter()
            .position(|f| glob(pattern, &f.name))
            .map(FontId)
    }

    /// Returns the metrics for a previously resolved font.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this database.
    pub fn get(&self, id: FontId) -> &Font {
        &self.fonts[id.0]
    }

    /// The id of the default font (`fixed`).
    pub fn default_font(&self) -> FontId {
        FontId(0)
    }

    /// Number of faces in the database.
    pub fn len(&self) -> usize {
        self.fonts.len()
    }

    /// True if the database has no faces (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.fonts.is_empty()
    }
}

/// Case-insensitive glob with `*` and `?` (what font patterns use).
fn glob(pattern: &str, name: &str) -> bool {
    let p: Vec<char> = pattern.to_lowercase().chars().collect();
    let n: Vec<char> = name.to_lowercase().chars().collect();
    glob_at(&p, 0, &n, 0)
}

fn glob_at(p: &[char], mut pi: usize, n: &[char], mut ni: usize) -> bool {
    while pi < p.len() {
        match p[pi] {
            '*' => {
                while pi < p.len() && p[pi] == '*' {
                    pi += 1;
                }
                if pi == p.len() {
                    return true;
                }
                while ni <= n.len() {
                    if glob_at(p, pi, n, ni) {
                        return true;
                    }
                    ni += 1;
                }
                return false;
            }
            '?' => {
                if ni >= n.len() {
                    return false;
                }
                pi += 1;
                ni += 1;
            }
            c => {
                if ni >= n.len() || n[ni] != c {
                    return false;
                }
                pi += 1;
                ni += 1;
            }
        }
    }
    ni == n.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_resolves_exactly() {
        let db = FontDb::new();
        let id = db.resolve("fixed").unwrap();
        let f = db.get(id);
        assert_eq!(f.name, "fixed");
        assert_eq!(f.char_width, 6);
        assert_eq!(f.height(), 13);
    }

    #[test]
    fn paper_lucida_patterns_resolve() {
        // The exact patterns from the paper's Figure 3 script.
        let db = FontDb::new();
        let med = db.resolve("*b&h-lucida-medium-r*14*").unwrap();
        let bold = db.resolve("*b&h-lucida-bold-r*14*").unwrap();
        assert_ne!(med, bold);
        assert_eq!(db.get(med).weight, Weight::Medium);
        assert_eq!(db.get(bold).weight, Weight::Bold);
    }

    #[test]
    fn unknown_pattern_is_none() {
        let db = FontDb::new();
        assert!(db.resolve("*no-such-family*").is_none());
    }

    #[test]
    fn text_width_is_cells() {
        let db = FontDb::new();
        let f = db.get(db.default_font());
        assert_eq!(f.text_width("hello"), 30);
        assert_eq!(f.text_width(""), 0);
    }

    #[test]
    fn helvetica_pattern() {
        let db = FontDb::new();
        let id = db.resolve("*helvetica-bold*").unwrap();
        assert_eq!(db.get(id).weight, Weight::Bold);
    }

    #[test]
    fn case_insensitive_matching() {
        let db = FontDb::new();
        assert!(db.resolve("*Helvetica-Medium*").is_some());
    }
}
