//! The core X event set.

use crate::window::WindowId;

/// Modifier state carried by device events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Modifiers {
    /// Shift is held.
    pub shift: bool,
    /// Control is held.
    pub control: bool,
    /// Meta/Alt (Mod1) is held.
    pub meta: bool,
}

impl Modifiers {
    /// No modifiers held.
    pub const NONE: Modifiers = Modifiers {
        shift: false,
        control: false,
        meta: false,
    };

    /// Shift only.
    pub const SHIFT: Modifiers = Modifiers {
        shift: true,
        control: false,
        meta: false,
    };
}

/// What happened; the payload-free classification of an [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A pointer button went down.
    ButtonPress,
    /// A pointer button came up.
    ButtonRelease,
    /// A key went down.
    KeyPress,
    /// A key came up.
    KeyRelease,
    /// The pointer entered a window.
    EnterNotify,
    /// The pointer left a window.
    LeaveNotify,
    /// The pointer moved within a window.
    MotionNotify,
    /// A region of a window needs repainting.
    Expose,
    /// A window's geometry changed.
    ConfigureNotify,
    /// A window became viewable.
    MapNotify,
    /// A window was unmapped.
    UnmapNotify,
    /// A window was destroyed.
    DestroyNotify,
    /// An inter-client message.
    ClientMessage,
}

/// A delivered event.
///
/// Coordinates are window-relative (`x`, `y`) plus root-relative
/// (`x_root`, `y_root`), matching the X wire protocol fields the paper's
/// percent codes expose (`%x %y %X %Y`).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The classification.
    pub kind: EventKind,
    /// The window the event is reported relative to.
    pub window: WindowId,
    /// Window-relative x.
    pub x: i32,
    /// Window-relative y.
    pub y: i32,
    /// Root-relative x.
    pub x_root: i32,
    /// Root-relative y.
    pub y_root: i32,
    /// Button number (1..5) for button events, else 0.
    pub button: u8,
    /// Keycode for key events, else 0.
    pub keycode: u8,
    /// Keysym name for key events, else empty.
    pub keysym: String,
    /// ASCII text for key events, else empty.
    pub ascii: String,
    /// Modifier state at the time of the event.
    pub modifiers: Modifiers,
    /// Serial stamp, monotonically increasing per display.
    pub serial: u64,
}

impl Event {
    /// A minimal event of the given kind on `window`; the caller fills in
    /// whatever payload applies.
    pub fn new(kind: EventKind, window: WindowId) -> Self {
        Event {
            kind,
            window,
            x: 0,
            y: 0,
            x_root: 0,
            y_root: 0,
            button: 0,
            keycode: 0,
            keysym: String::new(),
            ascii: String::new(),
            modifiers: Modifiers::NONE,
            serial: 0,
        }
    }

    /// The event-type name the Wafe `%t` percent code prints.
    ///
    /// Only the six event types of the paper's table have names; every
    /// other type expands to `unknown`, exactly as documented.
    pub fn wafe_type_name(&self) -> &'static str {
        match self.kind {
            EventKind::ButtonPress => "ButtonPress",
            EventKind::ButtonRelease => "ButtonRelease",
            EventKind::KeyPress => "KeyPress",
            EventKind::KeyRelease => "KeyRelease",
            EventKind::EnterNotify => "EnterNotify",
            EventKind::LeaveNotify => "LeaveNotify",
            _ => "unknown",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wafe_type_names_match_paper_table() {
        let w = WindowId(1);
        assert_eq!(
            Event::new(EventKind::ButtonPress, w).wafe_type_name(),
            "ButtonPress"
        );
        assert_eq!(
            Event::new(EventKind::KeyRelease, w).wafe_type_name(),
            "KeyRelease"
        );
        assert_eq!(
            Event::new(EventKind::EnterNotify, w).wafe_type_name(),
            "EnterNotify"
        );
        assert_eq!(
            Event::new(EventKind::LeaveNotify, w).wafe_type_name(),
            "LeaveNotify"
        );
        // Non-listed types expand to "unknown" per the paper.
        assert_eq!(Event::new(EventKind::Expose, w).wafe_type_name(), "unknown");
        assert_eq!(
            Event::new(EventKind::MotionNotify, w).wafe_type_name(),
            "unknown"
        );
    }

    #[test]
    fn default_payload_is_empty() {
        let e = Event::new(EventKind::KeyPress, WindowId(3));
        assert_eq!(e.button, 0);
        assert_eq!(e.keysym, "");
        assert_eq!(e.modifiers, Modifiers::NONE);
    }
}
