//! A simulated X display server.
//!
//! The Wafe paper runs on a real X11R5 server; this machine has none, and
//! the reproduction substitutes a deterministic in-process display server
//! that exercises the same code paths the X Toolkit depends on:
//!
//! * a window tree with mapping, stacking and per-window geometry,
//! * a core event set (button, key, crossing, expose, configure) with a
//!   queue and *synthetic event injection* standing in for the user,
//! * pointer tracking that generates Enter/Leave pairs,
//! * exclusive/nonexclusive grabs with the delivery semantics popup
//!   menus rely on,
//! * the X11 colour-name database and `#rgb` parsing,
//! * synthetic fonts with XLFD-style pattern matching,
//! * XBM and XPM image parsing (the paper ships an Xpm converter),
//! * atoms and selections, and
//! * a real RGB framebuffer per screen plus a per-window display list so
//!   tests can take deterministic ASCII "screenshots" of the figures.
//!
//! Everything is single-threaded and deterministic: injecting the same
//! events always produces the same queue and the same framebuffer.

pub mod color;
pub mod damage;
pub mod display;
pub mod event;
pub mod font;
pub mod font5x7;
pub mod framebuffer;
pub mod geometry;
pub mod keysym;
pub mod pixmap;
pub mod window;

pub use color::{lookup_color, Pixel};
pub use damage::{Damage, DamageTracker, FULL_COVERAGE_PERMILLE, MAX_DAMAGE_RECTS};
pub use display::{Atom, Display, GrabKind, WindowAttributes, SCREEN_H, SCREEN_W};
pub use event::{Event, EventKind, Modifiers};
pub use font::{Font, FontDb, FontId};
pub use framebuffer::{DrawOp, Framebuffer};
pub use geometry::{Point, Rect};
pub use keysym::{keysym_name, KeyInfo};
pub use pixmap::{parse_xbm, parse_xpm, Pixmap};
pub use window::WindowId;
