//! Telemetry coverage of the pipe protocol: line/byte counters on the
//! protocol engine and the backend round-trip histogram on a live child.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use wafe_core::Flavor;
use wafe_ipc::{Frontend, FrontendConfig, ProtocolEngine};
use wafe_tcl::parse_list;

fn snapshot(session: &mut wafe_core::WafeSession) -> BTreeMap<String, u64> {
    let out = session.eval("telemetry snapshot").unwrap();
    parse_list(&out)
        .unwrap()
        .chunks(2)
        .map(|kv| (kv[0].clone(), kv[1].parse::<u64>().unwrap()))
        .collect()
}

#[test]
fn protocol_counts_lines_and_bytes() {
    let mut e = ProtocolEngine::new(Flavor::Athena);
    e.session.telemetry.set_enabled(true);
    e.handle_line("%label l topLevel label hi\n").unwrap();
    e.handle_line("plain passthrough line\n").unwrap();
    assert!(e.handle_line("%nosuchcommand\n").is_err());
    let snap = snapshot(&mut e.session);
    assert_eq!(snap["ipc.lines.received"], 3, "{snap:?}");
    assert_eq!(snap["ipc.lines.interpreted"], 2);
    assert_eq!(snap["ipc.lines.passthrough"], 1);
    assert_eq!(snap["ipc.errors"], 1);
    assert!(snap["ipc.bytes.received"] > 50);
}

#[test]
fn mass_transfer_counts_bytes() {
    let mut e = ProtocolEngine::new(Flavor::Athena);
    e.session.telemetry.set_enabled(true);
    e.handle_line("%form top topLevel").unwrap();
    e.handle_line("%asciiText text top editType edit").unwrap();
    e.handle_line("%realize").unwrap();
    e.handle_line("%setCommunicationVariable C 100 {sV text string $C}")
        .unwrap();
    let payload = "y".repeat(100);
    e.handle_mass_data(&payload.as_bytes()[..40]);
    e.handle_mass_data(&payload.as_bytes()[40..]);
    assert_eq!(e.session.eval("gV text string").unwrap(), payload);
    let snap = snapshot(&mut e.session);
    assert_eq!(snap["ipc.mass.bytes"], 100, "{snap:?}");
    assert_eq!(snap["ipc.mass.transfers"], 1);
    // The completed transfer is journaled.
    let journal = e.session.eval("telemetry journal").unwrap();
    assert!(journal.contains("mass.transfer"), "{journal}");
}

/// The acceptance scenario: drive a real backend through the pipe
/// protocol and read non-zero frontend counters plus a round-trip
/// latency sample out of `telemetry snapshot`.
#[test]
fn frontend_roundtrip_measured_against_live_backend() {
    // The backend answers every line it reads, so each frontend write is
    // followed by a backend line — one ipc.roundtrip sample each.
    let script = r#"
        echo '%command go topLevel label Go callback {echo clicked}'
        echo '%realize'
        read line
        echo "%set answer {$line}"
    "#;
    let mut fe = Frontend::spawn(FrontendConfig {
        args: vec!["-c".into(), script.into()],
        mass_channel: false,
        ..FrontendConfig::new("sh")
    })
    .expect("spawn sh");
    fe.engine.session.telemetry.set_enabled(true);
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(20)).unwrap();
        let built = {
            let app = fe.engine.session.app.borrow();
            app.lookup("go")
                .map(|w| app.is_realized(w))
                .unwrap_or(false)
        };
        if built {
            break;
        }
    }
    // Click the button: the callback echoes "clicked" to the backend,
    // which answers with a %set line — a full round trip.
    {
        let mut app = fe.engine.session.app.borrow_mut();
        let go = app.lookup("go").unwrap();
        let win = app.widget(go).window.unwrap();
        let abs = app.displays[0].abs_rect(win);
        app.displays[0].inject_click(abs.x + 2, abs.y + 2, 1);
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(20)).unwrap();
        if fe.engine.session.interp.var_exists("answer") {
            break;
        }
    }
    assert_eq!(
        fe.engine.session.interp.get_var("answer").unwrap(),
        "clicked"
    );
    let snap = snapshot(&mut fe.engine.session);
    assert!(snap["ipc.lines.sent"] >= 1, "{snap:?}");
    assert!(snap["ipc.bytes.sent"] >= "clicked".len() as u64);
    assert!(snap["ipc.lines.received"] >= 1);
    assert!(snap["ipc.lines.interpreted"] >= 1);
    assert!(snap["ipc.roundtrip.count"] >= 1);
    assert!(snap["ipc.roundtrip.p50Ns"] > 0);
    assert_eq!(snap["xt.callbacks.dispatched"], 1);
    fe.kill();
}
