//! Telemetry coverage of the pipe protocol: line/byte counters on the
//! protocol engine and the backend round-trip histogram on a live child.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use wafe_core::Flavor;
use wafe_ipc::{Frontend, FrontendConfig, ProtocolEngine};
use wafe_tcl::parse_list;

fn snapshot(session: &mut wafe_core::WafeSession) -> BTreeMap<String, u64> {
    let out = session.eval("telemetry snapshot").unwrap();
    parse_list(&out)
        .unwrap()
        .chunks(2)
        .map(|kv| (kv[0].clone(), kv[1].parse::<u64>().unwrap()))
        .collect()
}

#[test]
fn protocol_counts_lines_and_bytes() {
    let mut e = ProtocolEngine::new(Flavor::Athena);
    e.session.telemetry.set_enabled(true);
    e.handle_line("%label l topLevel label hi\n").unwrap();
    e.handle_line("plain passthrough line\n").unwrap();
    assert!(e.handle_line("%nosuchcommand\n").is_err());
    let snap = snapshot(&mut e.session);
    assert_eq!(snap["ipc.lines.received"], 3, "{snap:?}");
    assert_eq!(snap["ipc.lines.interpreted"], 2);
    assert_eq!(snap["ipc.lines.passthrough"], 1);
    assert_eq!(snap["ipc.errors"], 1);
    assert!(snap["ipc.bytes.received"] > 50);
}

#[test]
fn mass_transfer_counts_bytes() {
    let mut e = ProtocolEngine::new(Flavor::Athena);
    e.session.telemetry.set_enabled(true);
    e.handle_line("%form top topLevel").unwrap();
    e.handle_line("%asciiText text top editType edit").unwrap();
    e.handle_line("%realize").unwrap();
    e.handle_line("%setCommunicationVariable C 100 {sV text string $C}")
        .unwrap();
    let payload = "y".repeat(100);
    e.handle_mass_data(&payload.as_bytes()[..40]);
    e.handle_mass_data(&payload.as_bytes()[40..]);
    assert_eq!(e.session.eval("gV text string").unwrap(), payload);
    let snap = snapshot(&mut e.session);
    assert_eq!(snap["ipc.mass.bytes"], 100, "{snap:?}");
    assert_eq!(snap["ipc.mass.transfers"], 1);
    // The completed transfer is journaled.
    let journal = e.session.eval("telemetry journal").unwrap();
    assert!(journal.contains("mass.transfer"), "{journal}");
}

/// The acceptance scenario: drive a real backend through the pipe
/// protocol and read non-zero frontend counters plus a round-trip
/// latency sample out of `telemetry snapshot`.
#[test]
fn frontend_roundtrip_measured_against_live_backend() {
    // The backend answers every line it reads, so each frontend write is
    // followed by a backend line — one ipc.roundtrip sample each.
    let script = r#"
        echo '%command go topLevel label Go callback {echo clicked}'
        echo '%realize'
        read line
        echo "%set answer {$line}"
    "#;
    let mut fe = Frontend::spawn(FrontendConfig {
        args: vec!["-c".into(), script.into()],
        mass_channel: false,
        ..FrontendConfig::new("sh")
    })
    .expect("spawn sh");
    fe.engine.session.telemetry.set_enabled(true);
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(20)).unwrap();
        let built = {
            let app = fe.engine.session.app.borrow();
            app.lookup("go")
                .map(|w| app.is_realized(w))
                .unwrap_or(false)
        };
        if built {
            break;
        }
    }
    // Click the button: the callback echoes "clicked" to the backend,
    // which answers with a %set line — a full round trip.
    {
        let mut app = fe.engine.session.app.borrow_mut();
        let go = app.lookup("go").unwrap();
        let win = app.widget(go).window.unwrap();
        let abs = app.displays[0].abs_rect(win);
        app.displays[0].inject_click(abs.x + 2, abs.y + 2, 1);
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(20)).unwrap();
        if fe.engine.session.interp.var_exists("answer") {
            break;
        }
    }
    assert_eq!(
        fe.engine.session.interp.get_var("answer").unwrap(),
        "clicked"
    );
    let snap = snapshot(&mut fe.engine.session);
    assert!(snap["ipc.lines.sent"] >= 1, "{snap:?}");
    assert!(snap["ipc.bytes.sent"] >= "clicked".len() as u64);
    assert!(snap["ipc.lines.received"] >= 1);
    assert!(snap["ipc.lines.interpreted"] >= 1);
    assert!(snap["ipc.roundtrip.count"] >= 1);
    assert!(snap["ipc.roundtrip.p50Ns"] > 0);
    assert_eq!(snap["xt.callbacks.dispatched"], 1);
    fe.kill();
}

/// The causal-attribution scenario: with spans armed, the backend
/// write carrying a command's output opens a detached `ipc.roundtrip`
/// span inside that command's trace, and the backend's reply closes
/// it — a slow reply is attributable to the specific line that caused
/// it. A later `backend kill` journals a supervisor event tagged with
/// the then-active trace ID.
#[test]
fn roundtrip_span_shares_the_trace_of_its_causing_command() {
    // The backend answers the first line, then blocks so only
    // `backend kill` ends it.
    let script = r#"
        read line
        echo "%set answer {$line}"
        read keep
    "#;
    let mut fe = Frontend::spawn(FrontendConfig {
        args: vec!["-c".into(), script.into()],
        mass_channel: false,
        ..FrontendConfig::new("sh")
    })
    .expect("spawn sh");
    fe.engine.session.telemetry.set_enabled(true);
    fe.engine.session.telemetry.set_spans_enabled(true);
    fe.engine.handle_line("%echo ping").unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(20)).unwrap();
        if fe.engine.session.interp.var_exists("answer") {
            break;
        }
    }
    assert_eq!(fe.engine.session.interp.get_var("answer").unwrap(), "ping");
    let spans = fe.engine.session.telemetry.spans_recent(usize::MAX);
    let cmd = spans
        .iter()
        .find(|s| s.kind == "ipc.command" && s.detail == "%echo ping")
        .expect("the dispatched command's span");
    let rt = spans
        .iter()
        .find(|s| s.kind == "ipc.roundtrip")
        .expect("the reply closed the roundtrip span into the ring");
    assert_eq!(rt.detail, "ping", "tagged with the line that was sent");
    assert_eq!(rt.trace, cmd.trace, "roundtrip shares the command's trace");
    assert!(rt.end_tick > rt.begin_tick, "closed, not abandoned");
    // The backend's reply is its own dispatched command: a new trace.
    let reply = spans
        .iter()
        .find(|s| s.kind == "ipc.command" && s.detail.starts_with("%set answer"))
        .expect("the reply's own command span");
    assert_ne!(reply.trace, cmd.trace);
    // Fault attribution: the kill's supervisor.exit event carries the
    // active trace ID.
    fe.engine.session.eval("backend kill").unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut journal = String::new();
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(20)).unwrap();
        journal = fe
            .engine
            .session
            .eval("telemetry journal")
            .unwrap()
            .to_string();
        if journal.contains("supervisor.exit") {
            break;
        }
    }
    assert!(journal.contains("backend kill trace="), "{journal}");
    fe.kill();
}

/// Minimal parser for the flat `{"key":value,...}` objects that
/// `telemetry json` emits: string keys, bare integer values.
fn parse_flat_json(s: &str) -> BTreeMap<String, u64> {
    let body = s
        .trim()
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .unwrap_or_else(|| panic!("not an object: {s}"));
    if body.is_empty() {
        return BTreeMap::new();
    }
    body.split(',')
        .map(|kv| {
            let (k, v) = kv
                .split_once(':')
                .unwrap_or_else(|| panic!("bad pair {kv}"));
            let k = k
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .unwrap_or_else(|| panic!("unquoted key {k}"));
            (
                k.to_string(),
                v.parse().unwrap_or_else(|_| panic!("bad value {v}")),
            )
        })
        .collect()
}

/// `telemetry json` is the same snapshot in machine clothing: the two
/// outputs round-trip to the same key set, and every value outside the
/// interpreter's own self-churning stats (`tcl.*` moves as the probe
/// commands themselves compile and run) matches exactly.
#[test]
fn telemetry_json_round_trips_against_the_text_snapshot() {
    let mut e = ProtocolEngine::new(Flavor::Athena);
    e.session.telemetry.set_enabled(true);
    e.handle_line("%label l topLevel label hi\n").unwrap();
    e.handle_line("%telemetry disable\n").unwrap();
    let json = e.session.eval("telemetry json").unwrap().to_string();
    let snap = snapshot(&mut e.session);
    let parsed = parse_flat_json(&json);
    let json_keys: Vec<&String> = parsed.keys().collect();
    let snap_keys: Vec<&String> = snap.keys().collect();
    assert_eq!(json_keys, snap_keys);
    for (k, v) in &parsed {
        if !k.starts_with("tcl.") {
            assert_eq!(snap[k], *v, "key {k}");
        }
    }
    // The store itself was frozen by the disable, so the counters the
    // handled lines produced survive the round trip verbatim.
    assert_eq!(parsed["ipc.lines.received"], 2);
    assert!(parsed["xt.widget.creates"] >= 1);
}

/// Overflowing the journal ring is observable: the dropped counter
/// climbs, survives `clear`, and the snapshot exports it alongside the
/// surviving entries' unbroken sequence numbers.
#[test]
fn journal_overflow_is_counted_and_exported() {
    let mut e = ProtocolEngine::new(Flavor::Athena);
    let tel = e.session.telemetry.clone();
    tel.set_enabled(true);
    tel.set_journal_capacity(4);
    for i in 0..10 {
        tel.event("test.tick", || format!("n{i}"));
    }
    let snap = snapshot(&mut e.session);
    assert_eq!(snap["trace.journal.capacity"], 4);
    assert_eq!(snap["trace.journal.retained"], 4);
    assert_eq!(snap["trace.journal.total"], 10);
    assert_eq!(snap["trace.journal.dropped"], 6);
    // The survivors are the newest four, seq still monotonic.
    let entries = e.session.eval("telemetry journal").unwrap().to_string();
    let seqs: Vec<String> = parse_list(&entries)
        .unwrap()
        .iter()
        .map(|entry| parse_list(entry).unwrap()[0].clone())
        .collect();
    assert_eq!(seqs, ["7", "8", "9", "10"]);
}
