//! Error-path coverage for the two environment-driven configuration
//! surfaces: `WAFE_BACKEND_*` (supervisor policy) and `WAFE_FAULTS`
//! (fault-injection plans). The happy paths are exercised all over the
//! chaos suite; these tests pin down what happens when an operator
//! exports something malformed — every bad value must either produce a
//! warning (supervisor: default kept, reason reported) or a hard error
//! naming the offending clause (fault plans), never a silent no-op.

use std::collections::HashMap;

use wafe_ipc::supervisor::SupervisorConfig;
use wafe_ipc::FaultPlan;

fn from_map(vars: &[(&str, &str)]) -> (SupervisorConfig, Vec<String>) {
    let map: HashMap<String, String> = vars
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    SupervisorConfig::from_vars(|var| map.get(var).cloned())
}

#[test]
fn supervisor_happy_path_parses_all_vars() {
    let (c, warnings) = from_map(&[
        ("WAFE_BACKEND_TIMEOUT", "250"),
        ("WAFE_BACKEND_ROUNDTRIP", " 500 "),
        ("WAFE_BACKEND_RETRIES", "3"),
        ("WAFE_BACKEND_BACKOFF", "10"),
        ("WAFE_BACKEND_BACKOFF_MAX", "80"),
        ("WAFE_BACKEND_FLOOD_LINES", "100"),
        ("WAFE_BACKEND_FLOOD_BYTES", "4096"),
        ("WAFE_BACKEND_QUEUE", "16"),
        ("WAFE_BACKEND_RESTART_ON_EXIT", "1"),
        ("WAFE_BACKEND_STAY_ALIVE", "0"),
    ]);
    assert_eq!(warnings, Vec::<String>::new());
    assert_eq!(c.read_timeout_ms, Some(250));
    assert_eq!(c.roundtrip_timeout_ms, Some(500));
    assert_eq!(c.max_restarts, 3);
    assert_eq!(c.backoff_base_ms, 10);
    assert_eq!(c.backoff_max_ms, 80);
    assert_eq!(c.max_lines_per_tick, 100);
    assert_eq!(c.max_buffered_bytes, 4096);
    assert_eq!(c.queue_cap, 16);
    assert!(c.restart_on_exit);
    assert!(!c.stay_alive_when_broken);
}

#[test]
fn supervisor_malformed_values_warn_and_keep_defaults() {
    let defaults = SupervisorConfig::default();
    for (var, bad) in [
        ("WAFE_BACKEND_TIMEOUT", "5s"),
        ("WAFE_BACKEND_ROUNDTRIP", "half a second"),
        ("WAFE_BACKEND_RETRIES", "-1"),
        ("WAFE_BACKEND_BACKOFF", ""),
        ("WAFE_BACKEND_QUEUE", "10.5"),
        ("WAFE_BACKEND_RESTART_ON_EXIT", "yes"),
    ] {
        let (c, warnings) = from_map(&[(var, bad)]);
        assert_eq!(warnings.len(), 1, "{var}={bad} must warn");
        assert!(
            warnings[0].contains(var),
            "warning must name the variable: {}",
            warnings[0]
        );
        assert_eq!(c.read_timeout_ms, defaults.read_timeout_ms);
        assert_eq!(c.max_restarts, defaults.max_restarts);
        assert_eq!(c.queue_cap, defaults.queue_cap);
        assert_eq!(c.restart_on_exit, defaults.restart_on_exit);
    }
}

#[test]
fn supervisor_out_of_range_values_warn_and_keep_defaults() {
    // u64 overflow: more digits than u64 can hold.
    let (c, warnings) = from_map(&[("WAFE_BACKEND_TIMEOUT", "99999999999999999999999")]);
    assert_eq!(warnings.len(), 1);
    assert_eq!(c.read_timeout_ms, None);

    // Fits u64 but not the u32 retries field.
    let (c, warnings) = from_map(&[("WAFE_BACKEND_RETRIES", "4294967296")]);
    assert_eq!(warnings.len(), 1);
    assert!(
        warnings[0].contains("out of range"),
        "warning must say why: {}",
        warnings[0]
    );
    assert_eq!(c.max_restarts, 0);

    // Booleans only accept 0/1.
    let (c, warnings) = from_map(&[("WAFE_BACKEND_STAY_ALIVE", "2")]);
    assert_eq!(warnings.len(), 1);
    assert!(!c.stay_alive_when_broken);
}

#[test]
fn supervisor_collects_every_warning_not_just_the_first() {
    let (c, warnings) = from_map(&[
        ("WAFE_BACKEND_TIMEOUT", "soon"),
        ("WAFE_BACKEND_RETRIES", "99999999999999999999999"),
        ("WAFE_BACKEND_QUEUE", "32"),
    ]);
    assert_eq!(warnings.len(), 2);
    assert_eq!(c.queue_cap, 32, "good values still apply");
}

#[test]
fn fault_plan_rejects_malformed_clauses() {
    for (spec, fragment) in [
        ("line", "no ':'"),
        ("bogus:kill", "unknown fault point"),
        ("line:explode", "unknown fault action"),
        ("line:delay=abc", "bad delay"),
        ("line:truncate=", "bad truncate length"),
        ("line:flood=0", "flood count must be positive"),
        ("line:kill@%0", "trigger period must be positive"),
        ("line:kill@soon", "bad trigger"),
        ("seed=abc", "bad seed"),
        ("", "no clauses"),
        ("seed=7", "no clauses"),
    ] {
        let err = FaultPlan::parse(spec).expect_err(spec);
        assert!(
            err.contains(fragment),
            "\"{spec}\" must mention \"{fragment}\", got: {err}"
        );
    }
}

#[test]
fn fault_plan_rejects_out_of_range_numbers() {
    // One digit past u64::MAX in every numeric position.
    let over = "18446744073709551616";
    for spec in [
        format!("line:delay={over}"),
        format!("line:truncate={over}"),
        format!("line:flood={over}"),
        format!("line:kill@{over}"),
        format!("line:kill@{over}+"),
        format!("line:kill@%{over}"),
        format!("seed={over}"),
    ] {
        assert!(
            FaultPlan::parse(&spec).is_err(),
            "\"{spec}\" must not parse"
        );
    }
}

#[test]
fn fault_plan_happy_path_still_parses() {
    let plan = FaultPlan::parse("line:kill@3; read:garble@%2; seed=42").unwrap();
    assert_eq!(plan.describe().len(), 2);
    assert_eq!(plan.seed(), 42);
}
