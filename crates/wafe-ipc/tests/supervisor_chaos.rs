//! The deterministic chaos suite: every fault kind the `FaultPlan`
//! substrate can inject — kill mid-line, wedge, flood, garble,
//! slow-drip — plus the restart/queue/breaker behaviour around them.
//!
//! Determinism rules: faults trigger on *line/chunk ordinals* (stable
//! whatever the pipe chunking), garbling is seeded, and every timeout
//! decision runs on the supervisor's virtual tick clock — the test
//! loops below are bounded step counts, never wall-clock sleeps in the
//! assertions.

use std::time::Duration;

use wafe_ipc::{BackendState, FaultPlan, Frontend, FrontendConfig, SupervisorConfig};

/// Steps at most `max_ticks`; returns as soon as `done` holds. Panics
/// if the loop ends (step -> false) before the predicate is satisfied.
fn run_until(fe: &mut Frontend, max_ticks: usize, mut done: impl FnMut(&mut Frontend) -> bool) {
    for _ in 0..max_ticks {
        if done(fe) {
            return;
        }
        if !fe.step(Duration::from_millis(10)).expect("step") {
            assert!(done(fe), "loop ended before the condition held");
            return;
        }
    }
    panic!("condition not reached within {max_ticks} ticks");
}

/// Steps until the loop reports it ended; panics after `max_ticks`.
fn run_to_end(fe: &mut Frontend, max_ticks: usize) {
    for _ in 0..max_ticks {
        if !fe.step(Duration::from_millis(10)).expect("step") {
            return;
        }
    }
    panic!("loop did not end within {max_ticks} ticks");
}

fn spawn_sh(script: &str, supervisor: SupervisorConfig, faults: &str) -> Frontend {
    let mut config = FrontendConfig {
        args: vec!["-c".into(), script.into()],
        mass_channel: false,
        ..FrontendConfig::new("sh")
    };
    config.supervisor = supervisor;
    if !faults.is_empty() {
        config.faults = Some(FaultPlan::parse(faults).expect("fault spec"));
    }
    Frontend::spawn(config).expect("spawn sh")
}

/// Small backoffs so the whole suite stays fast under the ci.sh
/// 50-iteration loop guard.
fn fast_restarts(max: u32) -> SupervisorConfig {
    SupervisorConfig {
        max_restarts: max,
        backoff_base_ms: 10,
        backoff_max_ms: 20,
        ..SupervisorConfig::default()
    }
}

#[test]
fn kill_mid_line_restarts_and_replays() {
    // The fault plan kills the backend exactly when its 2nd protocol
    // line is assembled — mid-conversation. The restarted incarnation
    // replays the script from the top; line hits 3..5 match no trigger.
    let script = "echo '%set a 1'; echo '%set b 2'; echo '%set c 3'; sleep 5";
    let mut fe = spawn_sh(script, fast_restarts(3), "line:kill@2");
    run_until(&mut fe, 500, |fe| {
        fe.supervisor_stats().restarts >= 1 && fe.engine.session.interp.var_exists("c")
    });
    let stats = fe.supervisor_stats();
    assert_eq!(stats.restarts, 1, "exactly one restart");
    assert_eq!(stats.faults_injected, 1, "the kill fired once");
    assert_eq!(stats.breaker_trips, 0);
    assert_eq!(fe.backend_state(), BackendState::Running);
    for (var, val) in [("a", "1"), ("b", "2"), ("c", "3")] {
        assert_eq!(
            fe.engine.session.interp.get_var(var).unwrap(),
            val,
            "replayed incarnation must set {var}"
        );
    }
    fe.kill();
}

#[test]
fn wedged_backend_trips_read_timeout_then_breaker() {
    // The backend *is* writing, but the wedge fault swallows every
    // chunk — from the supervisor's viewpoint the pipe went silent.
    // Each incarnation trips the read timeout; after the restart budget
    // the breaker opens and the loop ends instead of hanging forever.
    let script = "for i in 1 2 3 4 5; do echo '%set alive 1'; done; sleep 5";
    let mut supervisor = fast_restarts(2);
    supervisor.read_timeout_ms = Some(50);
    let mut fe = spawn_sh(script, supervisor, "read:wedge");
    run_to_end(&mut fe, 500);
    let stats = fe.supervisor_stats();
    assert_eq!(fe.backend_state(), BackendState::Broken);
    assert_eq!(stats.read_timeouts, 3, "initial try + 2 restarts");
    assert_eq!(stats.restarts, 2);
    assert_eq!(stats.breaker_trips, 1);
    assert!(
        !fe.engine.session.interp.var_exists("alive"),
        "wedged chunks must never reach the interpreter"
    );
    fe.kill();
}

#[test]
fn flood_is_throttled_not_fatal() {
    // One line is replicated into 300 copies by the fault plan; the
    // per-tick cap spreads them over many ticks instead of starving the
    // GUI, and every copy is still delivered.
    let script = "echo '%set n 0'; echo '%incr n'; sleep 5";
    let mut supervisor = fast_restarts(0);
    supervisor.max_lines_per_tick = 50;
    let mut fe = spawn_sh(script, supervisor, "line:flood=300@2");
    run_until(&mut fe, 500, |fe| {
        fe.engine
            .session
            .interp
            .get_var("n")
            .map(|v| v == "300")
            .unwrap_or(false)
    });
    let stats = fe.supervisor_stats();
    assert!(stats.flood_trips >= 1, "the throttle engaged: {stats:?}");
    assert_eq!(stats.restarts, 0, "flooding is not a restart-worthy fault");
    assert_eq!(stats.faults_injected, 1);
    assert_eq!(fe.backend_state(), BackendState::Running);
    fe.kill();
}

#[test]
fn garbled_line_is_contained() {
    // Seeded garbling corrupts exactly the 2nd line; the lines around
    // it are untouched and the damage is one recorded protocol error.
    let script = "echo '%set before ok'; echo '%set target val'; echo '%set after ok'; sleep 5";
    let mut fe = spawn_sh(script, fast_restarts(0), "line:garble@2;seed=42");
    run_until(&mut fe, 500, |fe| {
        fe.engine.session.interp.var_exists("after")
    });
    assert_eq!(fe.engine.session.interp.get_var("before").unwrap(), "ok");
    assert_eq!(fe.engine.session.interp.get_var("after").unwrap(), "ok");
    assert!(
        !fe.engine.session.interp.var_exists("target"),
        "the garbled line must not have executed as written"
    );
    let errors = fe.engine.take_errors();
    assert!(
        !errors.is_empty(),
        "garbled command line must surface as a protocol error"
    );
    let stats = fe.supervisor_stats();
    assert_eq!(stats.faults_injected, 1);
    assert_eq!(stats.restarts, 0);
    assert_eq!(fe.backend_state(), BackendState::Running);
    fe.kill();
}

#[test]
fn slow_drip_delays_but_loses_nothing() {
    // Every chunk is held back 30 virtual ms. The child exits long
    // before its bytes are released — the exited-and-drained check must
    // wait for the delayed queue, not end the loop early.
    let script = "echo '%set d1 1'; echo '%set d2 2'";
    let mut fe = spawn_sh(script, fast_restarts(0), "read:delay=30");
    run_to_end(&mut fe, 500);
    assert_eq!(fe.backend_state(), BackendState::Exited);
    assert_eq!(fe.engine.session.interp.get_var("d1").unwrap(), "1");
    assert_eq!(fe.engine.session.interp.get_var("d2").unwrap(), "2");
    let stats = fe.supervisor_stats();
    assert!(stats.faults_injected >= 1, "{stats:?}");
    assert_eq!(stats.restarts, 0);
}

#[test]
fn killed_backend_restarts_and_flushes_queue_in_order() {
    // The acceptance scenario: the backend is killed externally, three
    // callback strings are sent while it is down, and after the restart
    // the fresh incarnation receives them in order (its own line
    // counter proves the order).
    let script = r#"i=0; while read l; do i=$((i+1)); echo "%set order_${l} $i"; done"#;
    let mut fe = spawn_sh(script, fast_restarts(3), "");
    fe.send_to_app("one").unwrap();
    run_until(&mut fe, 500, |fe| {
        fe.engine.session.interp.var_exists("order_one")
    });
    assert_eq!(fe.engine.session.interp.get_var("order_one").unwrap(), "1");

    fe.kill_backend();
    // The first send hits the dead pipe -> fault -> queued; the rest
    // queue directly while the supervisor is restarting.
    fe.send_to_app("two").unwrap();
    fe.send_to_app("three").unwrap();
    fe.send_to_app("four").unwrap();
    run_until(&mut fe, 500, |fe| {
        fe.engine.session.interp.var_exists("order_four")
    });
    let stats = fe.supervisor_stats();
    assert_eq!(stats.restarts, 1, "{stats:?}");
    assert_eq!(stats.queue_flushed, 3);
    assert_eq!(stats.queue_dropped, 0);
    // The new incarnation counts from 1: order proves in-order flush.
    assert_eq!(fe.engine.session.interp.get_var("order_two").unwrap(), "1");
    assert_eq!(
        fe.engine.session.interp.get_var("order_three").unwrap(),
        "2"
    );
    assert_eq!(fe.engine.session.interp.get_var("order_four").unwrap(), "3");
    assert_eq!(fe.backend_state(), BackendState::Running);
    fe.kill();
}

#[test]
fn queue_overflow_drops_newest_with_accounting() {
    let script = r#"while read l; do echo "%set got_$l 1"; done"#;
    let mut supervisor = fast_restarts(0); // breaker opens on first fault
    supervisor.queue_cap = 2;
    supervisor.stay_alive_when_broken = true;
    let mut fe = spawn_sh(script, supervisor, "");
    fe.send_to_app("ready").unwrap();
    run_until(&mut fe, 500, |fe| {
        fe.engine.session.interp.var_exists("got_ready")
    });

    fe.kill_backend();
    for msg in ["a", "b", "c", "d", "e"] {
        fe.send_to_app(msg).unwrap();
    }
    // One bounded tick to let the breaker state settle; the GUI session
    // stays alive because stayAliveWhenBroken is set.
    assert!(fe.step(Duration::from_millis(10)).unwrap());
    let stats = fe.supervisor_stats();
    assert_eq!(fe.backend_state(), BackendState::Broken);
    assert_eq!(stats.breaker_trips, 1);
    assert_eq!(stats.queue_dropped, 3, "cap 2: a+b kept, c/d/e dropped");
    let status = fe.engine.session.eval("backend status").unwrap();
    assert!(status.contains("broken"), "{status}");
    assert!(status.contains("dropped 3"), "{status}");
    assert_eq!(fe.engine.session.eval("backend queue").unwrap(), "a b");

    // `backend restart` resets the breaker and flushes what was kept.
    fe.engine.session.eval("backend restart").unwrap();
    run_until(&mut fe, 500, |fe| {
        fe.engine.session.interp.var_exists("got_b")
    });
    let stats = fe.supervisor_stats();
    assert_eq!(stats.restarts, 1);
    assert_eq!(stats.queue_flushed, 2);
    assert_eq!(fe.backend_state(), BackendState::Running);
    assert!(fe.engine.session.interp.var_exists("got_a"));
    assert!(
        !fe.engine.session.interp.var_exists("got_c"),
        "c was dropped"
    );

    // `backend kill` ends the backend for good; the loop reports done.
    fe.engine.session.eval("backend kill").unwrap();
    run_to_end(&mut fe, 500);
    assert_eq!(fe.backend_state(), BackendState::Exited);
}

#[test]
fn park_and_restore_into_a_fresh_process_replays_the_queue_byte_identically() {
    // The checkpoint/restore acceptance scenario: the backend is killed
    // mid-conversation, further sends pile into the supervisor's
    // bounded queue, the whole session is parked — queue included —
    // and restored into a brand-new process. The replayed queue must
    // make the new backend produce byte-identical results to a control
    // run that never saw a kill or a park.
    let script = r#"while read l; do echo "%lappend log $l"; done"#;

    // Control: the same three sends, uninterrupted.
    let mut control = spawn_sh(script, fast_restarts(0), "");
    for msg in ["one", "two", "three"] {
        control.send_to_app(msg).unwrap();
    }
    run_until(&mut control, 500, |fe| {
        fe.engine
            .session
            .interp
            .get_var("log")
            .map(|v| v == "one two three")
            .unwrap_or(false)
    });
    let want: String = control.engine.session.interp.get_var("log").unwrap().into();
    control.kill();

    // Experiment: "one" is delivered, then the backend dies
    // mid-conversation. The remaining sends queue against the dead
    // pipe (breaker open, no restart budget), and the session is
    // parked with the queue still pending.
    let mut supervisor = fast_restarts(0);
    supervisor.stay_alive_when_broken = true;
    let mut fe = spawn_sh(script, supervisor, "");
    fe.engine
        .session
        .eval("proc stamp {x} {return \"tagged $x\"}")
        .unwrap();
    fe.send_to_app("one").unwrap();
    run_until(&mut fe, 500, |fe| {
        fe.engine.session.interp.var_exists("log")
    });
    fe.kill_backend();
    fe.send_to_app("two").unwrap();
    fe.send_to_app("three").unwrap();
    assert!(fe.step(Duration::from_millis(10)).unwrap());
    assert_eq!(fe.backend_state(), BackendState::Broken);
    let bytes = fe.park_snapshot();
    fe.kill();

    // A brand-new process: restore the snapshot; the supervisor's
    // replay machinery delivers the parked queue in order.
    let mut supervisor = fast_restarts(0);
    supervisor.stay_alive_when_broken = true;
    let mut fe2 = spawn_sh(script, supervisor, "");
    let report = fe2.restore_snapshot(&bytes).unwrap();
    assert!(report.globals >= 1, "{report:?}");
    assert!(report.procs >= 1, "{report:?}");
    run_until(&mut fe2, 500, |fe| {
        fe.engine
            .session
            .interp
            .get_var("log")
            .map(|v| v == want.as_str())
            .unwrap_or(false)
    });
    assert_eq!(
        String::from(fe2.engine.session.interp.get_var("log").unwrap()),
        want,
        "park + restore + replay must be byte-identical to the control run"
    );
    // Interp state (the proc) came through the snapshot too.
    assert_eq!(
        fe2.engine.session.eval("stamp done").unwrap(),
        "tagged done"
    );
    assert_eq!(fe2.supervisor_stats().queue_dropped, 0);
    fe2.kill();
}

#[test]
fn roundtrip_timeout_restarts_a_mute_backend() {
    // The backend reads the request but never answers; the round-trip
    // timeout (virtual time) declares the fault.
    let script = "read x; sleep 5";
    let mut supervisor = fast_restarts(1);
    supervisor.roundtrip_timeout_ms = Some(50);
    let mut fe = spawn_sh(script, supervisor, "");
    fe.send_to_app("are you there").unwrap();
    run_until(&mut fe, 500, |fe| fe.supervisor_stats().restarts >= 1);
    let stats = fe.supervisor_stats();
    assert_eq!(stats.roundtrip_timeouts, 1, "{stats:?}");
    assert_eq!(stats.restarts, 1);
    // The fresh incarnation has no unanswered write: no further faults.
    for _ in 0..10 {
        fe.step(Duration::from_millis(10)).unwrap();
    }
    assert_eq!(fe.supervisor_stats().roundtrip_timeouts, 1);
    assert_eq!(fe.backend_state(), BackendState::Running);
    fe.kill();
}

#[test]
fn faultpoint_command_scripts_the_plan_at_runtime() {
    let script = r#"while read l; do echo "%set got_$l 1"; done"#;
    let mut fe = spawn_sh(script, fast_restarts(3), "");
    fe.send_to_app("before").unwrap();
    run_until(&mut fe, 500, |fe| {
        fe.engine.session.interp.var_exists("got_before")
    });
    // Install a plan from Tcl: drop every line from now on.
    assert_eq!(
        fe.engine.session.eval("faultpoint set line:drop").unwrap(),
        "1"
    );
    let listing = fe.engine.session.eval("faultpoint list").unwrap();
    assert!(listing.contains("line:drop"), "{listing}");
    fe.send_to_app("during").unwrap();
    for _ in 0..20 {
        fe.step(Duration::from_millis(10)).unwrap();
    }
    assert!(
        !fe.engine.session.interp.var_exists("got_during"),
        "lines are dropped while the plan is active"
    );
    assert!(fe.supervisor_stats().faults_injected >= 1);
    // Clear it: traffic flows again.
    fe.engine.session.eval("faultpoint clear").unwrap();
    assert_eq!(fe.engine.session.eval("faultpoint list").unwrap(), "");
    fe.send_to_app("after").unwrap();
    run_until(&mut fe, 500, |fe| {
        fe.engine.session.interp.var_exists("got_after")
    });
    fe.kill();
}

#[test]
fn backend_config_reads_and_writes_knobs() {
    let script = "sleep 5";
    let mut fe = spawn_sh(script, fast_restarts(0), "");
    // Full listing is a flat key/value list containing every knob.
    let listing = fe.engine.session.eval("backend config").unwrap();
    for key in ["readTimeout", "retries", "queueCap", "floodLines"] {
        assert!(listing.contains(key), "{listing}");
    }
    assert_eq!(
        fe.engine
            .session
            .eval("backend config readTimeout")
            .unwrap(),
        "0"
    );
    fe.engine
        .session
        .eval("backend config readTimeout 250")
        .unwrap();
    assert_eq!(
        fe.engine
            .session
            .eval("backend config readTimeout")
            .unwrap(),
        "250"
    );
    assert!(fe.engine.session.eval("backend config bogusKnob").is_err());
    assert!(fe.engine.session.eval("backend bogus-subcommand").is_err());
    fe.kill();
}
