//! Safe readiness polling over the `poll(2)` FFI shim.
//!
//! The frontend always multiplexed the backend's pipes with `poll(2)`
//! ("which is what keeps the GUI responsive while the application is
//! busy"); wafe-serve's event loop generalizes that to thousands of
//! sockets. Both go through this module so there is exactly one unsafe
//! poll call in the workspace.
//!
//! The [`Poller`] trait is deliberately stateless about registration:
//! the caller owns its interest list and passes it on every wait. That
//! keeps the contract level-triggered and makes the simulated
//! implementation ([`SimPoller`]) trivially deterministic — readiness
//! is whatever the test scripted, not whatever a kernel felt like
//! coalescing.

use std::collections::BTreeMap;
use std::io;
use std::os::unix::io::RawFd;

use crate::sys;

/// One fd the caller wants readiness for.
///
/// `token` is an opaque caller-chosen identifier echoed back in
/// [`Readiness`]; the event loop uses its connection slot so a poll
/// result never needs an fd→session lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub token: usize,
    pub fd: RawFd,
    /// Wait for readability (`POLLIN`). Off for a connection that hit
    /// EOF but still has buffered output — level-triggered `POLLIN`
    /// on an EOF'd socket would otherwise spin.
    pub read: bool,
    /// Wait for writability (`POLLOUT`).
    pub write: bool,
}

impl Interest {
    /// A plain read interest — the common case.
    pub fn read(token: usize, fd: RawFd) -> Interest {
        Interest {
            token,
            fd,
            read: true,
            write: false,
        }
    }
}

/// Readiness reported for one [`Interest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Readiness {
    pub token: usize,
    pub readable: bool,
    pub writable: bool,
    /// Peer hung up or the fd errored; treat as readable-to-EOF.
    pub hup: bool,
}

impl Readiness {
    /// True when the fd needs any attention at all.
    pub fn any(&self) -> bool {
        self.readable || self.writable || self.hup
    }
}

/// A level-triggered readiness source.
///
/// `wait` blocks up to `timeout_ms` (0 = just check, negative = block
/// forever) and appends one [`Readiness`] per ready interest to `out`
/// (cleared first). An empty interest list is a plain sleep — the
/// accept loop leans on that to back off after `EMFILE`.
pub trait Poller: Send {
    /// Backend name surfaced in `serve status` (`"poll"` / `"sim"`).
    fn name(&self) -> &'static str;
    fn wait(
        &mut self,
        interests: &[Interest],
        timeout_ms: i32,
        out: &mut Vec<Readiness>,
    ) -> io::Result<()>;
}

/// The real `poll(2)` backend.
///
/// Keeps its `pollfd` buffer across calls so steady-state waits don't
/// reallocate.
#[derive(Default)]
pub struct SysPoller {
    fds: Vec<sys::pollfd>,
}

impl SysPoller {
    pub fn new() -> SysPoller {
        SysPoller::default()
    }
}

impl Poller for SysPoller {
    fn name(&self) -> &'static str {
        "poll"
    }

    fn wait(
        &mut self,
        interests: &[Interest],
        timeout_ms: i32,
        out: &mut Vec<Readiness>,
    ) -> io::Result<()> {
        out.clear();
        if interests.is_empty() {
            if timeout_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(timeout_ms as u64));
            }
            return Ok(());
        }
        self.fds.clear();
        for i in interests {
            let mut events = 0;
            if i.read {
                events |= sys::POLLIN;
            }
            if i.write {
                events |= sys::POLLOUT;
            }
            self.fds.push(sys::pollfd {
                fd: i.fd,
                events,
                revents: 0,
            });
        }
        // SAFETY: fds is a valid array of initialised pollfd structs
        // matching interests in length.
        let rc = unsafe {
            sys::poll(
                self.fds.as_mut_ptr(),
                self.fds.len() as sys::nfds_t,
                timeout_ms,
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(()); // EINTR: report nothing ready, caller re-polls
            }
            return Err(err);
        }
        for (i, p) in interests.iter().zip(self.fds.iter()) {
            let r = Readiness {
                token: i.token,
                readable: p.revents & sys::POLLIN != 0,
                writable: p.revents & sys::POLLOUT != 0,
                hup: p.revents & (sys::POLLHUP | sys::POLLERR | sys::POLLNVAL) != 0,
            };
            if r.any() {
                out.push(r);
            }
        }
        Ok(())
    }
}

/// Deterministic poller for virtual-tick tests: readiness is exactly
/// what the test marked via [`SimPoller::set_ready`], filtered against
/// the interests the caller is currently watching.
#[derive(Default)]
pub struct SimPoller {
    ready: BTreeMap<usize, Readiness>,
}

impl SimPoller {
    pub fn new() -> SimPoller {
        SimPoller::default()
    }

    /// Marks `token` as ready; sticks until [`clear_ready`](Self::clear_ready).
    pub fn set_ready(&mut self, token: usize, readable: bool, writable: bool, hup: bool) {
        self.ready.insert(
            token,
            Readiness {
                token,
                readable,
                writable,
                hup,
            },
        );
    }

    pub fn clear_ready(&mut self, token: usize) {
        self.ready.remove(&token);
    }
}

impl Poller for SimPoller {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn wait(
        &mut self,
        interests: &[Interest],
        _timeout_ms: i32,
        out: &mut Vec<Readiness>,
    ) -> io::Result<()> {
        out.clear();
        for i in interests {
            if let Some(r) = self.ready.get(&i.token) {
                let r = Readiness {
                    token: i.token,
                    readable: r.readable && i.read,
                    writable: r.writable && i.write,
                    hup: r.hup,
                };
                if r.any() {
                    out.push(r);
                }
            }
        }
        Ok(())
    }
}

/// Owned interest list + scratch buffers around a [`Poller`] — the
/// ergonomic face most callers want.
pub struct PollSet {
    poller: Box<dyn Poller>,
    interests: Vec<Interest>,
    ready: Vec<Readiness>,
}

impl PollSet {
    pub fn new(poller: Box<dyn Poller>) -> PollSet {
        PollSet {
            poller,
            interests: Vec::new(),
            ready: Vec::new(),
        }
    }

    pub fn backend(&self) -> &'static str {
        self.poller.name()
    }

    /// Replaces any existing interest for `token`.
    pub fn register(&mut self, interest: Interest) {
        self.deregister(interest.token);
        self.interests.push(interest);
    }

    pub fn deregister(&mut self, token: usize) {
        self.interests.retain(|i| i.token != token);
    }

    /// Flips the write-interest bit without re-registering.
    pub fn set_write_interest(&mut self, token: usize, write: bool) {
        for i in &mut self.interests {
            if i.token == token {
                i.write = write;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.interests.len()
    }

    pub fn is_empty(&self) -> bool {
        self.interests.is_empty()
    }

    /// Waits up to `timeout_ms`; returns the ready set (empty on
    /// timeout or `EINTR`).
    pub fn wait(&mut self, timeout_ms: i32) -> io::Result<&[Readiness]> {
        self.poller
            .wait(&self.interests, timeout_ms, &mut self.ready)?;
        Ok(&self.ready)
    }
}

/// Puts `fd` into non-blocking mode via `fcntl(2)`.
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl F_GETFL/F_SETFL on an owned, valid fd.
    unsafe {
        let flags = sys::fcntl(fd, sys::F_GETFL);
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        if sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

/// True when `err` is `EMFILE`/`ENFILE` — the accept loop must back
/// off instead of spinning on these.
pub fn is_fd_exhaustion(err: &io::Error) -> bool {
    matches!(err.raw_os_error(), Some(sys::EMFILE) | Some(sys::ENFILE))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_poller_reports_only_watched_tokens() {
        let mut p = SimPoller::new();
        p.set_ready(3, true, false, false);
        p.set_ready(9, true, false, false);
        let mut out = Vec::new();
        let interests = [Interest::read(3, -1)];
        p.wait(&interests, 0, &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, 3);
        assert!(out[0].readable);
    }

    #[test]
    fn sim_poller_write_readiness_requires_interest() {
        let mut p = SimPoller::new();
        p.set_ready(1, false, true, false);
        let mut out = Vec::new();
        p.wait(&[Interest::read(1, -1)], 0, &mut out).unwrap();
        assert!(out.is_empty());
        p.wait(
            &[Interest {
                token: 1,
                fd: -1,
                read: true,
                write: true,
            }],
            0,
            &mut out,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].writable);
    }

    #[test]
    fn sys_poller_sees_pipe_readability() {
        let mut fds = [0i32; 2];
        // SAFETY: fds is a valid 2-element array for pipe(2).
        assert_eq!(unsafe { sys::pipe(fds.as_mut_ptr()) }, 0);
        let (r, w) = (fds[0], fds[1]);
        let mut set = PollSet::new(Box::new(SysPoller::new()));
        set.register(Interest::read(7, r));
        assert!(set.wait(0).unwrap().is_empty());
        // SAFETY: writing to an owned pipe write end.
        unsafe {
            let byte = b"x";
            extern "C" {
                fn write(fd: i32, buf: *const u8, n: usize) -> isize;
            }
            assert_eq!(write(w, byte.as_ptr(), 1), 1);
        }
        let ready = set.wait(100).unwrap();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].token, 7);
        assert!(ready[0].readable);
        // SAFETY: closing owned fds.
        unsafe {
            sys::close(r);
            sys::close(w);
        }
    }

    #[test]
    fn pollset_register_replaces_and_flips_write() {
        let mut set = PollSet::new(Box::new(SimPoller::new()));
        set.register(Interest::read(1, 10));
        set.register(Interest::read(1, 11));
        assert_eq!(set.len(), 1);
        set.set_write_interest(1, true);
        set.register(Interest::read(2, 12));
        set.deregister(1);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn fd_exhaustion_classifier() {
        assert!(is_fd_exhaustion(&io::Error::from_raw_os_error(24)));
        assert!(is_fd_exhaustion(&io::Error::from_raw_os_error(23)));
        assert!(!is_fd_exhaustion(&io::Error::from_raw_os_error(11)));
    }
}
