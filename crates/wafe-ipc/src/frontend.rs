//! The real-process frontend: child spawning and pipe multiplexing.
//!
//! The child process lives behind the supervisor (`supervisor.rs`):
//! this module owns the raw transport — spawning with the mass-channel
//! fd wired in, non-blocking reads, poll(2) multiplexing — packaged as
//! a [`ChildLink`] the supervisor can tear down and respawn.

use std::cell::Cell;
use std::io::{Read, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::process::CommandExt;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use wafe_core::Flavor;

use crate::codec::LineCodec;
use crate::fault::FaultPlan;
use crate::poll::{set_nonblocking, Interest, Poller, SysPoller};
use crate::protocol::ProtocolEngine;
use crate::supervisor::{
    install_controls, BackendState, Supervisor, SupervisorConfig, SupervisorCore, SupervisorStats,
};
use crate::sys as libc;

/// The fd number at which the child inherits the write end of the
/// mass-transfer channel; `getChannel` reports the fd Wafe listens on.
pub const MASS_CHANNEL_CHILD_FD: i32 = 5;

/// Derives the backend program name from the frontend's `argv[0]`,
/// reproducing the paper's link-name scheme: "If a link like
/// `ln -s wafe xwafeApp` is established and `xwafeApp` is executed, the
/// program `wafeApp` is spawned as a subprocess".
pub fn backend_from_argv0(argv0: &str) -> Option<String> {
    let base = argv0.rsplit('/').next().unwrap_or(argv0);
    if matches!(base, "wafe" | "mofe") {
        return None; // Plain wafe: no implicit backend.
    }
    base.strip_prefix('x')
        .filter(|rest| !rest.is_empty())
        .map(|rest| rest.to_string())
}

/// Everything needed to (re)spawn one backend incarnation.
pub struct SpawnSpec {
    /// The backend program to run.
    pub program: String,
    /// Arguments for the backend (the application's share of argv).
    pub args: Vec<String>,
    /// Create the mass-transfer channel.
    pub mass_channel: bool,
    /// Initial command sent to the backend after each spawn (the
    /// paper's `InitCom` resource, e.g. a Prolog startup goal).
    pub init_com: Option<String>,
}

/// One live child incarnation: process plus its pipes.
pub(crate) struct ChildLink {
    child: Child,
    stdin: ChildStdin,
    stdout: ChildStdout,
    mass_read: Option<std::fs::File>,
    exited: bool,
}

impl ChildLink {
    /// Spawns the backend and wires the channels (Figure 4). When the
    /// mass channel is requested, `channel_fd` is updated to the read
    /// end Wafe listens on.
    pub(crate) fn spawn(spec: &SpawnSpec, channel_fd: &Cell<i64>) -> std::io::Result<ChildLink> {
        let mut cmd = Command::new(&spec.program);
        cmd.args(&spec.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let mut mass_read = None;
        let mut parent_write_fd = None;
        if spec.mass_channel {
            // A pipe whose write end the child inherits at a fixed fd.
            let mut fds = [0i32; 2];
            // SAFETY: fds is a valid 2-element array for pipe(2).
            let rc = unsafe { libc::pipe(fds.as_mut_ptr()) };
            if rc != 0 {
                return Err(std::io::Error::last_os_error());
            }
            let (read_fd, write_fd) = (fds[0], fds[1]);
            set_nonblocking(read_fd)?;
            // SAFETY: read_fd is a freshly created, owned pipe fd.
            mass_read = Some(unsafe {
                use std::os::unix::io::FromRawFd;
                std::fs::File::from_raw_fd(read_fd)
            });
            // SAFETY: dup2 in the child duplicates the inherited write
            // end onto the agreed fd and clears close-on-exec; write_fd
            // is valid for the duration of the fork/exec window.
            unsafe {
                cmd.pre_exec(move || {
                    if libc::dup2(write_fd, MASS_CHANNEL_CHILD_FD) < 0 {
                        return Err(std::io::Error::last_os_error());
                    }
                    Ok(())
                });
            }
            channel_fd.set(read_fd as i64);
            parent_write_fd = Some(write_fd);
        }
        let spawned = cmd.spawn();
        if let Some(write_fd) = parent_write_fd {
            // SAFETY: write_fd belongs to this process and is no longer
            // needed once the child holds its duplicate (or the spawn
            // failed).
            unsafe { libc::close(write_fd) };
        }
        let mut child = spawned?;
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = child.stdout.take().expect("stdout piped");
        set_nonblocking(stdout.as_raw_fd())?;
        Ok(ChildLink {
            child,
            stdin,
            stdout,
            mass_read,
            exited: false,
        })
    }

    /// Writes one newline-terminated line to the child's stdin (framed
    /// by the shared [`LineCodec`] so pipe and socket transports agree).
    pub(crate) fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        self.stdin.write_all(&LineCodec::encode(line))?;
        self.stdin.flush()
    }

    /// Polls the child's pipes for up to `timeout`; returns
    /// `(stdout_ready, mass_ready)` (readable or hung up).
    pub(crate) fn poll(&self, timeout: Duration) -> (bool, bool) {
        let mut interests = vec![Interest::read(0, self.stdout.as_raw_fd())];
        if let Some(m) = &self.mass_read {
            interests.push(Interest::read(1, m.as_raw_fd()));
        }
        let mut ready = Vec::new();
        let _ = SysPoller::new().wait(&interests, timeout.as_millis() as i32, &mut ready);
        let hit = |t: usize| ready.iter().any(|r| r.token == t && (r.readable || r.hup));
        (hit(0), hit(1))
    }

    /// Drains the child's stdout (non-blocking) up to `cap` bytes per
    /// call; returns the bytes and whether EOF was reached.
    pub(crate) fn read_stdout(&mut self, cap: usize) -> (Vec<u8>, bool) {
        let mut out = Vec::new();
        let mut buf = [0u8; 16384];
        let mut eof = false;
        while out.len() < cap {
            match self.stdout.read(&mut buf) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    eof = true;
                    break;
                }
            }
        }
        (out, eof)
    }

    /// Drains the mass channel (non-blocking) up to `cap` bytes.
    pub(crate) fn read_mass(&mut self, cap: usize) -> Vec<u8> {
        let mut out = Vec::new();
        if let Some(m) = &mut self.mass_read {
            let mut buf = [0u8; 16384];
            while out.len() < cap {
                match m.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => out.extend_from_slice(&buf[..n]),
                    Err(_) => break,
                }
            }
        }
        out
    }

    /// Has the child process exited? (Sticky once observed.)
    pub(crate) fn exited(&mut self) -> bool {
        if !self.exited && matches!(self.child.try_wait(), Ok(Some(_))) {
            self.exited = true;
        }
        self.exited
    }

    /// Kills and reaps the child process.
    pub(crate) fn kill_process(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        self.exited = true;
    }
}

/// Configuration for spawning a frontend.
pub struct FrontendConfig {
    /// The backend program to run.
    pub program: String,
    /// Arguments for the backend (the application's share of argv).
    pub args: Vec<String>,
    /// Widget-set flavour.
    pub flavor: Flavor,
    /// Create the mass-transfer channel.
    pub mass_channel: bool,
    /// Initial command sent to the backend after the fork (the paper's
    /// `InitCom` resource, e.g. a Prolog startup goal).
    pub init_com: Option<String>,
    /// Supervisor policy (timeouts, restarts, flood caps, queueing).
    pub supervisor: SupervisorConfig,
    /// Deterministic fault plan for chaos testing.
    pub faults: Option<FaultPlan>,
}

impl FrontendConfig {
    /// A minimal configuration running `program` with no arguments.
    pub fn new(program: &str) -> Self {
        FrontendConfig {
            program: program.to_string(),
            args: Vec::new(),
            flavor: Flavor::Athena,
            mass_channel: true,
            init_com: None,
            supervisor: SupervisorConfig::default(),
            faults: None,
        }
    }
}

/// A running frontend: protocol engine + supervised child process.
pub struct Frontend {
    /// The protocol engine (owns the Wafe session).
    pub engine: ProtocolEngine,
    supervisor: Supervisor,
    /// Lines the frontend printed to its own stdout (non-`%` passthrough).
    pub printed: Vec<String>,
}

impl Frontend {
    /// Spawns the backend under the supervisor and wires the channels.
    pub fn spawn(config: FrontendConfig) -> std::io::Result<Frontend> {
        let mut engine = ProtocolEngine::new(config.flavor);
        let spec = SpawnSpec {
            program: config.program,
            args: config.args,
            mass_channel: config.mass_channel,
            init_com: config.init_com,
        };
        let tel = engine.session.telemetry.clone();
        let channel_fd = engine.session.channel_fd.clone();
        let supervisor = Supervisor::new(spec, config.supervisor, config.faults, tel, channel_fd)?;
        install_controls(&supervisor.core(), &mut engine.session);
        Ok(Frontend {
            engine,
            supervisor,
            printed: Vec::new(),
        })
    }

    /// Sends one line to the application's stdin. While the backend is
    /// down the line is queued (bounded) and flushed after a restart.
    pub fn send_to_app(&mut self, line: &str) -> std::io::Result<()> {
        self.supervisor.send(line)
    }

    /// One iteration of the multiplexed event loop: runs one supervisor
    /// tick (poll, read, fault plan, protocol, timeouts, restarts),
    /// pumps GUI events and forwards queued messages to the
    /// application. Returns false once the loop should end (backend
    /// exited and drained, `quit` ran, or the circuit breaker opened
    /// without `stayAliveWhenBroken`).
    pub fn step(&mut self, timeout: Duration) -> std::io::Result<bool> {
        let ended = self.supervisor.tick(&mut self.engine, timeout);
        for p in self.engine.take_passthrough() {
            self.printed.push(p);
        }
        // Pump GUI events and forward queued messages to the application.
        self.engine.session.pump();
        for line in self.engine.take_app_lines() {
            let _ = self.supervisor.send(&line);
        }
        if self.engine.session.quit_requested() {
            return Ok(false);
        }
        Ok(!ended)
    }

    /// Runs the loop until the backend exits, `quit` runs, or the
    /// deadline passes. Returns true on clean termination (backend exit
    /// or quit), false on deadline.
    pub fn run_until_exit(&mut self, deadline: Duration) -> std::io::Result<bool> {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if !self.step(Duration::from_millis(10))? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// The backend's supervision state.
    pub fn backend_state(&self) -> BackendState {
        self.supervisor.state()
    }

    /// A copy of the supervisor's event totals.
    pub fn supervisor_stats(&self) -> SupervisorStats {
        self.supervisor.stats()
    }

    /// The shared supervisor handle (config, queue, fault plan).
    pub fn supervisor_core(&self) -> std::rc::Rc<std::cell::RefCell<SupervisorCore>> {
        self.supervisor.core()
    }

    /// Kills the backend *process* without informing the supervisor —
    /// the next `step` observes the death and applies the restart
    /// policy. This is the deterministic external-crash hook the chaos
    /// tests use.
    pub fn kill_backend(&mut self) {
        self.supervisor.kill_child_process();
    }

    /// Checkpoints the frontend into an encoded [`SessionSnapshot`]:
    /// the session's persistent state plus every application-bound line
    /// still queued — the protocol engine's pending lines followed by
    /// the supervisor's bounded outbound queue, preserving delivery
    /// order. Capture does not consume either queue; the live frontend
    /// keeps running unchanged.
    pub fn park_snapshot(&self) -> Vec<u8> {
        let mut outbound = self.engine.peek_app_lines();
        outbound.extend(self.supervisor.core().borrow().queued_lines());
        wafe_core::SessionSnapshot::capture(&self.engine.session, outbound).encode()
    }

    /// Restores a parked snapshot into this frontend's session and
    /// replays the captured outbound lines through the supervisor —
    /// delivered immediately while the backend runs, queued (bounded)
    /// while it is down and flushed in order after the next restart:
    /// the exact replay machinery crash recovery already uses.
    pub fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<wafe_core::RestoreReport, String> {
        let snap = wafe_core::SessionSnapshot::decode(bytes)?;
        let report = snap.restore_into(&mut self.engine.session);
        for line in &snap.outbound {
            self.supervisor.send(line).map_err(|e| e.to_string())?;
        }
        Ok(report)
    }

    /// Tears the backend down for good (cleanup in tests).
    pub fn kill(&mut self) {
        self.supervisor.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argv0_link_scheme() {
        assert_eq!(backend_from_argv0("xwafeApp"), Some("wafeApp".into()));
        assert_eq!(
            backend_from_argv0("/usr/bin/X11/xwafemail"),
            Some("wafemail".into())
        );
        assert_eq!(backend_from_argv0("wafe"), None);
        assert_eq!(backend_from_argv0("mofe"), None);
        assert_eq!(backend_from_argv0("x"), None);
        // A non-x name yields no backend either.
        assert_eq!(backend_from_argv0("emacs"), None);
    }

    /// Spawns a shell backend that builds a button and quits when told —
    /// "commands submitted to Wafe can be issued from arbitrary
    /// programming languages provided that they are able to write to
    /// stdout unbuffered and to read from stdin" — here: sh.
    #[test]
    fn shell_backend_round_trip() {
        let script = r#"
            echo '%command go topLevel label Go callback {echo clicked; quit}'
            echo '%realize'
            read line
            echo "got $line" >&2
        "#;
        let mut fe = Frontend::spawn(FrontendConfig {
            args: vec!["-c".into(), script.into()],
            mass_channel: false,
            ..FrontendConfig::new("sh")
        })
        .expect("spawn sh");
        // Let the backend build the tree.
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            fe.step(Duration::from_millis(20)).unwrap();
            if fe.engine.session.app.borrow().lookup("go").is_some() {
                let realized = {
                    let app = fe.engine.session.app.borrow();
                    let go = app.lookup("go").unwrap();
                    app.is_realized(go)
                };
                if realized {
                    break;
                }
            }
        }
        assert!(
            fe.engine.session.app.borrow().lookup("go").is_some(),
            "backend lines not processed"
        );
        // Click the button: callback echoes to the app and quits.
        {
            let mut app = fe.engine.session.app.borrow_mut();
            let go = app.lookup("go").unwrap();
            let win = app.widget(go).window.unwrap();
            let abs = app.displays[0].abs_rect(win);
            app.displays[0].inject_click(abs.x + 2, abs.y + 2, 1);
        }
        let clean = fe.run_until_exit(Duration::from_secs(5)).unwrap();
        assert!(clean, "frontend loop must terminate after quit");
        assert!(fe.engine.session.quit_requested());
        fe.kill();
    }

    #[test]
    fn init_com_sent_first() {
        // The backend echoes its stdin back prefixed; InitCom must be the
        // first thing it sees.
        let script = r#"read line; echo "%set initline {$line}""#;
        let mut fe = Frontend::spawn(FrontendConfig {
            args: vec!["-c".into(), script.into()],
            mass_channel: false,
            init_com: Some("[myapp], widget_tree, read_loop.".into()),
            ..FrontendConfig::new("sh")
        })
        .expect("spawn sh");
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            fe.step(Duration::from_millis(20)).unwrap();
            if fe.engine.session.interp.var_exists("initline") {
                break;
            }
        }
        assert_eq!(
            fe.engine.session.interp.get_var("initline").unwrap(),
            "[myapp], widget_tree, read_loop."
        );
        fe.kill();
    }

    #[test]
    fn mass_channel_via_fd5() {
        // The paper's mass-transfer flow with a real child writing to the
        // inherited fd.
        let script = r#"
            echo '%asciiText text topLevel editType edit'
            echo '%realize'
            echo '%setCommunicationVariable C 1000 {sV text string $C}'
            sleep 0.2
            head -c 1000 /dev/zero | tr '\0' 'z' >&5
            sleep 0.5
        "#;
        let mut fe = Frontend::spawn(FrontendConfig {
            args: vec!["-c".into(), script.into()],
            mass_channel: true,
            ..FrontendConfig::new("sh")
        })
        .expect("spawn sh");
        let deadline = Instant::now() + Duration::from_secs(6);
        let mut got = String::new();
        while Instant::now() < deadline {
            fe.step(Duration::from_millis(20)).unwrap();
            if fe.engine.session.app.borrow().lookup("text").is_some() {
                got = fe
                    .engine
                    .session
                    .eval("gV text string")
                    .unwrap_or_default()
                    .to_string();
                if got.len() == 1000 {
                    break;
                }
            }
        }
        assert_eq!(got.len(), 1000, "mass transfer must deliver all bytes");
        assert!(got.chars().all(|c| c == 'z'));
        fe.kill();
    }

    #[test]
    fn passthrough_lines_printed() {
        let script = r#"echo 'plain output line'; echo '%set x 1'"#;
        let mut fe = Frontend::spawn(FrontendConfig {
            args: vec!["-c".into(), script.into()],
            mass_channel: false,
            ..FrontendConfig::new("sh")
        })
        .expect("spawn sh");
        fe.run_until_exit(Duration::from_secs(5)).unwrap();
        assert_eq!(fe.printed, vec!["plain output line"]);
        assert_eq!(fe.engine.session.interp.get_var("x").unwrap(), "1");
        fe.kill();
    }
}
