//! The real-process frontend: child spawning and pipe multiplexing.

use std::io::{Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::process::CommandExt;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use wafe_core::Flavor;

use crate::protocol::ProtocolEngine;
use crate::sys as libc;

/// The fd number at which the child inherits the write end of the
/// mass-transfer channel; `getChannel` reports the fd Wafe listens on.
pub const MASS_CHANNEL_CHILD_FD: i32 = 5;

/// Derives the backend program name from the frontend's `argv[0]`,
/// reproducing the paper's link-name scheme: "If a link like
/// `ln -s wafe xwafeApp` is established and `xwafeApp` is executed, the
/// program `wafeApp` is spawned as a subprocess".
pub fn backend_from_argv0(argv0: &str) -> Option<String> {
    let base = argv0.rsplit('/').next().unwrap_or(argv0);
    if matches!(base, "wafe" | "mofe") {
        return None; // Plain wafe: no implicit backend.
    }
    base.strip_prefix('x')
        .filter(|rest| !rest.is_empty())
        .map(|rest| rest.to_string())
}

/// Configuration for spawning a frontend.
pub struct FrontendConfig {
    /// The backend program to run.
    pub program: String,
    /// Arguments for the backend (the application's share of argv).
    pub args: Vec<String>,
    /// Widget-set flavour.
    pub flavor: Flavor,
    /// Create the mass-transfer channel.
    pub mass_channel: bool,
    /// Initial command sent to the backend after the fork (the paper's
    /// `InitCom` resource, e.g. a Prolog startup goal).
    pub init_com: Option<String>,
}

impl FrontendConfig {
    /// A minimal configuration running `program` with no arguments.
    pub fn new(program: &str) -> Self {
        FrontendConfig {
            program: program.to_string(),
            args: Vec::new(),
            flavor: Flavor::Athena,
            mass_channel: true,
            init_com: None,
        }
    }
}

/// A running frontend: protocol engine + child process + pipes.
pub struct Frontend {
    /// The protocol engine (owns the Wafe session).
    pub engine: ProtocolEngine,
    child: Child,
    child_stdin: ChildStdin,
    child_stdout: ChildStdout,
    mass_read: Option<std::fs::File>,
    stdout_buf: Vec<u8>,
    /// Lines the frontend printed to its own stdout (non-`%` passthrough).
    pub printed: Vec<String>,
    /// When the last line went out to the backend; the next complete line
    /// back closes the `ipc.roundtrip` latency sample.
    last_write: Option<Instant>,
}

impl Frontend {
    /// Spawns the backend and wires the channels (Figure 4).
    pub fn spawn(config: FrontendConfig) -> std::io::Result<Frontend> {
        let engine = ProtocolEngine::new(config.flavor);
        let mut cmd = Command::new(&config.program);
        cmd.args(&config.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let mut mass_read = None;
        if config.mass_channel {
            // A pipe whose write end the child inherits at a fixed fd.
            let mut fds = [0i32; 2];
            // SAFETY: fds is a valid 2-element array for pipe(2).
            let rc = unsafe { libc::pipe(fds.as_mut_ptr()) };
            if rc != 0 {
                return Err(std::io::Error::last_os_error());
            }
            let (read_fd, write_fd) = (fds[0], fds[1]);
            set_nonblocking(read_fd)?;
            // SAFETY: read_fd is a freshly created, owned pipe fd.
            mass_read = Some(unsafe {
                use std::os::unix::io::FromRawFd;
                std::fs::File::from_raw_fd(read_fd)
            });
            // SAFETY: dup2 in the child duplicates the inherited write
            // end onto the agreed fd and clears close-on-exec; write_fd
            // is valid for the duration of the fork/exec window.
            unsafe {
                cmd.pre_exec(move || {
                    if libc::dup2(write_fd, MASS_CHANNEL_CHILD_FD) < 0 {
                        return Err(std::io::Error::last_os_error());
                    }
                    Ok(())
                });
            }
            engine.session.channel_fd.set(read_fd as i64);
            // Parent closes its copy of the write end after spawn (below).
            let mut child = cmd.spawn()?;
            // SAFETY: write_fd belongs to this process and is no longer
            // needed once the child holds its duplicate.
            unsafe { libc::close(write_fd) };
            let child_stdin = child.stdin.take().expect("stdin piped");
            let child_stdout = child.stdout.take().expect("stdout piped");
            set_nonblocking(child_stdout.as_raw_fd())?;
            let mut fe = Frontend {
                engine,
                child,
                child_stdin,
                child_stdout,
                mass_read,
                stdout_buf: Vec::new(),
                printed: Vec::new(),
                last_write: None,
            };
            if let Some(ic) = &config.init_com {
                fe.send_to_app(ic)?;
            }
            return Ok(fe);
        }
        let mut child = cmd.spawn()?;
        let child_stdin = child.stdin.take().expect("stdin piped");
        let child_stdout = child.stdout.take().expect("stdout piped");
        set_nonblocking(child_stdout.as_raw_fd())?;
        let mut fe = Frontend {
            engine,
            child,
            child_stdin,
            child_stdout,
            mass_read,
            stdout_buf: Vec::new(),
            printed: Vec::new(),
            last_write: None,
        };
        if let Some(ic) = &config.init_com {
            fe.send_to_app(ic)?;
        }
        Ok(fe)
    }

    /// Sends one line to the application's stdin.
    pub fn send_to_app(&mut self, line: &str) -> std::io::Result<()> {
        let tel = &self.engine.session.telemetry;
        tel.count("ipc.lines.sent");
        tel.add("ipc.bytes.sent", line.len() as u64);
        self.last_write = tel.timer();
        self.child_stdin.write_all(line.as_bytes())?;
        if !line.ends_with('\n') {
            self.child_stdin.write_all(b"\n")?;
        }
        self.child_stdin.flush()
    }

    /// One iteration of the multiplexed event loop: polls the backend's
    /// pipes (with the given timeout), feeds complete lines and mass data
    /// into the protocol engine, pumps GUI events and forwards queued
    /// messages to the application. Returns false once the backend has
    /// exited and its pipes are drained.
    pub fn step(&mut self, timeout: Duration) -> std::io::Result<bool> {
        // Poll the child's stdout (and the mass channel).
        let mut pollfds = vec![libc::pollfd {
            fd: self.child_stdout.as_raw_fd(),
            events: libc::POLLIN,
            revents: 0,
        }];
        if let Some(m) = &self.mass_read {
            pollfds.push(libc::pollfd {
                fd: m.as_raw_fd(),
                events: libc::POLLIN,
                revents: 0,
            });
        }
        // SAFETY: pollfds is a valid array of initialised pollfd structs.
        unsafe {
            libc::poll(
                pollfds.as_mut_ptr(),
                pollfds.len() as libc::nfds_t,
                timeout.as_millis() as i32,
            )
        };
        let mut saw_eof = false;
        if pollfds[0].revents & (libc::POLLIN | libc::POLLHUP) != 0 {
            let mut buf = [0u8; 16384];
            loop {
                match self.child_stdout.read(&mut buf) {
                    Ok(0) => {
                        saw_eof = true;
                        break;
                    }
                    Ok(n) => self.stdout_buf.extend_from_slice(&buf[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) => return Err(e),
                }
            }
        }
        // Process complete lines.
        while let Some(nl) = self.stdout_buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.stdout_buf.drain(..=nl).collect();
            let text = String::from_utf8_lossy(&line).into_owned();
            if self.last_write.is_some() {
                self.engine
                    .session
                    .telemetry
                    .observe_since("ipc.roundtrip", self.last_write.take());
            }
            let _ = self.engine.handle_line(&text);
            for p in self.engine.take_passthrough() {
                self.printed.push(p);
            }
        }
        // Mass channel.
        if let Some(m) = &mut self.mass_read {
            let mut buf = [0u8; 16384];
            loop {
                match m.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => {
                        let data = buf[..n].to_vec();
                        self.engine.handle_mass_data(&data);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        // Pump GUI events and forward queued messages to the application.
        self.engine.session.pump();
        for line in self.engine.take_app_lines() {
            // Ignore EPIPE: the backend may already have exited.
            let _ = self.send_to_app(&line);
        }
        if self.engine.session.quit_requested() {
            return Ok(false);
        }
        if saw_eof {
            // Child gone and stdout drained?
            if self.stdout_buf.is_empty() {
                return Ok(false);
            }
        }
        if let Ok(Some(_)) = self.child.try_wait() {
            if self.stdout_buf.is_empty() && saw_eof {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Runs the loop until the backend exits, `quit` runs, or the
    /// deadline passes. Returns true on clean termination (backend exit
    /// or quit), false on deadline.
    pub fn run_until_exit(&mut self, deadline: Duration) -> std::io::Result<bool> {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if !self.step(Duration::from_millis(10))? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Kills the backend (cleanup in tests).
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn set_nonblocking(fd: RawFd) -> std::io::Result<()> {
    // SAFETY: fcntl F_GETFL/F_SETFL on an owned, valid fd.
    unsafe {
        let flags = libc::fcntl(fd, libc::F_GETFL);
        if flags < 0 {
            return Err(std::io::Error::last_os_error());
        }
        if libc::fcntl(fd, libc::F_SETFL, flags | libc::O_NONBLOCK) < 0 {
            return Err(std::io::Error::last_os_error());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argv0_link_scheme() {
        assert_eq!(backend_from_argv0("xwafeApp"), Some("wafeApp".into()));
        assert_eq!(
            backend_from_argv0("/usr/bin/X11/xwafemail"),
            Some("wafemail".into())
        );
        assert_eq!(backend_from_argv0("wafe"), None);
        assert_eq!(backend_from_argv0("mofe"), None);
        assert_eq!(backend_from_argv0("x"), None);
        // A non-x name yields no backend either.
        assert_eq!(backend_from_argv0("emacs"), None);
    }

    /// Spawns a shell backend that builds a button and quits when told —
    /// "commands submitted to Wafe can be issued from arbitrary
    /// programming languages provided that they are able to write to
    /// stdout unbuffered and to read from stdin" — here: sh.
    #[test]
    fn shell_backend_round_trip() {
        let script = r#"
            echo '%command go topLevel label Go callback {echo clicked; quit}'
            echo '%realize'
            read line
            echo "got $line" >&2
        "#;
        let mut fe = Frontend::spawn(FrontendConfig {
            program: "sh".into(),
            args: vec!["-c".into(), script.into()],
            flavor: Flavor::Athena,
            mass_channel: false,
            init_com: None,
        })
        .expect("spawn sh");
        // Let the backend build the tree.
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            fe.step(Duration::from_millis(20)).unwrap();
            if fe.engine.session.app.borrow().lookup("go").is_some() {
                let realized = {
                    let app = fe.engine.session.app.borrow();
                    let go = app.lookup("go").unwrap();
                    app.is_realized(go)
                };
                if realized {
                    break;
                }
            }
        }
        assert!(
            fe.engine.session.app.borrow().lookup("go").is_some(),
            "backend lines not processed"
        );
        // Click the button: callback echoes to the app and quits.
        {
            let mut app = fe.engine.session.app.borrow_mut();
            let go = app.lookup("go").unwrap();
            let win = app.widget(go).window.unwrap();
            let abs = app.displays[0].abs_rect(win);
            app.displays[0].inject_click(abs.x + 2, abs.y + 2, 1);
        }
        let clean = fe.run_until_exit(Duration::from_secs(5)).unwrap();
        assert!(clean, "frontend loop must terminate after quit");
        assert!(fe.engine.session.quit_requested());
        fe.kill();
    }

    #[test]
    fn init_com_sent_first() {
        // The backend echoes its stdin back prefixed; InitCom must be the
        // first thing it sees.
        let script = r#"read line; echo "%set initline {$line}""#;
        let mut fe = Frontend::spawn(FrontendConfig {
            program: "sh".into(),
            args: vec!["-c".into(), script.into()],
            flavor: Flavor::Athena,
            mass_channel: false,
            init_com: Some("[myapp], widget_tree, read_loop.".into()),
        })
        .expect("spawn sh");
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            fe.step(Duration::from_millis(20)).unwrap();
            if fe.engine.session.interp.var_exists("initline") {
                break;
            }
        }
        assert_eq!(
            fe.engine.session.interp.get_var("initline").unwrap(),
            "[myapp], widget_tree, read_loop."
        );
        fe.kill();
    }

    #[test]
    fn mass_channel_via_fd5() {
        // The paper's mass-transfer flow with a real child writing to the
        // inherited fd.
        let script = r#"
            echo '%asciiText text topLevel editType edit'
            echo '%realize'
            echo '%setCommunicationVariable C 1000 {sV text string $C}'
            sleep 0.2
            head -c 1000 /dev/zero | tr '\0' 'z' >&5
            sleep 0.5
        "#;
        let mut fe = Frontend::spawn(FrontendConfig {
            program: "sh".into(),
            args: vec!["-c".into(), script.into()],
            flavor: Flavor::Athena,
            mass_channel: true,
            init_com: None,
        })
        .expect("spawn sh");
        let deadline = Instant::now() + Duration::from_secs(6);
        let mut got = String::new();
        while Instant::now() < deadline {
            fe.step(Duration::from_millis(20)).unwrap();
            if fe.engine.session.app.borrow().lookup("text").is_some() {
                got = fe.engine.session.eval("gV text string").unwrap_or_default();
                if got.len() == 1000 {
                    break;
                }
            }
        }
        assert_eq!(got.len(), 1000, "mass transfer must deliver all bytes");
        assert!(got.chars().all(|c| c == 'z'));
        fe.kill();
    }

    #[test]
    fn passthrough_lines_printed() {
        let script = r#"echo 'plain output line'; echo '%set x 1'"#;
        let mut fe = Frontend::spawn(FrontendConfig {
            program: "sh".into(),
            args: vec!["-c".into(), script.into()],
            flavor: Flavor::Athena,
            mass_channel: false,
            init_com: None,
        })
        .expect("spawn sh");
        fe.run_until_exit(Duration::from_secs(5)).unwrap();
        assert_eq!(fe.printed, vec!["plain output line"]);
        assert_eq!(fe.engine.session.interp.get_var("x").unwrap(), "1");
        fe.kill();
    }
}
