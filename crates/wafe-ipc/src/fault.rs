//! Deterministic fault injection for the frontend pipe.
//!
//! A [`FaultPlan`] is a set of rules that fire at named points in the
//! frontend's transport ([`FAULT_POINTS`]): the supervisor consults the
//! plan every time execution passes such a point and applies whatever
//! actions the matching rules yield — delay, truncate, garble, flood,
//! drop, or kill. All randomness (garbling) comes from a seeded
//! xorshift64* generator, so a plan plus a backend script reproduces the
//! same failure byte-for-byte on every run; the chaos suite
//! (`tests/supervisor_chaos.rs`) is built on exactly this property.
//!
//! Plans are written in a small spec string — scriptable at runtime via
//! the `faultpoint` Tcl command and at startup via the `WAFE_FAULTS`
//! environment variable:
//!
//! ```text
//! spec    := clause (';' clause)*
//! clause  := 'seed=' integer
//!          | point ':' action [ '@' trigger ]
//! point   := 'spawn' | 'read' | 'line' | 'write' | 'mass' | 'display'
//! action  := 'kill' | 'wedge' | 'drop' | 'garble'
//!          | 'truncate=' bytes | 'delay=' ms | 'flood=' copies
//! trigger := N        fire on the Nth consultation only (1-based)
//!          | N '+'    fire from the Nth consultation onward
//!          | '%' N    fire on every Nth consultation
//! ```
//!
//! Example: `line:kill@2;read:garble@3+;seed=7` kills the backend while
//! the second complete line is being handled and garbles every read from
//! the third onward, with generator seed 7.

use std::fmt;

/// The environment variable holding a fault-plan spec string.
pub const FAULTS_ENV_VAR: &str = "WAFE_FAULTS";

/// The named points the supervisor consults, in protocol order:
/// child spawn, a chunk read from the pipe, a complete protocol line,
/// a line written to the backend, a mass-channel chunk, an outbound
/// display frame (consulted by the waferd scheduler, not the pipe).
pub const FAULT_POINTS: &[&str] = &["spawn", "read", "line", "write", "mass", "display"];

/// What a fired rule does at its point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Kill the backend process on the spot (at `spawn`: fail the spawn).
    Kill,
    /// Discard the data passing the point, simulating a stalled peer.
    Wedge,
    /// Discard the data passing the point (alias of `Wedge`; reads
    /// naturally at the `line` and `write` points).
    Drop,
    /// Corrupt the data with seeded pseudo-random bytes. Line garbling
    /// preserves the first character so `%`-classification stays put;
    /// byte garbling preserves newlines so framing stays observable.
    Garble,
    /// Keep only the first N bytes of the data.
    Truncate(usize),
    /// Hold the data back for the given number of virtual milliseconds.
    Delay(u64),
    /// Replicate the data into N total copies (a flooding backend).
    Flood(usize),
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Kill => write!(f, "kill"),
            FaultAction::Wedge => write!(f, "wedge"),
            FaultAction::Drop => write!(f, "drop"),
            FaultAction::Garble => write!(f, "garble"),
            FaultAction::Truncate(n) => write!(f, "truncate={n}"),
            FaultAction::Delay(ms) => write!(f, "delay={ms}"),
            FaultAction::Flood(n) => write!(f, "flood={n}"),
        }
    }
}

/// When a rule fires, counted in consultations of its point (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Every consultation.
    Always,
    /// The Nth consultation only.
    On(u64),
    /// The Nth consultation and every one after it.
    From(u64),
    /// Every Nth consultation.
    Every(u64),
}

impl Trigger {
    fn matches(self, hit: u64) -> bool {
        match self {
            Trigger::Always => true,
            Trigger::On(n) => hit == n,
            Trigger::From(n) => hit >= n,
            Trigger::Every(k) => hit.is_multiple_of(k),
        }
    }
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trigger::Always => Ok(()),
            Trigger::On(n) => write!(f, "@{n}"),
            Trigger::From(n) => write!(f, "@{n}+"),
            Trigger::Every(k) => write!(f, "@%{k}"),
        }
    }
}

/// One parsed clause of a fault spec.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// The point this rule watches (one of [`FAULT_POINTS`]).
    pub point: String,
    /// The action taken when the trigger matches.
    pub action: FaultAction,
    /// When the rule fires.
    pub trigger: Trigger,
    hits: u64,
}

/// A parsed, seeded fault plan.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    seed: u64,
    rng: u64,
}

impl FaultPlan {
    /// Parses a spec string (see the module grammar). Errors name the
    /// offending clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        let mut seed: u64 = 0xBAD_FACE; // default: fixed, so unseeded plans still replay
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            if let Some(v) = clause.strip_prefix("seed=") {
                seed = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed \"{v}\" in fault spec"))?;
                continue;
            }
            let (point, rest) = clause
                .split_once(':')
                .ok_or_else(|| format!("fault clause \"{clause}\" has no ':'"))?;
            let point = point.trim();
            if !FAULT_POINTS.contains(&point) {
                return Err(format!(
                    "unknown fault point \"{point}\": must be one of {}",
                    FAULT_POINTS.join(", ")
                ));
            }
            let (action_s, trigger_s) = match rest.split_once('@') {
                Some((a, t)) => (a.trim(), Some(t.trim())),
                None => (rest.trim(), None),
            };
            let parse_n = |s: &str, what: &str| -> Result<u64, String> {
                s.parse()
                    .map_err(|_| format!("bad {what} \"{s}\" in fault clause \"{clause}\""))
            };
            let action = if let Some(n) = action_s.strip_prefix("truncate=") {
                FaultAction::Truncate(parse_n(n, "truncate length")? as usize)
            } else if let Some(ms) = action_s.strip_prefix("delay=") {
                FaultAction::Delay(parse_n(ms, "delay")?)
            } else if let Some(n) = action_s.strip_prefix("flood=") {
                let copies = parse_n(n, "flood count")? as usize;
                if copies == 0 {
                    return Err(format!("flood count must be positive in \"{clause}\""));
                }
                FaultAction::Flood(copies)
            } else {
                match action_s {
                    "kill" => FaultAction::Kill,
                    "wedge" => FaultAction::Wedge,
                    "drop" => FaultAction::Drop,
                    "garble" => FaultAction::Garble,
                    other => {
                        return Err(format!(
                            "unknown fault action \"{other}\": must be kill, wedge, drop, \
                             garble, truncate=N, delay=MS, or flood=N"
                        ))
                    }
                }
            };
            let trigger = match trigger_s {
                None | Some("") => Trigger::Always,
                Some(t) => {
                    if let Some(k) = t.strip_prefix('%') {
                        let k = parse_n(k, "trigger period")?;
                        if k == 0 {
                            return Err(format!("trigger period must be positive in \"{clause}\""));
                        }
                        Trigger::Every(k)
                    } else if let Some(n) = t.strip_suffix('+') {
                        Trigger::From(parse_n(n, "trigger")?)
                    } else {
                        Trigger::On(parse_n(t, "trigger")?)
                    }
                }
            };
            rules.push(FaultRule {
                point: point.to_string(),
                action,
                trigger,
                hits: 0,
            });
        }
        if rules.is_empty() {
            return Err("fault spec contains no clauses".into());
        }
        Ok(FaultPlan {
            rules,
            seed,
            rng: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        })
    }

    /// Parses the `WAFE_FAULTS` environment variable, if set and
    /// non-empty. A malformed spec is an error, not a silent no-op.
    pub fn from_env() -> Option<Result<FaultPlan, String>> {
        match std::env::var(FAULTS_ENV_VAR) {
            Ok(s) if !s.trim().is_empty() => Some(FaultPlan::parse(&s)),
            _ => None,
        }
    }

    /// The seed the plan's generator started from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Consults the plan at a point: every rule watching the point
    /// counts one hit, and the actions of the rules whose trigger
    /// matches are returned in clause order.
    pub fn fire(&mut self, point: &str) -> Vec<FaultAction> {
        let mut out = Vec::new();
        for rule in &mut self.rules {
            if rule.point == point {
                rule.hits += 1;
                if rule.trigger.matches(rule.hits) {
                    out.push(rule.action.clone());
                }
            }
        }
        out
    }

    /// One line per rule: `point:action[@trigger] hits=N`.
    pub fn describe(&self) -> Vec<String> {
        self.rules
            .iter()
            .map(|r| format!("{}:{}{} hits={}", r.point, r.action, r.trigger, r.hits))
            .collect()
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64* — the same generator wafe-prop and Tcl's rand() use.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Corrupts a byte buffer in place: every byte except newlines is
    /// replaced with a seeded pseudo-random printable character, so
    /// framing survives but content does not.
    pub fn garble_bytes(&mut self, data: &mut [u8]) {
        for b in data.iter_mut() {
            if *b != b'\n' {
                *b = b'!' + (self.next_u64() % 94) as u8; // 0x21..=0x7E
            }
        }
    }

    /// Corrupts a line: the first character is preserved (so `%`
    /// classification is stable), the rest becomes seeded noise.
    pub fn garble_line(&mut self, line: &str) -> String {
        let mut chars = line.chars();
        let mut out = String::with_capacity(line.len());
        if let Some(first) = chars.next() {
            out.push(first);
        }
        for _ in chars {
            out.push(char::from(b'a' + (self.next_u64() % 26) as u8));
        }
        out
    }
}

/// Truncates a string to at most `n` bytes on a char boundary.
pub fn truncate_line(line: &str, n: usize) -> String {
    if line.len() <= n {
        return line.to_string();
    }
    let mut end = n;
    while end > 0 && !line.is_char_boundary(end) {
        end -= 1;
    }
    line[..end].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let p =
            FaultPlan::parse("line:kill@2; read:garble@3+; mass:delay=40; write:drop@%5; seed=9")
                .unwrap();
        assert_eq!(p.seed(), 9);
        let d = p.describe();
        assert_eq!(d.len(), 4);
        assert_eq!(d[0], "line:kill@2 hits=0");
        assert_eq!(d[1], "read:garble@3+ hits=0");
        assert_eq!(d[2], "mass:delay=40 hits=0");
        assert_eq!(d[3], "write:drop@%5 hits=0");
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "nocolon",
            "bogus:kill",
            "line:explode",
            "line:kill@x",
            "line:flood=0",
            "line:kill@%0",
            "seed=abc",
            "line:truncate=big",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn trigger_semantics() {
        let mut p = FaultPlan::parse("line:kill@2").unwrap();
        assert!(p.fire("line").is_empty());
        assert_eq!(p.fire("line"), vec![FaultAction::Kill]);
        assert!(p.fire("line").is_empty(), "On(2) fires exactly once");

        let mut p = FaultPlan::parse("read:drop@2+").unwrap();
        assert!(p.fire("read").is_empty());
        assert_eq!(p.fire("read").len(), 1);
        assert_eq!(p.fire("read").len(), 1, "From(2) keeps firing");

        let mut p = FaultPlan::parse("read:drop@%3").unwrap();
        let fired: Vec<bool> = (0..6).map(|_| !p.fire("read").is_empty()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, true]);

        // Other points do not advance the counter.
        let mut p = FaultPlan::parse("line:kill@1").unwrap();
        assert!(p.fire("read").is_empty());
        assert_eq!(p.fire("line"), vec![FaultAction::Kill]);
    }

    #[test]
    fn garble_is_deterministic_per_seed() {
        let g = |seed: u64| {
            let mut p = FaultPlan::parse(&format!("read:garble;seed={seed}")).unwrap();
            let mut data = b"hello world\nsecond".to_vec();
            p.garble_bytes(&mut data);
            data
        };
        assert_eq!(g(1), g(1), "same seed, same bytes");
        assert_ne!(g(1), g(2), "different seed, different bytes");
        let garbled = g(1);
        assert_eq!(garbled[11], b'\n', "newlines survive garbling");
        assert!(garbled
            .iter()
            .all(|&b| b == b'\n' || (0x21..=0x7E).contains(&b)));
    }

    #[test]
    fn garble_line_preserves_prefix() {
        let mut p = FaultPlan::parse("line:garble;seed=4").unwrap();
        let out = p.garble_line("%set x 1");
        assert!(out.starts_with('%'));
        assert_eq!(out.chars().count(), "%set x 1".chars().count());
    }

    #[test]
    fn truncate_respects_char_boundaries() {
        assert_eq!(truncate_line("abcdef", 3), "abc");
        assert_eq!(truncate_line("ab", 10), "ab");
        // U+00E9 is two bytes; cutting inside it backs off.
        assert_eq!(truncate_line("é", 1), "");
    }
}
