//! The transport-independent frontend protocol.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use wafe_core::{Flavor, WafeSession};

/// The default command-prefix character.
pub const DEFAULT_PREFIX: char = '%';

/// The default maximum command-line length: "pretty long depending on a
/// preprocessor variable specified at compilation time; the default
/// length is 64KB".
pub const DEFAULT_MAX_LINE: usize = 64 * 1024;

/// Pure classification of one assembled line (trailing newline already
/// stripped or not — both accepted): is it a command under `prefix`?
/// Factored out so the framing property tests can check that the
/// classification is stable however the byte stream was chunked.
pub fn is_command_line(line: &str, prefix: char) -> bool {
    line.strip_suffix('\n').unwrap_or(line).starts_with(prefix)
}

/// Incremental byte-stream → line framing with a bounded buffer.
///
/// Bytes are pushed in whatever chunks the pipe delivers; complete
/// `\n`-terminated lines come out (without the terminator, lossy
/// UTF-8). A line that exceeds `max` bytes before its newline arrives
/// is discarded — the overflow is counted and the assembler skips to
/// the next newline. The observable output (lines and overflow count)
/// is invariant under re-chunking of the same byte stream.
pub struct LineAssembler {
    buf: Vec<u8>,
    max: usize,
    skipping: bool,
    overflows: u64,
}

impl LineAssembler {
    /// An assembler discarding lines longer than `max` bytes.
    pub fn new(max: usize) -> Self {
        LineAssembler {
            buf: Vec::new(),
            max,
            skipping: false,
            overflows: 0,
        }
    }

    /// An assembler with no length cap.
    pub fn unbounded() -> Self {
        LineAssembler::new(usize::MAX)
    }

    /// Feeds a chunk; returns the complete lines it finished.
    pub fn push(&mut self, bytes: &[u8]) -> Vec<String> {
        let mut lines = Vec::new();
        let mut rest = bytes;
        while !rest.is_empty() {
            let nl = rest.iter().position(|&b| b == b'\n');
            if self.skipping {
                match nl {
                    Some(i) => {
                        self.skipping = false;
                        rest = &rest[i + 1..];
                    }
                    None => return lines,
                }
                continue;
            }
            match nl {
                Some(i) => {
                    if self.buf.len() + i > self.max {
                        // The line completed but is over the cap.
                        self.buf.clear();
                        self.overflows += 1;
                    } else {
                        self.buf.extend_from_slice(&rest[..i]);
                        lines.push(String::from_utf8_lossy(&self.buf).into_owned());
                        self.buf.clear();
                    }
                    rest = &rest[i + 1..];
                }
                None => {
                    self.buf.extend_from_slice(rest);
                    if self.buf.len() > self.max {
                        self.buf.clear();
                        self.skipping = true;
                        self.overflows += 1;
                    }
                    rest = &[];
                }
            }
        }
        lines
    }

    /// Bytes buffered without a terminating newline yet.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Discards any partial line (used when the producing child dies).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.skipping = false;
    }

    /// Takes (and resets) the count of discarded over-length lines.
    pub fn take_overflows(&mut self) -> u64 {
        std::mem::take(&mut self.overflows)
    }
}

/// The protocol engine: a Wafe session plus the line protocol around it.
pub struct ProtocolEngine {
    /// The embedded Wafe session.
    pub session: WafeSession,
    prefix: char,
    max_line: usize,
    to_app: Rc<RefCell<VecDeque<String>>>,
    passthrough: Vec<String>,
    mass_buf: Vec<u8>,
    lines_interpreted: u64,
    lines_passed: u64,
    errors: Vec<String>,
}

impl ProtocolEngine {
    /// Creates an engine around a fresh session of the given flavour.
    /// Interpreter output (`echo`) is routed into the to-application
    /// queue — "the frontend is programmed by the application program to
    /// send back string messages whenever certain events … occur".
    pub fn new(flavor: Flavor) -> Self {
        let mut session = WafeSession::new(flavor);
        let to_app: Rc<RefCell<VecDeque<String>>> = Rc::new(RefCell::new(VecDeque::new()));
        let q = to_app.clone();
        let partial = Rc::new(RefCell::new(String::new()));
        session.set_output_callback(move |s| {
            // Accumulate until newline; each complete line is one message
            // to the application.
            let mut part = partial.borrow_mut();
            part.push_str(s);
            while let Some(nl) = part.find('\n') {
                let line: String = part.drain(..=nl).collect();
                q.borrow_mut()
                    .push_back(line.trim_end_matches('\n').to_string());
            }
        });
        ProtocolEngine {
            session,
            prefix: DEFAULT_PREFIX,
            max_line: DEFAULT_MAX_LINE,
            to_app,
            passthrough: Vec::new(),
            mass_buf: Vec::new(),
            lines_interpreted: 0,
            lines_passed: 0,
            errors: Vec::new(),
        }
    }

    /// Overrides the maximum line length (the compile-time variable of
    /// the original).
    pub fn set_max_line(&mut self, max: usize) {
        self.max_line = max;
    }

    /// Overrides the prefix character.
    pub fn set_prefix(&mut self, prefix: char) {
        self.prefix = prefix;
    }

    /// The current command-prefix character.
    pub fn prefix(&self) -> char {
        self.prefix
    }

    /// Handles one line from the application.
    ///
    /// A line starting with the prefix character is interpreted as a Wafe
    /// command; any other line is passed through to the frontend's
    /// stdout. Returns the command result for prefixed lines.
    pub fn handle_line(&mut self, line: &str) -> Result<Option<String>, String> {
        let tel = self.session.telemetry.clone();
        tel.count("ipc.lines.received");
        tel.add("ipc.bytes.received", line.len() as u64);
        if line.len() > self.max_line {
            let msg = format!(
                "command line too long ({} bytes, limit {})",
                line.len(),
                self.max_line
            );
            tel.count("ipc.errors");
            self.errors.push(msg.clone());
            return Err(msg);
        }
        let trimmed = line.strip_suffix('\n').unwrap_or(line);
        if let Some(cmd) = trimmed.strip_prefix(self.prefix) {
            self.lines_interpreted += 1;
            tel.count("ipc.lines.interpreted");
            // The per-command span: a trace root in frontend mode, a
            // child of the scheduler's serve.command span in server
            // mode (the scheduler opens that root around this call).
            let span = tel.span_begin("ipc.command", || trimmed.to_string());
            let r = match self.session.eval(cmd) {
                Ok(v) => Ok(Some(v.to_string())),
                Err(e) => {
                    let msg = e.message();
                    tel.count("ipc.errors");
                    self.errors.push(msg.clone());
                    Err(msg)
                }
            };
            if span {
                tel.span_end();
            }
            r
        } else {
            self.lines_passed += 1;
            tel.count("ipc.lines.passthrough");
            self.passthrough.push(trimmed.to_string());
            Ok(None)
        }
    }

    /// Feeds bytes arriving on the mass-transfer channel. When the
    /// byte count configured by `setCommunicationVariable` is reached,
    /// the data lands in the Tcl variable and the completion script runs.
    pub fn handle_mass_data(&mut self, data: &[u8]) {
        let tel = self.session.telemetry.clone();
        tel.add("ipc.mass.bytes", data.len() as u64);
        self.mass_buf.extend_from_slice(data);
        loop {
            let config = self.session.comm_var.borrow().clone();
            let (var, count, script) = match config {
                Some(c) => c,
                None => return,
            };
            if self.mass_buf.len() < count {
                return;
            }
            let chunk: Vec<u8> = self.mass_buf.drain(..count).collect();
            tel.count("ipc.mass.transfers");
            tel.event("mass.transfer", || format!("{count} bytes -> {}", var));
            let text = String::from_utf8_lossy(&chunk).into_owned();
            if let Err(e) = self.session.interp.set_var(&var, &text) {
                self.errors.push(e.message());
            }
            // One-shot: clear the configuration before running the script
            // (which may configure the next transfer).
            *self.session.comm_var.borrow_mut() = None;
            if let Err(e) = self.session.eval(&script) {
                if e.is_error() {
                    self.errors.push(e.message());
                }
            }
        }
    }

    /// Bytes still waiting in the mass buffer.
    pub fn mass_pending(&self) -> usize {
        self.mass_buf.len()
    }

    /// Takes the lines queued for the application (click-ahead buffer).
    pub fn take_app_lines(&mut self) -> Vec<String> {
        self.to_app.borrow_mut().drain(..).collect()
    }

    /// Number of lines currently buffered for the application.
    pub fn app_lines_pending(&self) -> usize {
        self.to_app.borrow().len()
    }

    /// The application-bound lines currently buffered, without draining
    /// them — checkpoint capture reads the queue it must preserve.
    pub fn peek_app_lines(&self) -> Vec<String> {
        self.to_app.borrow().iter().cloned().collect()
    }

    /// Takes the non-command lines passed through to the frontend stdout.
    pub fn take_passthrough(&mut self) -> Vec<String> {
        std::mem::take(&mut self.passthrough)
    }

    /// Protocol statistics: `(interpreted, passed_through)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.lines_interpreted, self.lines_passed)
    }

    /// Accumulated protocol errors.
    pub fn take_errors(&mut self) -> Vec<String> {
        std::mem::take(&mut self.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> ProtocolEngine {
        ProtocolEngine::new(Flavor::Athena)
    }

    #[test]
    fn prefixed_lines_are_commands() {
        let mut e = engine();
        e.handle_line("%label l topLevel label hi\n").unwrap();
        assert!(e.session.app.borrow().lookup("l").is_some());
        assert_eq!(e.stats(), (1, 0));
    }

    #[test]
    fn unprefixed_lines_pass_through() {
        let mut e = engine();
        e.handle_line("just some output\n").unwrap();
        assert_eq!(e.take_passthrough(), vec!["just some output"]);
        assert_eq!(e.stats(), (0, 1));
    }

    #[test]
    fn echo_goes_to_application_queue() {
        let mut e = engine();
        e.handle_line("%echo hello app\n").unwrap();
        assert_eq!(e.take_app_lines(), vec!["hello app"]);
    }

    #[test]
    fn command_errors_reported() {
        let mut e = engine();
        assert!(e.handle_line("%nosuchcommand\n").is_err());
        assert_eq!(e.take_errors().len(), 1);
    }

    #[test]
    fn line_limit_enforced() {
        // E15: the 64KB default line length.
        let mut e = engine();
        e.set_max_line(100);
        let long = format!("%echo {}", "x".repeat(200));
        assert!(e.handle_line(&long).is_err());
        // A line under the limit passes.
        let ok = format!("%echo {}", "x".repeat(50));
        assert!(e.handle_line(&ok).is_ok());
        // The default limit is the paper's 64KB.
        let e2 = engine();
        assert_eq!(e2.max_line, DEFAULT_MAX_LINE);
        assert_eq!(DEFAULT_MAX_LINE, 65536);
    }

    #[test]
    fn paper_prime_factor_widget_tree() {
        // The exact command lines the Perl example prints in phase 2.
        let mut e = engine();
        for line in [
            "%form top topLevel",
            "%asciiText input top editType edit width 200",
            "%action input override {<Key>Return: exec(echo [gV input string])}",
            "%label result top label {} width 200 fromVert input",
            "%command quit top fromVert result callback quit",
            "%label info top fromVert result fromHoriz quit label {} borderWidth 0 width 150",
            "%realize",
        ] {
            e.handle_line(line).unwrap();
        }
        let app = e.session.app.borrow();
        for w in ["top", "input", "result", "quit", "info"] {
            assert!(app.lookup(w).is_some(), "missing widget {w}");
            assert!(app.is_realized(app.lookup(w).unwrap()));
        }
    }

    #[test]
    fn prime_factor_read_loop_roundtrip() {
        // Phase 3: typing a number and pressing Return sends the string
        // to the application; the application answers with sV lines.
        let mut e = engine();
        for line in [
            "%form top topLevel",
            "%asciiText input top editType edit width 200",
            "%action input override {<Key>Return: exec(echo [gV input string])}",
            "%label result top label {} width 200 fromVert input",
            "%realize",
        ] {
            e.handle_line(line).unwrap();
        }
        {
            let mut app = e.session.app.borrow_mut();
            let input = app.lookup("input").unwrap();
            let win = app.widget(input).window.unwrap();
            app.displays[0].set_input_focus(Some(win));
            app.displays[0].inject_key_text("360\n");
        }
        e.session.pump();
        // The frontend sent the typed number to the application.
        assert_eq!(e.take_app_lines(), vec!["360"]);
        // The application (playing the Perl program) answers.
        e.handle_line("%sV result label {2*2*2*3*3*5}").unwrap();
        assert_eq!(e.session.eval("gV result label").unwrap(), "2*2*2*3*3*5");
    }

    #[test]
    fn mass_transfer_accumulates_until_count() {
        // The paper: setCommunicationVariable C 100000 {sV text string $C}
        // — scaled down to 100 bytes here; the full-size transfer runs in
        // the E6 benchmark.
        let mut e = engine();
        e.handle_line("%form top topLevel").unwrap();
        e.handle_line("%asciiText text top editType edit").unwrap();
        e.handle_line("%realize").unwrap();
        e.handle_line("%setCommunicationVariable C 100 {sV text string $C}")
            .unwrap();
        let payload = "y".repeat(100);
        // Arrives in two chunks.
        e.handle_mass_data(&payload.as_bytes()[..40]);
        assert_eq!(e.mass_pending(), 40);
        assert_eq!(e.session.eval("gV text string").unwrap(), "");
        e.handle_mass_data(&payload.as_bytes()[40..]);
        assert_eq!(e.mass_pending(), 0);
        assert_eq!(e.session.eval("gV text string").unwrap(), payload);
        // One-shot: more data just buffers.
        e.handle_mass_data(b"extra");
        assert_eq!(e.mass_pending(), 5);
    }

    #[test]
    fn click_ahead_buffers_in_order() {
        // E11: button presses while the application is busy are buffered,
        // none lost, order preserved.
        let mut e = engine();
        e.handle_line("%command b topLevel label go callback {echo pressed}")
            .unwrap();
        e.handle_line("%realize").unwrap();
        let _ = e.take_app_lines();
        for _ in 0..10 {
            let mut app = e.session.app.borrow_mut();
            let b = app.lookup("b").unwrap();
            let win = app.widget(b).window.unwrap();
            let abs = app.displays[0].abs_rect(win);
            app.displays[0].inject_click(abs.x + 2, abs.y + 2, 1);
        }
        e.session.pump();
        // The application was "busy" (read nothing); all ten messages wait.
        let lines = e.take_app_lines();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l == "pressed"));
    }

    #[test]
    fn gui_refresh_while_app_silent() {
        // E10: expose events are serviced even when the application sends
        // nothing (it is busy computing).
        let mut e = engine();
        e.handle_line("%label l topLevel label visible width 80 height 24")
            .unwrap();
        e.handle_line("%realize").unwrap();
        // The application goes silent; a user uncovers the window.
        {
            let mut app = e.session.app.borrow_mut();
            let l = app.lookup("l").unwrap();
            let win = app.widget(l).window.unwrap();
            app.displays[0].expose(win);
        }
        e.session.pump();
        let snap = e.session.eval("snapshot 0 0 200 60").unwrap();
        assert!(snap.contains("visible"), "{snap}");
    }

    #[test]
    fn assembler_reframes_chunked_bytes() {
        let mut a = LineAssembler::unbounded();
        assert_eq!(a.push(b"%set x "), Vec::<String>::new());
        assert_eq!(a.pending(), 7);
        assert_eq!(a.push(b"1\nplain\n%se"), vec!["%set x 1", "plain"]);
        assert_eq!(a.push(b"t y 2\n"), vec!["%set y 2"]);
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn assembler_discards_oversized_lines() {
        let mut a = LineAssembler::new(8);
        // Oversized whether it completes in one chunk or dribbles in.
        assert_eq!(a.push(b"0123456789ab\nok\n"), vec!["ok"]);
        assert_eq!(a.take_overflows(), 1);
        for _ in 0..5 {
            assert!(a.push(b"xxxx").is_empty());
        }
        assert_eq!(a.push(b"tail\nok2\n"), vec!["ok2"]);
        assert_eq!(a.take_overflows(), 1, "one overflow per discarded line");
        // A line of exactly max bytes survives.
        let mut b = LineAssembler::new(4);
        assert_eq!(b.push(b"abcd\n"), vec!["abcd"]);
        assert_eq!(b.take_overflows(), 0);
    }

    #[test]
    fn classification_matches_engine_behaviour() {
        assert!(is_command_line("%set x 1", DEFAULT_PREFIX));
        assert!(is_command_line("%set x 1\n", DEFAULT_PREFIX));
        assert!(!is_command_line("plain", DEFAULT_PREFIX));
        assert!(!is_command_line("", DEFAULT_PREFIX));
        assert!(is_command_line("#cmd", '#'));
    }

    #[test]
    fn custom_prefix() {
        let mut e = engine();
        e.set_prefix('#');
        e.handle_line("#set x 42").unwrap();
        assert_eq!(e.session.interp.get_var("x").unwrap(), "42");
        // '%' lines now pass through.
        e.handle_line("%not a command").unwrap();
        assert_eq!(e.take_passthrough(), vec!["%not a command"]);
    }
}
