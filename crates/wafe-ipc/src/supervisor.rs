//! The backend supervisor: timeouts, restart policy, flood limits and
//! graceful degradation for frontend mode.
//!
//! The paper's frontend simply trusts the application process. This
//! layer removes that assumption: the child runs under a supervisor
//! with a small state machine
//!
//! ```text
//!           fault (timeout / exit / write error / injected kill)
//!   Running ──────────────────────────────────────────────┐
//!     ▲                                                   ▼
//!     │ respawn ok (flush queue)              restarts left? ──no──▶ Broken
//!     │                                                   │           (breaker
//!     └────────────── Restarting ◀──────yes── backoff     │            open)
//!                        │  ▲                             │
//!                        └──┘ respawn fails               │
//!                                                         │
//!   Exited ◀── clean child exit (restartOnExit off) ──────┘
//! ```
//!
//! While the backend is down the GUI stays alive: lines the session
//! wants to send are queued (bounded, with drop accounting) and flushed
//! in order after a successful restart. Time is virtual — each call to
//! [`Supervisor::tick`] advances the supervisor clock by the tick's poll
//! timeout — so every timeout and backoff decision is deterministic and
//! the chaos suite needs no wall-clock sleeps in its assertions.
//!
//! Everything observable lands in `wafe-trace` under
//! `ipc.supervisor.*` counters and `supervisor.*` journal events, and
//! the whole layer is scriptable through the `backend` and `faultpoint`
//! Tcl commands (registered by `wafe-core`, dispatching into handlers
//! installed here — see [`install_controls`]).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;
use std::time::{Duration, Instant};

use wafe_core::WafeSession;
use wafe_trace::Telemetry;

use crate::codec::LineCodec;
use crate::fault::{truncate_line, FaultAction, FaultPlan};
use crate::frontend::{ChildLink, SpawnSpec};
use crate::protocol::ProtocolEngine;

/// Tuning knobs of the supervisor. The defaults reproduce the paper's
/// trusting frontend: no timeouts, no restarts, generous flood caps.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Declare a fault when no bytes arrive from the backend for this
    /// many virtual milliseconds (`None`/0 = never — the paper's
    /// behaviour, which hangs on a wedged child).
    pub read_timeout_ms: Option<u64>,
    /// Declare a fault when a line written to the backend stays
    /// unanswered (no complete line back) for this long.
    pub roundtrip_timeout_ms: Option<u64>,
    /// Restarts allowed before the circuit breaker opens.
    pub max_restarts: u32,
    /// First restart delay; doubles per consecutive restart.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_max_ms: u64,
    /// Complete lines handled per tick; the excess is deferred to later
    /// ticks (a flood trip, counted but not fatal).
    pub max_lines_per_tick: usize,
    /// Cap on buffered bytes without a newline AND on bytes read per
    /// tick. An unterminated line beyond this is a flood fault.
    pub max_buffered_bytes: usize,
    /// Outbound lines queued while the backend is down; writes beyond
    /// this are dropped (and counted).
    pub queue_cap: usize,
    /// Treat a clean child exit as a fault (restart it) instead of
    /// ending the session loop.
    pub restart_on_exit: bool,
    /// Keep the GUI loop running after the breaker opens instead of
    /// ending it.
    pub stay_alive_when_broken: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            read_timeout_ms: None,
            roundtrip_timeout_ms: None,
            max_restarts: 0,
            backoff_base_ms: 100,
            backoff_max_ms: 5_000,
            max_lines_per_tick: 10_000,
            max_buffered_bytes: 1 << 20,
            queue_cap: 256,
            restart_on_exit: false,
            stay_alive_when_broken: false,
        }
    }
}

/// The Tcl-visible config keys, in `backend config` listing order.
pub const CONFIG_KEYS: &[&str] = &[
    "readTimeout",
    "roundtripTimeout",
    "retries",
    "backoffBase",
    "backoffMax",
    "floodLines",
    "floodBytes",
    "queueCap",
    "restartOnExit",
    "stayAliveWhenBroken",
];

impl SupervisorConfig {
    /// Reads `WAFE_BACKEND_*` overrides on top of the defaults:
    /// `TIMEOUT` (read, ms; 0 disables), `ROUNDTRIP` (ms), `RETRIES`,
    /// `BACKOFF` / `BACKOFF_MAX` (ms), `FLOOD_LINES`, `FLOOD_BYTES`,
    /// `QUEUE`, `RESTART_ON_EXIT` (0/1), `STAY_ALIVE` (0/1). Unparsable
    /// values keep the default and come back as warnings — silently
    /// ignoring `WAFE_BACKEND_TIMEOUT=5s` would leave the paper's
    /// no-timeout behaviour in place with no hint why.
    pub fn from_env() -> (Self, Vec<String>) {
        Self::from_vars(|var| std::env::var(var).ok())
    }

    /// The testable core of [`from_env`](Self::from_env): same parsing
    /// against any variable source.
    pub fn from_vars(lookup: impl Fn(&str) -> Option<String>) -> (Self, Vec<String>) {
        let mut warnings = Vec::new();
        let mut num = |var: &str, max: u64| -> Option<u64> {
            let raw = lookup(var)?;
            match raw.trim().parse::<u64>() {
                Ok(v) if v <= max => Some(v),
                Ok(v) => {
                    warnings.push(format!("{var}={v} is out of range (max {max}); ignored"));
                    None
                }
                Err(_) => {
                    warnings.push(format!(
                        "{var}=\"{}\" is not a non-negative integer; ignored",
                        raw.trim()
                    ));
                    None
                }
            }
        };
        let mut c = SupervisorConfig::default();
        if let Some(v) = num("WAFE_BACKEND_TIMEOUT", u64::MAX) {
            c.read_timeout_ms = (v > 0).then_some(v);
        }
        if let Some(v) = num("WAFE_BACKEND_ROUNDTRIP", u64::MAX) {
            c.roundtrip_timeout_ms = (v > 0).then_some(v);
        }
        if let Some(v) = num("WAFE_BACKEND_RETRIES", u32::MAX as u64) {
            c.max_restarts = v as u32;
        }
        if let Some(v) = num("WAFE_BACKEND_BACKOFF", u64::MAX) {
            c.backoff_base_ms = v;
        }
        if let Some(v) = num("WAFE_BACKEND_BACKOFF_MAX", u64::MAX) {
            c.backoff_max_ms = v;
        }
        if let Some(v) = num("WAFE_BACKEND_FLOOD_LINES", usize::MAX as u64) {
            c.max_lines_per_tick = v as usize;
        }
        if let Some(v) = num("WAFE_BACKEND_FLOOD_BYTES", usize::MAX as u64) {
            c.max_buffered_bytes = v as usize;
        }
        if let Some(v) = num("WAFE_BACKEND_QUEUE", usize::MAX as u64) {
            c.queue_cap = v as usize;
        }
        if let Some(v) = num("WAFE_BACKEND_RESTART_ON_EXIT", 1) {
            c.restart_on_exit = v != 0;
        }
        if let Some(v) = num("WAFE_BACKEND_STAY_ALIVE", 1) {
            c.stay_alive_when_broken = v != 0;
        }
        (c, warnings)
    }

    /// The value of a Tcl-visible key ([`CONFIG_KEYS`]).
    pub fn get(&self, key: &str) -> Option<String> {
        Some(match key {
            "readTimeout" => self.read_timeout_ms.unwrap_or(0).to_string(),
            "roundtripTimeout" => self.roundtrip_timeout_ms.unwrap_or(0).to_string(),
            "retries" => self.max_restarts.to_string(),
            "backoffBase" => self.backoff_base_ms.to_string(),
            "backoffMax" => self.backoff_max_ms.to_string(),
            "floodLines" => self.max_lines_per_tick.to_string(),
            "floodBytes" => self.max_buffered_bytes.to_string(),
            "queueCap" => self.queue_cap.to_string(),
            "restartOnExit" => (self.restart_on_exit as u8).to_string(),
            "stayAliveWhenBroken" => (self.stay_alive_when_broken as u8).to_string(),
            _ => return None,
        })
    }

    /// Sets a Tcl-visible key from its string form.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        let n: u64 = value
            .trim()
            .parse()
            .map_err(|_| format!("expected integer but got \"{value}\""))?;
        match key {
            "readTimeout" => self.read_timeout_ms = (n > 0).then_some(n),
            "roundtripTimeout" => self.roundtrip_timeout_ms = (n > 0).then_some(n),
            "retries" => self.max_restarts = n as u32,
            "backoffBase" => self.backoff_base_ms = n,
            "backoffMax" => self.backoff_max_ms = n,
            "floodLines" => self.max_lines_per_tick = n as usize,
            "floodBytes" => self.max_buffered_bytes = n as usize,
            "queueCap" => self.queue_cap = n as usize,
            "restartOnExit" => self.restart_on_exit = n != 0,
            "stayAliveWhenBroken" => self.stay_alive_when_broken = n != 0,
            _ => {
                return Err(format!(
                    "unknown config key \"{key}\": must be one of {}",
                    CONFIG_KEYS.join(", ")
                ))
            }
        }
        Ok(())
    }
}

/// Where the supervised backend currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendState {
    /// Child alive, pipes flowing.
    Running,
    /// Child down; a respawn is scheduled (exponential backoff).
    Restarting,
    /// The circuit breaker is open: restart budget exhausted. A manual
    /// `backend restart` resets the breaker.
    Broken,
    /// The child exited and the session let it (restartOnExit off), or
    /// `backend kill` / `Frontend::kill` ran.
    Exited,
}

impl fmt::Display for BackendState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendState::Running => "running",
            BackendState::Restarting => "restarting",
            BackendState::Broken => "broken",
            BackendState::Exited => "exited",
        })
    }
}

/// Event totals since spawn; mirrored into `ipc.supervisor.*` counters
/// when telemetry is enabled (the struct itself always counts).
#[derive(Debug, Clone, Default)]
pub struct SupervisorStats {
    /// Successful respawns.
    pub restarts: u64,
    /// Read-timeout faults.
    pub read_timeouts: u64,
    /// Round-trip-timeout faults.
    pub roundtrip_timeouts: u64,
    /// Outbound lines dropped because the queue was full.
    pub queue_dropped: u64,
    /// Queued lines delivered after a restart.
    pub queue_flushed: u64,
    /// Flood defenses that engaged (deferred lines or oversized buffer).
    pub flood_trips: u64,
    /// Times the circuit breaker opened.
    pub breaker_trips: u64,
    /// Fault-plan actions that fired.
    pub faults_injected: u64,
    /// Child exits observed (including manual kills).
    pub exits: u64,
    /// Respawn attempts that failed to spawn.
    pub spawn_failures: u64,
    /// Failed writes to the backend's stdin.
    pub write_errors: u64,
}

enum PendingCtl {
    Restart,
    Kill,
}

/// The shared, script-visible half of the supervisor: configuration,
/// state, stats, the outbound queue and the fault plan. The `backend`
/// and `faultpoint` commands operate on this handle while the owning
/// [`Supervisor`] drives the child.
pub struct SupervisorCore {
    /// Tuning knobs (mutable at runtime via `backend config`).
    pub config: SupervisorConfig,
    /// Event totals.
    pub stats: SupervisorStats,
    /// The active fault plan, if any.
    pub plan: Option<FaultPlan>,
    state: BackendState,
    queue: VecDeque<String>,
    now_ms: u64,
    due_ms: u64,
    restarts_done: u32,
    last_data_ms: u64,
    pending_write_ms: Option<u64>,
    pending: Vec<PendingCtl>,
}

impl SupervisorCore {
    fn new(config: SupervisorConfig, plan: Option<FaultPlan>) -> Self {
        SupervisorCore {
            config,
            stats: SupervisorStats::default(),
            plan,
            state: BackendState::Running,
            queue: VecDeque::new(),
            now_ms: 0,
            due_ms: 0,
            restarts_done: 0,
            last_data_ms: 0,
            pending_write_ms: None,
            pending: Vec::new(),
        }
    }

    /// The current backend state.
    pub fn state(&self) -> BackendState {
        self.state
    }

    /// The supervisor's virtual clock, in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Lines currently queued for the backend.
    pub fn queued_lines(&self) -> Vec<String> {
        self.queue.iter().cloned().collect()
    }

    /// Requests a forced restart: executed on the next tick, resetting
    /// the circuit breaker (an explicit operator decision).
    pub fn request_restart(&mut self) {
        self.pending.push(PendingCtl::Restart);
    }

    /// Requests a kill without restart: executed on the next tick.
    pub fn request_kill(&mut self) {
        self.pending.push(PendingCtl::Kill);
    }

    /// `backend status` payload: a flat key/value word list.
    pub fn status_words(&self) -> Vec<String> {
        let s = &self.stats;
        [
            ("state", self.state.to_string()),
            ("restarts", s.restarts.to_string()),
            (
                "restartsLeft",
                self.config
                    .max_restarts
                    .saturating_sub(self.restarts_done)
                    .to_string(),
            ),
            ("queued", self.queue.len().to_string()),
            ("dropped", s.queue_dropped.to_string()),
            ("flushed", s.queue_flushed.to_string()),
            ("readTimeouts", s.read_timeouts.to_string()),
            ("roundtripTimeouts", s.roundtrip_timeouts.to_string()),
            ("floodTrips", s.flood_trips.to_string()),
            ("breakerTrips", s.breaker_trips.to_string()),
            ("faultsInjected", s.faults_injected.to_string()),
            ("exits", s.exits.to_string()),
            ("writeErrors", s.write_errors.to_string()),
            ("spawnFailures", s.spawn_failures.to_string()),
            ("nowMs", self.now_ms.to_string()),
        ]
        .into_iter()
        .flat_map(|(k, v)| [k.to_string(), v])
        .collect()
    }
}

fn backoff_ms(config: &SupervisorConfig, attempt: u32) -> u64 {
    let shift = attempt.saturating_sub(1).min(20);
    config
        .backoff_base_ms
        .saturating_mul(1u64 << shift)
        .min(config.backoff_max_ms)
}

/// The driving half: owns the child process (when one is alive), the
/// shared line codec and the fault-delayed byte queues, and advances the
/// state machine once per [`tick`](Supervisor::tick).
pub struct Supervisor {
    core: Rc<RefCell<SupervisorCore>>,
    link: Option<ChildLink>,
    spec: SpawnSpec,
    codec: LineCodec,
    deferred: VecDeque<String>,
    delayed: VecDeque<(u64, Vec<u8>)>,
    delayed_mass: VecDeque<(u64, Vec<u8>)>,
    channel_fd: Rc<Cell<i64>>,
    tel: Telemetry,
    last_write: Option<Instant>,
    /// Token of the open detached `ipc.roundtrip` span (0 = none): begun
    /// at the first unanswered write, closed by the reply or the fault
    /// that ends the wait. Detached because the reply arrives long after
    /// the command span that caused the write has closed; the span still
    /// carries that command's trace ID.
    roundtrip_span: u64,
}

impl Supervisor {
    /// Spawns the first child incarnation under the given policy.
    pub fn new(
        spec: SpawnSpec,
        config: SupervisorConfig,
        plan: Option<FaultPlan>,
        tel: Telemetry,
        channel_fd: Rc<Cell<i64>>,
    ) -> std::io::Result<Supervisor> {
        let max_buffered = config.max_buffered_bytes;
        let core = Rc::new(RefCell::new(SupervisorCore::new(config, plan)));
        let mut sup = Supervisor {
            core,
            link: None,
            spec,
            codec: LineCodec::new(max_buffered),
            deferred: VecDeque::new(),
            delayed: VecDeque::new(),
            delayed_mass: VecDeque::new(),
            channel_fd,
            tel,
            last_write: None,
            roundtrip_span: 0,
        };
        if sup.fire("spawn").contains(&FaultAction::Kill) {
            return Err(std::io::Error::other("fault injected: spawn kill"));
        }
        let link = ChildLink::spawn(&sup.spec, &sup.channel_fd)?;
        sup.link = Some(link);
        if let Some(ic) = sup.spec.init_com.clone() {
            if let Err(e) = sup.transmit(&ic) {
                sup.declare_fault("init-com write failed", &e.to_string());
            }
        }
        Ok(sup)
    }

    /// The shared handle the `backend`/`faultpoint` commands use.
    pub fn core(&self) -> Rc<RefCell<SupervisorCore>> {
        self.core.clone()
    }

    /// The current state.
    pub fn state(&self) -> BackendState {
        self.core.borrow().state
    }

    /// A copy of the event totals.
    pub fn stats(&self) -> SupervisorStats {
        self.core.borrow().stats.clone()
    }

    /// Kills the child process *without* telling the supervisor — the
    /// next tick observes the exit and applies the restart policy. The
    /// chaos tests use this as a deterministic external crash.
    pub fn kill_child_process(&mut self) {
        if let Some(link) = &mut self.link {
            link.kill_process();
        }
    }

    /// Tears the backend down for good (test cleanup, `Frontend::kill`).
    pub fn shutdown(&mut self) {
        self.drop_link();
        self.core.borrow_mut().state = BackendState::Exited;
    }

    // ----- outbound ---------------------------------------------------

    /// Sends one line toward the backend: delivered when running,
    /// queued while down, dropped (with accounting) when the queue is
    /// full.
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        if self.core.borrow().state != BackendState::Running || self.link.is_none() {
            self.enqueue(line.to_string());
            return Ok(());
        }
        let mut line = line.to_string();
        for action in self.fire("write") {
            match action {
                FaultAction::Kill => {
                    self.declare_fault("injected kill", "write");
                    self.enqueue(line);
                    return Ok(());
                }
                FaultAction::Wedge | FaultAction::Drop => return Ok(()),
                FaultAction::Garble => {
                    line = self.with_plan(|p| p.garble_line(&line)).unwrap_or(line);
                }
                FaultAction::Truncate(n) => line = truncate_line(&line, n),
                FaultAction::Delay(_) | FaultAction::Flood(_) => {}
            }
        }
        match self.transmit(&line) {
            Ok(()) => {
                let mut core = self.core.borrow_mut();
                let now = core.now_ms;
                core.pending_write_ms.get_or_insert(now);
                Ok(())
            }
            Err(e) => {
                self.core.borrow_mut().stats.write_errors += 1;
                self.tel.count("ipc.supervisor.write.errors");
                self.enqueue(line);
                self.declare_fault("write failed", &e.to_string());
                Ok(())
            }
        }
    }

    fn transmit(&mut self, line: &str) -> std::io::Result<()> {
        let link = self
            .link
            .as_mut()
            .ok_or_else(|| std::io::Error::other("no backend"))?;
        self.tel.count("ipc.lines.sent");
        self.tel.add("ipc.bytes.sent", line.len() as u64);
        self.last_write = self.tel.timer();
        if self.roundtrip_span == 0 {
            self.roundtrip_span = self
                .tel
                .span_begin_detached("ipc.roundtrip", || line.to_string());
        }
        link.write_line(line)
    }

    fn enqueue(&mut self, line: String) {
        let mut core = self.core.borrow_mut();
        if core.queue.len() >= core.config.queue_cap {
            core.stats.queue_dropped += 1;
            self.tel.count("ipc.supervisor.queue.dropped");
            self.tel
                .event("supervisor.drop", || format!("queue full, dropped: {line}"));
        } else {
            core.queue.push_back(line);
            let depth = core.queue.len() as u64;
            self.tel.set_gauge("ipc.supervisor.queue.depth", depth);
        }
    }

    // ----- fault plumbing ---------------------------------------------

    fn fire(&mut self, point: &'static str) -> Vec<FaultAction> {
        let mut core = self.core.borrow_mut();
        let Some(plan) = core.plan.as_mut() else {
            return Vec::new();
        };
        let actions = plan.fire(point);
        if !actions.is_empty() {
            core.stats.faults_injected += actions.len() as u64;
            self.tel
                .add("ipc.supervisor.faults.injected", actions.len() as u64);
            for a in &actions {
                self.tel.event("fault.injected", || format!("{point}: {a}"));
            }
        }
        actions
    }

    fn with_plan<T>(&mut self, f: impl FnOnce(&mut FaultPlan) -> T) -> Option<T> {
        self.core.borrow_mut().plan.as_mut().map(f)
    }

    fn drop_link(&mut self) {
        if let Some(mut link) = self.link.take() {
            link.kill_process();
        }
        self.channel_fd.set(-1);
        self.codec.clear();
        self.deferred.clear();
        self.delayed.clear();
        self.delayed_mass.clear();
        self.last_write = None;
        // A roundtrip cut short by teardown still ends — at the fault,
        // not at a reply that will never come.
        self.tel
            .span_end_detached(std::mem::take(&mut self.roundtrip_span));
    }

    /// Declares a fault: the current child (if any) is torn down with
    /// its partial data, then either a restart is scheduled or the
    /// breaker opens.
    fn declare_fault(&mut self, kind: &str, detail: &str) {
        self.drop_link();
        let mut core = self.core.borrow_mut();
        let now = core.now_ms;
        core.pending_write_ms = None;
        // Fault-path events carry the active trace ID so a journal read
        // attributes the failure to the session command that hit it.
        let note = self.tel.trace_note();
        self.tel
            .event("supervisor.fault", || format!("{kind}: {detail}{note}"));
        if core.restarts_done < core.config.max_restarts {
            core.restarts_done += 1;
            let wait = backoff_ms(&core.config, core.restarts_done);
            core.due_ms = now + wait;
            core.state = BackendState::Restarting;
            let attempt = core.restarts_done;
            let note = self.tel.trace_note();
            self.tel.event("supervisor.backoff", || {
                format!("restart {attempt} in {wait}ms{note}")
            });
        } else {
            core.state = BackendState::Broken;
            core.stats.breaker_trips += 1;
            self.tel.count("ipc.supervisor.breaker.trips");
            let note = self.tel.trace_note();
            self.tel
                .event("supervisor.breaker", || format!("open after {kind}{note}"));
        }
    }

    fn attempt_respawn(&mut self) {
        if self.fire("spawn").contains(&FaultAction::Kill) {
            self.core.borrow_mut().stats.spawn_failures += 1;
            self.tel.count("ipc.supervisor.spawn.failures");
            self.declare_fault("respawn failed", "fault injected: spawn kill");
            return;
        }
        match ChildLink::spawn(&self.spec, &self.channel_fd) {
            Ok(link) => {
                self.link = Some(link);
                self.codec.clear();
                {
                    let mut core = self.core.borrow_mut();
                    core.state = BackendState::Running;
                    core.stats.restarts += 1;
                    let now = core.now_ms;
                    core.last_data_ms = now;
                    core.pending_write_ms = None;
                    let n = core.stats.restarts;
                    self.tel.count("ipc.supervisor.restarts");
                    let note = self.tel.trace_note();
                    self.tel
                        .event("supervisor.restart", || format!("respawn #{n} ok{note}"));
                }
                if let Some(ic) = self.spec.init_com.clone() {
                    if let Err(e) = self.transmit(&ic) {
                        self.declare_fault("init-com write failed", &e.to_string());
                        return;
                    }
                }
                // Flush the click-ahead queue in order.
                loop {
                    let next = self.core.borrow_mut().queue.pop_front();
                    let Some(queued) = next else { break };
                    match self.transmit(&queued) {
                        Ok(()) => {
                            self.core.borrow_mut().stats.queue_flushed += 1;
                            self.tel.count("ipc.supervisor.queue.flushed");
                        }
                        Err(e) => {
                            self.core.borrow_mut().queue.push_front(queued);
                            self.declare_fault("queue flush failed", &e.to_string());
                            return;
                        }
                    }
                }
                let depth = self.core.borrow().queue.len() as u64;
                self.tel.set_gauge("ipc.supervisor.queue.depth", depth);
            }
            Err(e) => {
                self.core.borrow_mut().stats.spawn_failures += 1;
                self.tel.count("ipc.supervisor.spawn.failures");
                self.declare_fault("respawn failed", &e.to_string());
            }
        }
    }

    // ----- inbound ----------------------------------------------------

    fn ingest_read_bytes(&mut self, mut chunk: Vec<u8>) {
        for action in self.fire("read") {
            match action {
                FaultAction::Kill => {
                    self.declare_fault("injected kill", "read");
                    return;
                }
                FaultAction::Wedge | FaultAction::Drop => chunk.clear(),
                FaultAction::Garble => {
                    self.with_plan(|p| p.garble_bytes(&mut chunk));
                }
                FaultAction::Truncate(n) => chunk.truncate(n),
                FaultAction::Delay(ms) => {
                    if !chunk.is_empty() {
                        let due = self.core.borrow().now_ms + ms;
                        self.delayed.push_back((due, chunk));
                    }
                    return;
                }
                FaultAction::Flood(n) => {
                    let one = chunk.clone();
                    for _ in 1..n {
                        chunk.extend_from_slice(&one);
                    }
                }
            }
        }
        self.assemble(chunk);
    }

    fn assemble(&mut self, chunk: Vec<u8>) {
        if chunk.is_empty() {
            return;
        }
        {
            let mut core = self.core.borrow_mut();
            let now = core.now_ms;
            core.last_data_ms = now;
        }
        for line in self.codec.push(&chunk) {
            self.admit_line(line);
            if self.core.borrow().state != BackendState::Running {
                return; // an injected kill tore the child down mid-chunk
            }
        }
    }

    fn admit_line(&mut self, line: String) {
        let mut lines = vec![line];
        for action in self.fire("line") {
            match action {
                FaultAction::Kill => {
                    // The line dies with the child: kill mid-line.
                    self.declare_fault("injected kill", "line");
                    return;
                }
                FaultAction::Wedge | FaultAction::Drop => return,
                FaultAction::Garble => {
                    if let Some(g) = self.with_plan(|p| p.garble_line(&lines[0])) {
                        lines[0] = g;
                    }
                }
                FaultAction::Truncate(n) => lines[0] = truncate_line(&lines[0], n),
                FaultAction::Flood(n) => {
                    let one = lines[0].clone();
                    lines = std::iter::repeat_with(|| one.clone()).take(n).collect();
                }
                FaultAction::Delay(_) => {}
            }
        }
        self.deferred.extend(lines);
    }

    fn release_delayed(&mut self) {
        let now = self.core.borrow().now_ms;
        while matches!(self.delayed.front(), Some((due, _)) if *due <= now) {
            let (_, chunk) = self.delayed.pop_front().expect("front checked");
            self.assemble(chunk);
        }
    }

    fn ingest_mass(&mut self, engine: &mut ProtocolEngine, mut chunk: Vec<u8>) {
        for action in self.fire("mass") {
            match action {
                FaultAction::Kill => {
                    self.declare_fault("injected kill", "mass");
                    return;
                }
                FaultAction::Wedge | FaultAction::Drop => chunk.clear(),
                FaultAction::Garble => {
                    self.with_plan(|p| p.garble_bytes(&mut chunk));
                }
                FaultAction::Truncate(n) => chunk.truncate(n),
                FaultAction::Delay(ms) => {
                    if !chunk.is_empty() {
                        let due = self.core.borrow().now_ms + ms;
                        self.delayed_mass.push_back((due, chunk));
                    }
                    return;
                }
                FaultAction::Flood(n) => {
                    let one = chunk.clone();
                    for _ in 1..n {
                        chunk.extend_from_slice(&one);
                    }
                }
            }
        }
        if !chunk.is_empty() {
            {
                let mut core = self.core.borrow_mut();
                let now = core.now_ms;
                core.last_data_ms = now;
            }
            engine.handle_mass_data(&chunk);
        }
    }

    fn release_delayed_mass(&mut self, engine: &mut ProtocolEngine) {
        let now = self.core.borrow().now_ms;
        while matches!(self.delayed_mass.front(), Some((due, _)) if *due <= now) {
            let (_, chunk) = self.delayed_mass.pop_front().expect("front checked");
            if !chunk.is_empty() {
                engine.handle_mass_data(&chunk);
            }
        }
    }

    fn process_deferred(&mut self, engine: &mut ProtocolEngine) {
        let cap = self.core.borrow().config.max_lines_per_tick.max(1);
        let mut handled = 0usize;
        while handled < cap {
            let Some(line) = self.deferred.pop_front() else {
                break;
            };
            if self.last_write.is_some() {
                self.tel
                    .observe_since("ipc.roundtrip", self.last_write.take());
            }
            self.tel
                .span_end_detached(std::mem::take(&mut self.roundtrip_span));
            self.core.borrow_mut().pending_write_ms = None;
            let _ = engine.handle_line(&line);
            handled += 1;
        }
        if !self.deferred.is_empty() {
            let mut core = self.core.borrow_mut();
            core.stats.flood_trips += 1;
            let backlog = self.deferred.len();
            self.tel.count("ipc.supervisor.flood.trips");
            self.tel.event("supervisor.flood", || {
                format!("deferred {backlog} lines past the {cap}/tick cap")
            });
        }
    }

    // ----- the tick ---------------------------------------------------

    /// One supervised iteration of the event loop: advances the virtual
    /// clock by `timeout`, executes control requests, runs due
    /// restarts, polls/reads the child, applies the fault plan, feeds
    /// the protocol engine (bounded per tick) and checks timeouts.
    /// Returns true when the session loop should end (backend exited
    /// and drained, or breaker open without `stayAliveWhenBroken`).
    pub fn tick(&mut self, engine: &mut ProtocolEngine, timeout: Duration) -> bool {
        {
            let mut core = self.core.borrow_mut();
            core.now_ms = core.now_ms.saturating_add(timeout.as_millis() as u64);
        }
        // Control requests from the `backend` command.
        let pending: Vec<PendingCtl> = std::mem::take(&mut self.core.borrow_mut().pending);
        for ctl in pending {
            match ctl {
                PendingCtl::Kill => {
                    self.drop_link();
                    let mut core = self.core.borrow_mut();
                    core.state = BackendState::Exited;
                    core.stats.exits += 1;
                    self.tel.count("ipc.supervisor.exits");
                    let note = self.tel.trace_note();
                    self.tel
                        .event("supervisor.exit", || format!("backend kill{note}"));
                }
                PendingCtl::Restart => {
                    self.drop_link();
                    let mut core = self.core.borrow_mut();
                    core.restarts_done = 0; // operator action resets the breaker
                    core.state = BackendState::Restarting;
                    core.due_ms = core.now_ms;
                }
            }
        }
        let (state, due, now) = {
            let core = self.core.borrow();
            (core.state, core.due_ms, core.now_ms)
        };
        if state == BackendState::Restarting && now >= due {
            self.attempt_respawn();
        }
        if self.core.borrow().state == BackendState::Running {
            self.running_tick(engine, timeout);
        } else if !timeout.is_zero() {
            // No live child to poll: pace the loop like poll(2) would.
            std::thread::sleep(timeout);
        }
        let core = self.core.borrow();
        match core.state {
            BackendState::Exited => true,
            BackendState::Broken => !core.config.stay_alive_when_broken,
            _ => false,
        }
    }

    fn running_tick(&mut self, engine: &mut ProtocolEngine, timeout: Duration) {
        let Some(link) = self.link.as_mut() else {
            return;
        };
        let cap = self.core.borrow().config.max_buffered_bytes.max(4096);
        let (stdout_ready, _mass_ready) = link.poll(timeout);
        let mut saw_eof = false;
        if stdout_ready {
            let (chunk, eof) = link.read_stdout(cap);
            saw_eof = eof;
            if !chunk.is_empty() {
                self.ingest_read_bytes(chunk);
            }
        }
        self.release_delayed();
        if self.core.borrow().state != BackendState::Running {
            return;
        }
        // Mass channel (non-blocking; the fd may be ready without poll
        // having flagged it in the same tick).
        if let Some(link) = self.link.as_mut() {
            let mass = link.read_mass(cap);
            if !mass.is_empty() {
                self.ingest_mass(engine, mass);
            }
        }
        self.release_delayed_mass(engine);
        if self.core.borrow().state != BackendState::Running {
            return;
        }
        self.process_deferred(engine);
        // Flood defense: an unterminated monster line.
        let overflows = self.codec.take_overflows();
        if overflows > 0 {
            {
                let mut core = self.core.borrow_mut();
                core.stats.flood_trips += overflows;
            }
            self.tel.add("ipc.supervisor.flood.trips", overflows);
            self.declare_fault("flood", "unterminated line exceeded floodBytes");
            return;
        }
        // Child gone?
        let exited = self.link.as_mut().map(|l| l.exited()).unwrap_or(false);
        if (saw_eof || exited)
            && self.codec.pending() == 0
            && self.deferred.is_empty()
            && self.delayed.is_empty()
        {
            self.core.borrow_mut().stats.exits += 1;
            self.tel.count("ipc.supervisor.exits");
            let note = self.tel.trace_note();
            self.tel
                .event("supervisor.exit", || format!("child exited{note}"));
            if self.core.borrow().config.restart_on_exit {
                self.declare_fault("child exit", "restartOnExit policy");
            } else {
                self.drop_link();
                self.core.borrow_mut().state = BackendState::Exited;
            }
            return;
        }
        // Timeouts (virtual time).
        let (read_to, rt_to, now, last_data, pending_write) = {
            let core = self.core.borrow();
            (
                core.config.read_timeout_ms,
                core.config.roundtrip_timeout_ms,
                core.now_ms,
                core.last_data_ms,
                core.pending_write_ms,
            )
        };
        if let Some(limit) = read_to {
            if now.saturating_sub(last_data) > limit {
                self.core.borrow_mut().stats.read_timeouts += 1;
                self.tel.count("ipc.supervisor.timeouts.read");
                self.declare_fault("read timeout", "no data from backend");
                return;
            }
        }
        if let Some(limit) = rt_to {
            if let Some(written) = pending_write {
                if now.saturating_sub(written) > limit {
                    self.core.borrow_mut().stats.roundtrip_timeouts += 1;
                    self.tel.count("ipc.supervisor.timeouts.roundtrip");
                    self.declare_fault("roundtrip timeout", "backend did not answer");
                }
            }
        }
    }
}

/// Installs the `backend` and `faultpoint` control handlers into the
/// session's dispatch table (the commands themselves are registered by
/// `wafe-core`; without a frontend they report "no backend attached").
pub fn install_controls(core: &Rc<RefCell<SupervisorCore>>, session: &mut WafeSession) {
    let c = core.clone();
    session.controls.borrow_mut().insert(
        "backend".into(),
        Box::new(move |argv| backend_control(&c, argv)),
    );
    let c = core.clone();
    session.controls.borrow_mut().insert(
        "faultpoint".into(),
        Box::new(move |argv| faultpoint_control(&c, argv)),
    );
}

fn backend_control(core: &Rc<RefCell<SupervisorCore>>, argv: &[String]) -> Result<String, String> {
    const USAGE: &str = "backend status|restart|kill|config ?key ?value??|queue";
    match argv.get(1).map(String::as_str) {
        Some("status") if argv.len() == 2 => Ok(wafe_tcl::list_join(&core.borrow().status_words())),
        Some("restart") if argv.len() == 2 => {
            core.borrow_mut().request_restart();
            Ok(String::new())
        }
        Some("kill") if argv.len() == 2 => {
            core.borrow_mut().request_kill();
            Ok(String::new())
        }
        Some("config") => match argv.len() {
            2 => {
                let core = core.borrow();
                let words: Vec<String> = CONFIG_KEYS
                    .iter()
                    .flat_map(|k| {
                        [
                            k.to_string(),
                            core.config.get(k).expect("every listed key resolves"),
                        ]
                    })
                    .collect();
                Ok(wafe_tcl::list_join(&words))
            }
            3 => core.borrow().config.get(&argv[2]).ok_or_else(|| {
                format!(
                    "unknown config key \"{}\": must be one of {}",
                    argv[2],
                    CONFIG_KEYS.join(", ")
                )
            }),
            4 => {
                core.borrow_mut().config.set(&argv[2], &argv[3])?;
                Ok(String::new())
            }
            _ => Err(format!("wrong # args: should be \"{USAGE}\"")),
        },
        Some("queue") if argv.len() == 2 => Ok(wafe_tcl::list_join(&core.borrow().queued_lines())),
        _ => Err(format!("wrong # args: should be \"{USAGE}\"")),
    }
}

fn faultpoint_control(
    core: &Rc<RefCell<SupervisorCore>>,
    argv: &[String],
) -> Result<String, String> {
    const USAGE: &str = "faultpoint set spec|clear|list";
    match argv.get(1).map(String::as_str) {
        Some("set") if argv.len() == 3 => {
            let plan = FaultPlan::parse(&argv[2])?;
            let n = plan.describe().len();
            core.borrow_mut().plan = Some(plan);
            Ok(n.to_string())
        }
        Some("clear") if argv.len() == 2 => {
            core.borrow_mut().plan = None;
            Ok(String::new())
        }
        Some("list") if argv.len() == 2 => Ok(core
            .borrow()
            .plan
            .as_ref()
            .map(|p| wafe_tcl::list_join(&p.describe()))
            .unwrap_or_default()),
        _ => Err(format!("wrong # args: should be \"{USAGE}\"")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = SupervisorConfig {
            backoff_base_ms: 100,
            backoff_max_ms: 1_000,
            ..SupervisorConfig::default()
        };
        assert_eq!(backoff_ms(&cfg, 1), 100);
        assert_eq!(backoff_ms(&cfg, 2), 200);
        assert_eq!(backoff_ms(&cfg, 3), 400);
        assert_eq!(backoff_ms(&cfg, 4), 800);
        assert_eq!(backoff_ms(&cfg, 5), 1_000, "capped");
        assert_eq!(backoff_ms(&cfg, 60), 1_000, "shift is clamped, no overflow");
    }

    #[test]
    fn config_roundtrips_through_tcl_keys() {
        let mut cfg = SupervisorConfig::default();
        for key in CONFIG_KEYS {
            assert!(cfg.get(key).is_some(), "{key} must be readable");
        }
        cfg.set("readTimeout", "250").unwrap();
        assert_eq!(cfg.read_timeout_ms, Some(250));
        cfg.set("readTimeout", "0").unwrap();
        assert_eq!(cfg.read_timeout_ms, None, "0 disables");
        cfg.set("retries", "7").unwrap();
        assert_eq!(cfg.max_restarts, 7);
        cfg.set("restartOnExit", "1").unwrap();
        assert!(cfg.restart_on_exit);
        assert!(cfg.set("nosuchknob", "1").is_err());
        assert!(cfg.set("retries", "many").is_err());
    }

    #[test]
    fn default_config_is_the_papers_trusting_frontend() {
        let cfg = SupervisorConfig::default();
        assert_eq!(cfg.read_timeout_ms, None);
        assert_eq!(cfg.roundtrip_timeout_ms, None);
        assert_eq!(cfg.max_restarts, 0);
        assert!(!cfg.restart_on_exit);
    }

    #[test]
    fn status_words_are_a_flat_even_list() {
        let core = SupervisorCore::new(SupervisorConfig::default(), None);
        let words = core.status_words();
        assert!(words.len() >= 8);
        assert!(words.len().is_multiple_of(2));
        assert_eq!(words[0], "state");
        assert_eq!(words[1], "running");
    }
}
