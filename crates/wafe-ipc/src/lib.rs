//! Wafe's frontend-mode communication.
//!
//! "A typical Wafe application consists of two parts, the frontend
//! (Wafe) and an application program, which typically run as separate
//! processes. The application program talks to the frontend via stdin.
//! Each output line from the application process starting with a certain
//! prefix character is interpreted as a Wafe (or pure Tcl) command."
//!
//! The crate splits the mechanism into two layers:
//!
//! * [`protocol::ProtocolEngine`] — the transport-independent protocol:
//!   `%`-prefixed lines are commands, other lines pass through, the 64 KB
//!   line limit, the mass-transfer channel accumulator and the queue of
//!   messages the GUI sends back to the application. Deterministic, used
//!   directly by tests and benchmarks.
//! * [`frontend::Frontend`] — the real-process transport: spawns the
//!   backend as a child (including the paper's `ln -s wafe xwafeApp`
//!   argv\[0\] naming scheme), wires the stdio pipes and the optional
//!   mass-transfer pipe (inherited by the child at a fixed fd, reported
//!   by `getChannel`), and multiplexes backend output with GUI events via
//!   `poll(2)` — which is what keeps the GUI responsive while the
//!   application is busy and buffers clicks ahead.

//! * [`supervisor::Supervisor`] — the reliability layer the paper lacks:
//!   read/round-trip timeouts, exponential-backoff restarts behind a
//!   circuit breaker, flood limits, bounded outbound queueing while the
//!   backend is down, and a deterministic [`fault::FaultPlan`]
//!   fault-injection substrate driving the chaos test suite.

pub mod codec;
pub mod fault;
pub mod frontend;
pub mod poll;
pub mod protocol;
pub mod supervisor;
pub(crate) mod sys;

pub use codec::{LineCodec, LineKind};
pub use fault::{FaultAction, FaultPlan, FAULTS_ENV_VAR, FAULT_POINTS};
pub use frontend::{backend_from_argv0, Frontend, FrontendConfig, SpawnSpec};
pub use poll::{
    is_fd_exhaustion, set_nonblocking, Interest, PollSet, Poller, Readiness, SimPoller, SysPoller,
};
pub use protocol::{
    is_command_line, LineAssembler, ProtocolEngine, DEFAULT_MAX_LINE, DEFAULT_PREFIX,
};
pub use supervisor::{BackendState, Supervisor, SupervisorConfig, SupervisorCore, SupervisorStats};
