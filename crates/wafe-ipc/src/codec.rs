//! The shared line codec of the `%`-prefixed protocol.
//!
//! Both transports that speak the frontend protocol — the duplex pipe
//! of frontend mode (`frontend.rs`/`supervisor.rs`) and the socket
//! connections of `wafe-serve` — frame the same byte stream the same
//! way: `\n`-terminated lines, a bounded per-line length with oversized
//! lines discarded (counted, the stream resynchronises at the next
//! newline), and a leading prefix character deciding command vs
//! passthrough. [`LineCodec`] packages that contract in one reusable
//! type so the two transports cannot drift; it is a thin composition of
//! [`LineAssembler`] (framing) and [`is_command_line`] (classification),
//! keeping the pipe protocol byte-identical to what it was when the
//! assembler lived alone.

use crate::protocol::{is_command_line, LineAssembler, DEFAULT_MAX_LINE, DEFAULT_PREFIX};

/// One decoded line with its protocol classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineKind {
    /// The line starts with the prefix character: a Wafe command (the
    /// payload still carries the prefix; `ProtocolEngine::handle_line`
    /// strips it).
    Command(String),
    /// Any other line: passed through untouched.
    Passthrough(String),
}

impl LineKind {
    /// The line text, whichever side of the classification it fell on.
    pub fn text(&self) -> &str {
        match self {
            LineKind::Command(s) | LineKind::Passthrough(s) => s,
        }
    }
}

/// Incremental byte-stream → classified-line codec with a bounded
/// buffer. The observable output is invariant under re-chunking of the
/// same byte stream (the property `wafe-prop` tests on the assembler
/// carry over unchanged).
pub struct LineCodec {
    assembler: LineAssembler,
    prefix: char,
}

impl Default for LineCodec {
    fn default() -> Self {
        LineCodec::new(DEFAULT_MAX_LINE)
    }
}

impl LineCodec {
    /// A codec with the default `%` prefix and the given line cap.
    pub fn new(max_line: usize) -> Self {
        LineCodec {
            assembler: LineAssembler::new(max_line),
            prefix: DEFAULT_PREFIX,
        }
    }

    /// A codec with a custom prefix character.
    pub fn with_prefix(max_line: usize, prefix: char) -> Self {
        LineCodec {
            assembler: LineAssembler::new(max_line),
            prefix,
        }
    }

    /// The command-prefix character this codec classifies with.
    pub fn prefix(&self) -> char {
        self.prefix
    }

    /// Feeds a chunk; returns the complete lines it finished, without
    /// their terminators (framing only — classification untouched).
    pub fn push(&mut self, bytes: &[u8]) -> Vec<String> {
        self.assembler.push(bytes)
    }

    /// Feeds a chunk; returns the completed lines classified as
    /// command or passthrough.
    pub fn decode(&mut self, bytes: &[u8]) -> Vec<LineKind> {
        self.assembler
            .push(bytes)
            .into_iter()
            .map(|line| {
                if is_command_line(&line, self.prefix) {
                    LineKind::Command(line)
                } else {
                    LineKind::Passthrough(line)
                }
            })
            .collect()
    }

    /// Encodes one outbound line: the wire form is the text plus a
    /// terminating newline (none added when already present). This is
    /// the exact write-side framing `ChildLink::write_line` has always
    /// used on the pipe.
    pub fn encode(line: &str) -> Vec<u8> {
        let mut out = Vec::with_capacity(line.len() + 1);
        out.extend_from_slice(line.as_bytes());
        if !line.ends_with('\n') {
            out.push(b'\n');
        }
        out
    }

    /// Bytes buffered without a terminating newline yet.
    pub fn pending(&self) -> usize {
        self.assembler.pending()
    }

    /// Discards any partial line (peer died mid-line).
    pub fn clear(&mut self) {
        self.assembler.clear();
    }

    /// Takes (and resets) the count of discarded over-length lines.
    pub fn take_overflows(&mut self) -> u64 {
        self.assembler.take_overflows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_classifies_and_reframes() {
        let mut c = LineCodec::default();
        assert_eq!(c.decode(b"%set x "), Vec::new());
        assert_eq!(c.pending(), 7);
        let got = c.decode(b"1\nplain\n%echo hi\n");
        assert_eq!(
            got,
            vec![
                LineKind::Command("%set x 1".into()),
                LineKind::Passthrough("plain".into()),
                LineKind::Command("%echo hi".into()),
            ]
        );
        assert_eq!(got[0].text(), "%set x 1");
    }

    #[test]
    fn chunking_invariance_carries_over() {
        // The same stream byte-at-a-time and in one chunk decode equal.
        let stream = b"%a\nplain\n%b\n";
        let mut whole = LineCodec::default();
        let all = whole.decode(stream);
        let mut dribble = LineCodec::default();
        let mut got = Vec::new();
        for b in stream {
            got.extend(dribble.decode(&[*b]));
        }
        assert_eq!(all, got);
    }

    #[test]
    fn encode_terminates_exactly_once() {
        assert_eq!(LineCodec::encode("%set x 1"), b"%set x 1\n");
        assert_eq!(LineCodec::encode("%set x 1\n"), b"%set x 1\n");
        assert_eq!(LineCodec::encode(""), b"\n");
    }

    #[test]
    fn oversize_lines_counted_like_the_assembler() {
        let mut c = LineCodec::new(4);
        assert_eq!(
            c.decode(b"123456789\nok\n"),
            vec![LineKind::Passthrough("ok".into())]
        );
        assert_eq!(c.take_overflows(), 1);
    }

    #[test]
    fn custom_prefix_classifies() {
        let mut c = LineCodec::with_prefix(1024, '#');
        let got = c.decode(b"#cmd\n%plain\n");
        assert_eq!(
            got,
            vec![
                LineKind::Command("#cmd".into()),
                LineKind::Passthrough("%plain".into()),
            ]
        );
        assert_eq!(c.prefix(), '#');
    }
}
