//! Minimal libc FFI surface for the frontend's pipe multiplexing.
//!
//! The crate needs exactly five syscall wrappers — `pipe`, `dup2`,
//! `close`, `poll`, `fcntl` — so it declares them directly instead of
//! pulling in the `libc` crate, keeping the workspace dependency-free
//! (it must build on network-less machines). Constants are the Linux
//! values; the poll flags and fcntl commands are identical across the
//! platforms Wafe targeted.

#![allow(non_camel_case_types)]

use std::os::raw::{c_int, c_short, c_ulong};

/// `nfds_t` from `poll(2)` — `unsigned long` on Linux.
pub type nfds_t = c_ulong;

/// One entry of the `poll(2)` fd set.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct pollfd {
    pub fd: c_int,
    pub events: c_short,
    pub revents: c_short,
}

/// There is data to read.
pub const POLLIN: c_short = 0x001;
/// Writing now will not block.
pub const POLLOUT: c_short = 0x004;
/// Error condition on the fd (revents only).
pub const POLLERR: c_short = 0x008;
/// Peer hung up (write end of the pipe closed).
pub const POLLHUP: c_short = 0x010;
/// Invalid request: fd not open (revents only).
pub const POLLNVAL: c_short = 0x020;

/// `errno` for "too many open files" (per-process limit).
pub const EMFILE: i32 = 24;
/// `errno` for "too many open files in system".
pub const ENFILE: i32 = 23;

/// `fcntl(2)`: get file status flags.
pub const F_GETFL: c_int = 3;
/// `fcntl(2)`: set file status flags.
pub const F_SETFL: c_int = 4;
/// Non-blocking I/O status flag.
pub const O_NONBLOCK: c_int = 0o4000;

extern "C" {
    pub fn pipe(fds: *mut c_int) -> c_int;
    pub fn dup2(oldfd: c_int, newfd: c_int) -> c_int;
    pub fn close(fd: c_int) -> c_int;
    pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
    pub fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
}
