//! A small regular-expression engine for `regexp` and `regsub`.
//!
//! Tcl 6.x shipped Henry Spencer's regexp package; this module
//! reimplements the same dialect: `^ $ . * + ? [] [^] () |` with up to
//! nine capturing groups, backtracking semantics, leftmost match with
//! greedy quantifiers.

/// A parsed regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    root: Node,
    /// Number of capturing groups.
    pub groups: usize,
    nocase: bool,
}

#[derive(Debug, Clone)]
enum Node {
    /// Sequence of nodes.
    Seq(Vec<Node>),
    /// Alternation.
    Alt(Vec<Node>),
    /// A literal character.
    Char(char),
    /// Any character (`.`).
    Any,
    /// Character class; bool = negated.
    Class(Vec<(char, char)>, bool),
    /// Start anchor.
    Bol,
    /// End anchor.
    Eol,
    /// Greedy repetition: (node, min, max).
    Repeat(Box<Node>, usize, Option<usize>),
    /// Capturing group.
    Group(Box<Node>, usize),
}

/// A successful match: byte-free char-index spans, `spans[0]` is the
/// whole match, `spans[i]` the i-th group (None if unmatched).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match {
    /// Char-index ranges for the match and each group.
    pub spans: Vec<Option<(usize, usize)>>,
}

impl Regex {
    /// Compiles a pattern.
    pub fn compile(pattern: &str, nocase: bool) -> Result<Regex, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut p = Parser {
            chars: &chars,
            pos: 0,
            groups: 0,
        };
        let root = p.parse_alt()?;
        if p.pos != p.chars.len() {
            return Err(format!("couldn't parse pattern near position {}", p.pos));
        }
        Ok(Regex {
            root,
            groups: p.groups,
            nocase,
        })
    }

    /// Finds the leftmost match in `text`.
    pub fn find(&self, text: &str) -> Option<Match> {
        let chars: Vec<char> = if self.nocase {
            text.chars().flat_map(|c| c.to_lowercase()).collect()
        } else {
            text.chars().collect()
        };
        for start in 0..=chars.len() {
            let mut caps = vec![None; self.groups + 1];
            if let Some(end) = self.match_node(&self.root, &chars, start, &mut caps) {
                caps[0] = Some((start, end));
                return Some(Match { spans: caps });
            }
        }
        None
    }

    /// True if the pattern matches anywhere in `text`.
    pub fn is_match(&self, text: &str) -> bool {
        self.find(text).is_some()
    }

    fn match_node(
        &self,
        node: &Node,
        t: &[char],
        pos: usize,
        caps: &mut Vec<Option<(usize, usize)>>,
    ) -> Option<usize> {
        match node {
            Node::Seq(items) => self.match_seq(items, t, pos, caps),
            Node::Alt(branches) => {
                for b in branches {
                    let saved = caps.clone();
                    if let Some(end) = self.match_node(b, t, pos, caps) {
                        return Some(end);
                    }
                    *caps = saved;
                }
                None
            }
            Node::Char(c) => {
                let c = if self.nocase {
                    c.to_lowercase().next().unwrap_or(*c)
                } else {
                    *c
                };
                if pos < t.len() && t[pos] == c {
                    Some(pos + 1)
                } else {
                    None
                }
            }
            Node::Any => {
                if pos < t.len() {
                    Some(pos + 1)
                } else {
                    None
                }
            }
            Node::Class(ranges, negated) => {
                if pos >= t.len() {
                    return None;
                }
                let c = t[pos];
                let inside = ranges.iter().any(|(lo, hi)| *lo <= c && c <= *hi);
                if inside != *negated {
                    Some(pos + 1)
                } else {
                    None
                }
            }
            Node::Bol => {
                if pos == 0 {
                    Some(pos)
                } else {
                    None
                }
            }
            Node::Eol => {
                if pos == t.len() {
                    Some(pos)
                } else {
                    None
                }
            }
            Node::Repeat(inner, min, max) => {
                self.match_repeat(inner, *min, *max, &[], t, pos, caps)
            }
            Node::Group(inner, idx) => {
                let end = self.match_node(inner, t, pos, caps)?;
                caps[*idx] = Some((pos, end));
                Some(end)
            }
        }
    }

    fn match_seq(
        &self,
        items: &[Node],
        t: &[char],
        pos: usize,
        caps: &mut Vec<Option<(usize, usize)>>,
    ) -> Option<usize> {
        match items.split_first() {
            None => Some(pos),
            Some((Node::Repeat(inner, min, max), rest)) => {
                self.match_repeat(inner, *min, *max, rest, t, pos, caps)
            }
            Some((first, rest)) => {
                // Alternation inside a sequence needs backtracking over
                // the branch choice.
                if let Node::Alt(branches) = first {
                    for b in branches {
                        let saved = caps.clone();
                        if let Some(mid) = self.match_node(b, t, pos, caps) {
                            if let Some(end) = self.match_seq(rest, t, mid, caps) {
                                return Some(end);
                            }
                        }
                        *caps = saved;
                    }
                    return None;
                }
                if let Node::Group(inner, idx) = first {
                    // Groups containing alternations/repeats also need
                    // the continuation threaded through.
                    let saved = caps.clone();
                    if let Some(end) = self.match_group_then(inner, *idx, rest, t, pos, caps) {
                        return Some(end);
                    }
                    *caps = saved;
                    return None;
                }
                let mid = self.match_node(first, t, pos, caps)?;
                self.match_seq(rest, t, mid, caps)
            }
        }
    }

    fn match_group_then(
        &self,
        inner: &Node,
        idx: usize,
        rest: &[Node],
        t: &[char],
        pos: usize,
        caps: &mut Vec<Option<(usize, usize)>>,
    ) -> Option<usize> {
        // Enumerate the group's possible ends via alternation branches.
        if let Node::Alt(branches) = inner {
            for b in branches {
                let saved = caps.clone();
                if let Some(mid) = self.match_node(b, t, pos, caps) {
                    caps[idx] = Some((pos, mid));
                    if let Some(end) = self.match_seq(rest, t, mid, caps) {
                        return Some(end);
                    }
                }
                *caps = saved;
            }
            None
        } else {
            let mid = self.match_node(inner, t, pos, caps)?;
            caps[idx] = Some((pos, mid));
            self.match_seq(rest, t, mid, caps)
        }
    }

    /// Greedy repetition with backtracking into the continuation `rest`.
    #[allow(clippy::too_many_arguments)]
    fn match_repeat(
        &self,
        inner: &Node,
        min: usize,
        max: Option<usize>,
        rest: &[Node],
        t: &[char],
        pos: usize,
        caps: &mut Vec<Option<(usize, usize)>>,
    ) -> Option<usize> {
        // Collect all reachable end positions greedily.
        let mut ends = vec![pos];
        let mut cur = pos;
        loop {
            if let Some(m) = max {
                if ends.len() > m {
                    break;
                }
            }
            match self.match_node(inner, t, cur, caps) {
                Some(next) if next > cur || ends.len() <= min => {
                    if next == cur {
                        break; // Zero-width repetition: stop.
                    }
                    ends.push(next);
                    cur = next;
                }
                _ => break,
            }
        }
        // Try longest first (greedy), at least `min` repetitions.
        while ends.len() > min {
            let end = *ends.last().unwrap();
            let saved = caps.clone();
            if let Some(fin) = self.match_seq(rest, t, end, caps) {
                return Some(fin);
            }
            *caps = saved;
            ends.pop();
        }
        if ends.len() > min {
            let end = ends[min];
            return self.match_seq(rest, t, end, caps);
        }
        None
    }
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
    groups: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn parse_alt(&mut self) -> Result<Node, String> {
        let mut branches = vec![self.parse_seq()?];
        while self.peek() == Some('|') {
            self.pos += 1;
            branches.push(self.parse_seq()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().unwrap())
        } else {
            Ok(Node::Alt(branches))
        }
    }

    fn parse_seq(&mut self) -> Result<Node, String> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_piece()?);
        }
        Ok(Node::Seq(items))
    }

    fn parse_piece(&mut self) -> Result<Node, String> {
        let atom = self.parse_atom()?;
        match self.peek() {
            Some('*') => {
                self.pos += 1;
                Ok(Node::Repeat(Box::new(atom), 0, None))
            }
            Some('+') => {
                self.pos += 1;
                Ok(Node::Repeat(Box::new(atom), 1, None))
            }
            Some('?') => {
                self.pos += 1;
                Ok(Node::Repeat(Box::new(atom), 0, Some(1)))
            }
            _ => Ok(atom),
        }
    }

    fn parse_atom(&mut self) -> Result<Node, String> {
        let c = self.peek().ok_or("unexpected end of pattern")?;
        self.pos += 1;
        match c {
            '(' => {
                self.groups += 1;
                let idx = self.groups;
                let inner = self.parse_alt()?;
                if self.peek() != Some(')') {
                    return Err("unmatched (".into());
                }
                self.pos += 1;
                Ok(Node::Group(Box::new(inner), idx))
            }
            '[' => self.parse_class(),
            '.' => Ok(Node::Any),
            '^' => Ok(Node::Bol),
            '$' => Ok(Node::Eol),
            '\\' => {
                let e = self.peek().ok_or("trailing backslash")?;
                self.pos += 1;
                Ok(Node::Char(match e {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                }))
            }
            '*' | '+' | '?' => Err(format!("quantifier '{c}' with nothing to repeat")),
            other => Ok(Node::Char(other)),
        }
    }

    fn parse_class(&mut self) -> Result<Node, String> {
        let negated = self.peek() == Some('^');
        if negated {
            self.pos += 1;
        }
        let mut ranges = Vec::new();
        let mut first = true;
        loop {
            let c = self.peek().ok_or("unmatched [")?;
            if c == ']' && !first {
                self.pos += 1;
                break;
            }
            first = false;
            self.pos += 1;
            let lo = if c == '\\' {
                let e = self.peek().ok_or("trailing backslash in class")?;
                self.pos += 1;
                e
            } else {
                c
            };
            if self.peek() == Some('-')
                && self
                    .chars
                    .get(self.pos + 1)
                    .map(|&c| c != ']')
                    .unwrap_or(false)
            {
                self.pos += 1;
                let hi = self.peek().ok_or("unterminated range")?;
                self.pos += 1;
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        Ok(Node::Class(ranges, negated))
    }
}

/// Expands a `regsub` substitution spec: `&` is the whole match,
/// `\1`..`\9` are groups, `\&` and `\\` are literals.
pub fn expand_subspec(spec: &str, text: &[char], m: &Match) -> String {
    let mut out = String::new();
    let mut it = spec.chars().peekable();
    let span_text = |s: Option<(usize, usize)>| -> String {
        match s {
            Some((a, b)) => text[a..b].iter().collect(),
            None => String::new(),
        }
    };
    while let Some(c) = it.next() {
        match c {
            '&' => out.push_str(&span_text(m.spans[0])),
            '\\' => match it.next() {
                Some(d @ '1'..='9') => {
                    let idx = d.to_digit(10).unwrap() as usize;
                    if idx < m.spans.len() {
                        out.push_str(&span_text(m.spans[idx]));
                    }
                }
                Some('0') => out.push_str(&span_text(m.spans[0])),
                Some(other) => out.push(other),
                None => out.push('\\'),
            },
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans(pattern: &str, text: &str) -> Option<Vec<Option<(usize, usize)>>> {
        Regex::compile(pattern, false)
            .unwrap()
            .find(text)
            .map(|m| m.spans)
    }

    fn matched(pattern: &str, text: &str) -> bool {
        Regex::compile(pattern, false).unwrap().is_match(text)
    }

    #[test]
    fn literals_and_any() {
        assert!(matched("abc", "xxabcxx"));
        assert!(!matched("abc", "abd"));
        assert!(matched("a.c", "axc"));
        assert!(!matched("a.c", "ac"));
    }

    #[test]
    fn anchors() {
        assert!(matched("^abc", "abcdef"));
        assert!(!matched("^bc", "abc"));
        assert!(matched("def$", "abcdef"));
        assert!(!matched("de$", "abcdef"));
        assert!(matched("^$", ""));
        assert!(!matched("^$", "x"));
    }

    #[test]
    fn quantifiers() {
        assert!(matched("ab*c", "ac"));
        assert!(matched("ab*c", "abbbc"));
        assert!(matched("ab+c", "abc"));
        assert!(!matched("ab+c", "ac"));
        assert!(matched("ab?c", "ac"));
        assert!(matched("ab?c", "abc"));
        assert!(!matched("ab?c", "abbc"));
    }

    #[test]
    fn greedy_with_backtracking() {
        // `.*c` must backtrack to let the final c match.
        let s = spans(".*c", "abcabc").unwrap();
        assert_eq!(s[0], Some((0, 6)));
        let s = spans("a.*b", "aXbYb").unwrap();
        assert_eq!(s[0], Some((0, 5)));
    }

    #[test]
    fn classes() {
        assert!(matched("[abc]+", "cab"));
        assert!(!matched("[abc]+", "xyz"));
        assert!(matched("[a-z0-9]+", "abc123"));
        assert!(matched("[^0-9]+", "abc"));
        assert!(!matched("^[^0-9]+$", "ab1c"));
        assert!(matched("[]]", "]"));
        assert!(matched("a[-x]b", "a-b"));
    }

    #[test]
    fn alternation() {
        assert!(matched("cat|dog", "hotdog"));
        assert!(matched("^(cat|dog)$", "cat"));
        assert!(!matched("^(cat|dog)$", "cow"));
        let s = spans("(a+|b+)c", "bbbc").unwrap();
        assert_eq!(s[1], Some((0, 3)));
    }

    #[test]
    fn groups_capture() {
        let s = spans("(a+)(b+)", "xaabbby").unwrap();
        assert_eq!(s[0], Some((1, 6)));
        assert_eq!(s[1], Some((1, 3)));
        assert_eq!(s[2], Some((3, 6)));
    }

    #[test]
    fn nested_groups() {
        let s = spans("((a|b)+)c", "ababc").unwrap();
        assert_eq!(s[0], Some((0, 5)));
        assert_eq!(s[1], Some((0, 4)));
    }

    #[test]
    fn leftmost_match_wins() {
        let s = spans("a+", "xxaaayaa").unwrap();
        assert_eq!(s[0], Some((2, 5)));
    }

    #[test]
    fn nocase() {
        let r = Regex::compile("hello", true).unwrap();
        assert!(r.is_match("say HELLO there"));
        let r = Regex::compile("[a-z]+", true).unwrap();
        assert!(r.is_match("ABC"));
    }

    #[test]
    fn escapes() {
        assert!(matched("a\\.b", "a.b"));
        assert!(!matched("a\\.b", "axb"));
        assert!(matched("a\\*", "a*"));
        assert!(matched("\\\\", "\\"));
    }

    #[test]
    fn compile_errors() {
        assert!(Regex::compile("(", false).is_err());
        assert!(Regex::compile("[abc", false).is_err());
        assert!(Regex::compile("*x", false).is_err());
        assert!(Regex::compile("a)", false).is_err());
        assert!(Regex::compile("a\\", false).is_err());
    }

    #[test]
    fn subspec_expansion() {
        let text: Vec<char> = "hello world".chars().collect();
        let m = Regex::compile("(w[a-z]+)", false)
            .unwrap()
            .find("hello world")
            .unwrap();
        assert_eq!(expand_subspec("<&>", &text, &m), "<world>");
        assert_eq!(expand_subspec("[\\1]", &text, &m), "[world]");
        assert_eq!(expand_subspec("\\&", &text, &m), "&");
        assert_eq!(expand_subspec("\\\\", &text, &m), "\\");
    }

    #[test]
    fn zero_width_star_terminates() {
        // (x?)* style patterns must not loop forever.
        assert!(matched("(x?)*y", "y"));
        // A dangling second quantifier is a compile error in this dialect.
        assert!(Regex::compile("a**", false).is_err());
    }
}
