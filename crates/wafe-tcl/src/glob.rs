//! Glob-style pattern matching (`Tcl_StringMatch`).
//!
//! Used by `string match`, `lsearch`, `switch -glob`, `info` queries, and
//! shared with the Xrm resource database in the toolkit layers.

/// Matches `s` against a glob `pattern`.
///
/// Supported metacharacters: `*` (any run, including empty), `?` (any one
/// character), `[...]` (character set with ranges, leading `^` negates)
/// and `\x` (literal `x`).
///
/// # Examples
///
/// ```
/// use wafe_tcl::glob::glob_match;
/// assert!(glob_match("*.tcl", "hello.tcl"));
/// assert!(glob_match("a[0-9]c", "a7c"));
/// assert!(!glob_match("a?c", "ac"));
/// ```
pub fn glob_match(pattern: &str, s: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = s.chars().collect();
    match_at(&p, 0, &t, 0)
}

fn match_at(p: &[char], mut pi: usize, t: &[char], mut ti: usize) -> bool {
    while pi < p.len() {
        match p[pi] {
            '*' => {
                // Collapse consecutive stars.
                while pi < p.len() && p[pi] == '*' {
                    pi += 1;
                }
                if pi == p.len() {
                    return true;
                }
                while ti <= t.len() {
                    if match_at(p, pi, t, ti) {
                        return true;
                    }
                    ti += 1;
                }
                return false;
            }
            '?' => {
                if ti >= t.len() {
                    return false;
                }
                ti += 1;
                pi += 1;
            }
            '[' => {
                if ti >= t.len() {
                    return false;
                }
                let (matched, next) = match_set(p, pi, t[ti]);
                if !matched {
                    return false;
                }
                pi = next;
                ti += 1;
            }
            '\\' => {
                if pi + 1 >= p.len() {
                    return ti < t.len() && t[ti] == '\\' && ti + 1 == t.len() && pi + 1 == p.len();
                }
                if ti >= t.len() || t[ti] != p[pi + 1] {
                    return false;
                }
                pi += 2;
                ti += 1;
            }
            c => {
                if ti >= t.len() || t[ti] != c {
                    return false;
                }
                pi += 1;
                ti += 1;
            }
        }
    }
    ti == t.len()
}

/// Matches one character against a `[...]` set starting at `p[pi]` (the
/// `[`). Returns (matched, index just past the closing `]`).
fn match_set(p: &[char], pi: usize, c: char) -> (bool, usize) {
    let mut i = pi + 1;
    let negate = i < p.len() && (p[i] == '^' || p[i] == '!');
    if negate {
        i += 1;
    }
    let mut matched = false;
    let mut first = true;
    while i < p.len() && (p[i] != ']' || first) {
        first = false;
        let lo = p[i];
        if i + 2 < p.len() && p[i + 1] == '-' && p[i + 2] != ']' {
            let hi = p[i + 2];
            if lo <= c && c <= hi {
                matched = true;
            }
            i += 3;
        } else {
            if lo == c {
                matched = true;
            }
            i += 1;
        }
    }
    let end = if i < p.len() { i + 1 } else { i };
    (matched != negate, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        assert!(glob_match("abc", "abc"));
        assert!(!glob_match("abc", "abd"));
        assert!(!glob_match("abc", "ab"));
        assert!(!glob_match("ab", "abc"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "a"));
    }

    #[test]
    fn star() {
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("a*c", "abbbc"));
        assert!(glob_match("a*c", "ac"));
        assert!(glob_match("*.tcl", "x.tcl"));
        assert!(!glob_match("*.tcl", "x.tc"));
        assert!(glob_match("a**b", "ab"));
        assert!(glob_match("*a*b*", "xxaxxbxx"));
    }

    #[test]
    fn question() {
        assert!(glob_match("a?c", "abc"));
        assert!(!glob_match("a?c", "ac"));
        assert!(!glob_match("?", ""));
    }

    #[test]
    fn sets() {
        assert!(glob_match("[abc]", "b"));
        assert!(!glob_match("[abc]", "d"));
        assert!(glob_match("[a-z]x", "qx"));
        assert!(!glob_match("[a-z]", "A"));
        assert!(glob_match("[^abc]", "d"));
        assert!(!glob_match("[^abc]", "a"));
        assert!(glob_match("x[0-9][0-9]", "x42"));
    }

    #[test]
    fn escapes() {
        assert!(glob_match("a\\*c", "a*c"));
        assert!(!glob_match("a\\*c", "abc"));
        assert!(glob_match("\\[x\\]", "[x]"));
    }

    #[test]
    fn wafe_resource_patterns() {
        // The flavour of pattern the Xrm layer leans on.
        assert!(glob_match("*Font", "topLevel.form.label.Font"));
        assert!(glob_match(
            "*b&h-lucida-medium-r*14*",
            "-b&h-lucida-medium-r-normal--14-"
        ));
    }
}
