//! Tcl list parsing and construction.
//!
//! A Tcl list is a string whose elements are separated by white space;
//! elements containing special characters are wrapped in braces (or, when
//! braces cannot nest correctly, backslash-quoted). These routines are the
//! analogues of `Tcl_SplitList` and `Tcl_Merge`.

use crate::error::{TclError, TclResult};

/// Splits a Tcl list string into its elements.
///
/// Follows `Tcl_SplitList` semantics: elements are delimited by white
/// space; `{...}` groups an element verbatim (braces nest); `"..."` groups
/// an element with backslash processing; backslashes escape the following
/// character in bare elements.
///
/// # Examples
///
/// ```
/// use wafe_tcl::parse_list;
/// let v = parse_list("a {b c} d").unwrap();
/// assert_eq!(v, vec!["a", "b c", "d"]);
/// ```
pub fn parse_list(s: &str) -> TclResult<Vec<String>> {
    let b: Vec<char> = s.chars().collect();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < b.len() {
        while i < b.len() && b[i].is_whitespace() {
            i += 1;
        }
        if i >= b.len() {
            break;
        }
        match b[i] {
            '{' => {
                let start = i + 1;
                let mut depth = 1usize;
                let mut j = start;
                while j < b.len() {
                    match b[j] {
                        '\\' => j += 1,
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if depth != 0 {
                    return Err(TclError::error("unmatched open brace in list"));
                }
                out.push(b[start..j].iter().collect());
                i = j + 1;
                // After a close brace the element must end.
                if i < b.len() && !b[i].is_whitespace() {
                    return Err(TclError::error(
                        "list element in braces followed by non-space character",
                    ));
                }
            }
            '"' => {
                let mut j = i + 1;
                let mut elem = String::new();
                let mut closed = false;
                while j < b.len() {
                    match b[j] {
                        '\\' if j + 1 < b.len() => {
                            elem.push(backslash_char(b[j + 1]));
                            j += 2;
                        }
                        '"' => {
                            closed = true;
                            j += 1;
                            break;
                        }
                        c => {
                            elem.push(c);
                            j += 1;
                        }
                    }
                }
                if !closed {
                    return Err(TclError::error("unmatched open quote in list"));
                }
                out.push(elem);
                i = j;
            }
            _ => {
                let mut elem = String::new();
                while i < b.len() && !b[i].is_whitespace() {
                    if b[i] == '\\' && i + 1 < b.len() {
                        elem.push(backslash_char(b[i + 1]));
                        i += 2;
                    } else {
                        elem.push(b[i]);
                        i += 1;
                    }
                }
                out.push(elem);
            }
        }
    }
    Ok(out)
}

fn backslash_char(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        'b' => '\u{8}',
        'f' => '\u{c}',
        'v' => '\u{b}',
        other => other,
    }
}

/// Quotes a single element so that [`parse_list`] recovers it verbatim.
///
/// Mirrors `Tcl_ConvertElement`: the empty string becomes `{}`; elements
/// containing white space or list metacharacters are braced when their
/// braces balance, otherwise backslash-quoted.
pub fn list_quote(elem: &str) -> String {
    if elem.is_empty() {
        return "{}".into();
    }
    let needs_quoting = elem
        .chars()
        .any(|c| c.is_whitespace() || matches!(c, '{' | '}' | '[' | ']' | '$' | '"' | '\\' | ';'));
    if !needs_quoting {
        return elem.to_string();
    }
    if braces_balance(elem) && !elem.ends_with('\\') {
        return format!("{{{elem}}}");
    }
    // Fall back to backslash quoting.
    let mut out = String::with_capacity(elem.len() * 2);
    for c in elem.chars() {
        match c {
            '{' | '}' | '[' | ']' | '$' | '"' | '\\' | ';' | ' ' => {
                out.push('\\');
                out.push(c);
            }
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{b}' => out.push_str("\\v"),
            '\u{c}' => out.push_str("\\f"),
            c if c.is_whitespace() => {
                // Exotic Unicode whitespace: a backslash keeps it literal.
                out.push('\\');
                out.push(c);
            }
            _ => out.push(c),
        }
    }
    out
}

fn braces_balance(s: &str) -> bool {
    let mut depth = 0i64;
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                let _ = chars.next();
            }
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0
}

/// Joins elements into a Tcl list string (the analogue of `Tcl_Merge`).
///
/// # Examples
///
/// ```
/// use wafe_tcl::{list_join, parse_list};
/// let l = list_join(&["a".to_string(), "b c".to_string()]);
/// assert_eq!(parse_list(&l).unwrap(), vec!["a", "b c"]);
/// ```
pub fn list_join(elems: &[String]) -> String {
    elems
        .iter()
        .map(|e| list_quote(e))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Appends one element to a Tcl list string in place.
pub fn list_append(list: &mut String, elem: &str) {
    if !list.is_empty() {
        list.push(' ');
    }
    list.push_str(&list_quote(elem));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_split() {
        assert_eq!(parse_list("a b c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(parse_list("").unwrap(), Vec::<String>::new());
        assert_eq!(parse_list("   ").unwrap(), Vec::<String>::new());
    }

    #[test]
    fn braced_elements() {
        assert_eq!(parse_list("a {b c} d").unwrap(), vec!["a", "b c", "d"]);
        assert_eq!(parse_list("{a {b c}}").unwrap(), vec!["a {b c}"]);
        assert_eq!(parse_list("{}").unwrap(), vec![""]);
    }

    #[test]
    fn quoted_elements() {
        assert_eq!(parse_list("\"a b\" c").unwrap(), vec!["a b", "c"]);
        assert_eq!(parse_list("\"a\\tb\"").unwrap(), vec!["a\tb"]);
    }

    #[test]
    fn backslash_in_bare_element() {
        assert_eq!(parse_list("a\\ b").unwrap(), vec!["a b"]);
    }

    #[test]
    fn unbalanced_brace_is_error() {
        assert!(parse_list("{a").is_err());
        assert!(parse_list("\"a").is_err());
        assert!(parse_list("{a}b").is_err());
    }

    #[test]
    fn quoting_roundtrip() {
        for elem in [
            "plain",
            "two words",
            "",
            "{",
            "}",
            "a{b",
            "has\"quote",
            "back\\slash",
            "end\\",
            "a\nb",
            "semi;colon",
            "$dollar",
            "[bracket]",
        ] {
            let q = list_quote(elem);
            let parsed = parse_list(&q).unwrap();
            assert_eq!(
                parsed,
                vec![elem.to_string()],
                "quoting of {elem:?} as {q:?}"
            );
        }
    }

    #[test]
    fn join_roundtrip() {
        let elems: Vec<String> = vec!["a".into(), "b c".into(), "".into(), "{d".into()];
        let joined = list_join(&elems);
        assert_eq!(parse_list(&joined).unwrap(), elems);
    }

    #[test]
    fn append_builds_list() {
        let mut l = String::new();
        list_append(&mut l, "a");
        list_append(&mut l, "b c");
        assert_eq!(parse_list(&l).unwrap(), vec!["a", "b c"]);
    }
}
