//! Bytecode compiler and VM: the Tcl 8.0-style execution layer.
//!
//! [`bytecode_for`] lowers a [`CompiledScript`] to a flat instruction
//! stream over a `Vec<Value>` operand stack, cached on the script itself
//! (shared by the parse cache, `Value` script reps and proc bodies, so a
//! body compiles once no matter how it is reached). The compiler inlines
//! a small set of special forms — `set incr expr if while for foreach
//! break continue` — turning loops into jumps and `expr` trees into
//! arithmetic opcodes, and lowers everything else to the generic
//! substitute-and-invoke sequence the tree-walker performs.
//!
//! Two rules keep the layer safe:
//!
//! * **Never wrong, just less inlined.** A special form is inlined only
//!   when its structure is fully literal *and* the command name still
//!   resolves to the pristine built-in ([`Interp::bc_special_pristine`]);
//!   otherwise the command lowers to a generic invoke of whatever is
//!   bound at run time. Rebinding one of the inlined names bumps
//!   `Interp::bc_epoch`, so already-compiled scripts recompile instead of
//!   bypassing the new binding.
//! * **Decline, don't guess.** A script the compiler cannot express
//!   (instruction budget exceeded) is marked uncompilable and every
//!   execution falls back to the tree-walker — identical results, counted
//!   in [`BcStats::fallbacks`].
//!
//! Two execution-level designs carry the performance:
//!
//! * **A numeric scratch stack.** `expr` sequences run on a separate
//!   `Vec<expr::Value>` — plain `Int`/`Dbl` machine values, exactly the
//!   representation the tree-walking evaluator threads through
//!   `eval_node` — so arithmetic intermediates never allocate a heap
//!   `Value`. Only the final result crosses back to the main stack
//!   (`NToValue`), the same boundary conversion `eval_expr_value`
//!   performs, which also makes non-finite doubles behave identically.
//! * **A per-execution variable cache with deferred writes.** Scalar
//!   reads and writes go through a cache indexed by the compiled name
//!   pool, skipping the name-hashing of the frame map on every loop
//!   iteration. The first touch of a name goes through the frame (so
//!   "no such variable"/"variable is array" errors surface exactly
//!   where the tree-walker raises them); once a slot is proven scalar,
//!   writes accumulate in the cache and are *flushed* before any
//!   instruction through which other code could observe them — generic
//!   invokes, nested evals, array operations — and when execution ends.
//!   After such an instruction returns, the cache is dropped entirely
//!   (a *barrier*: the invoked code may have written variables or
//!   switched frames). The cache is bypassed while the active frame
//!   holds `global`/`upvar` links (two names could alias one variable)
//!   or any write trace is registered (trace scripts must fire on every
//!   write, in order, and may touch anything).
//!
//! `break`/`continue` remain the `TclError::Break`/`Continue` completion
//! codes. The VM keeps a side table of [`LoopRange`]s; when an
//! instruction inside a loop body raises one, the operand and iterator
//! stacks are truncated to the loop's entry depths and control jumps to
//! the break/continue target. Outside any range the code propagates to
//! the caller exactly as the tree-walker would (so `catch`, proc frames
//! and guard expressions behave identically).

use std::rc::Rc;

use crate::compile::{CompiledCommand, CompiledScript, Token};
use crate::error::{TclError, TclResult};
use crate::expr::{
    coerce, coerce_value, eval_binop, eval_func, eval_unop, into_tcl_value, prepare_expr, BinOp,
    Node, PreparedExpr, UnOp, Value as EValue,
};
use crate::interp::{Interp, Prepared, BC_SPECIAL_NAMES};
use crate::list::parse_list;
use crate::value::Value;

/// The per-script compilation budget; larger scripts tree-walk.
const MAX_CODE: usize = 1 << 16;
/// Scripts nested deeper than this (bracket substitutions, loop bodies)
/// stop inlining and run through an `EvalScript` escape instead.
const MAX_INLINE: u32 = 64;
/// `consts[EMPTY]` is always the shared empty-string value.
const EMPTY: u32 = 0;
/// Marker for "scalar variable" in [`Instr::IncrVar`].
const NO_ELEM: u32 = u32::MAX;

/// The bytecode cache slot carried by every [`CompiledScript`].
#[derive(Debug, Clone, Default)]
pub(crate) enum BcSlot {
    /// Not yet attempted.
    #[default]
    Unknown,
    /// The compiler declined (budget); sticky — structure cannot change.
    Uncompilable,
    /// Compiled at the given [`Interp::bc_epoch`]; stale stamps recompile.
    Ready { epoch: u64, code: Rc<ByteCode> },
}

/// One VM instruction. Operands index the pools in [`ByteCode`].
/// `N`-prefixed instructions work the numeric scratch stack (the `expr`
/// domain); the rest work the main `Value` stack.
#[derive(Debug, Clone, Copy)]
enum Instr {
    /// Push `consts[k]` (a shared `Value`: cached reps accumulate across
    /// iterations exactly like the tree-walker's shared literal tokens).
    PushConst(u32),
    /// Discard the top of stack (between commands of a script).
    Pop,
    /// Push the value of scalar `names[n]`.
    LoadVar(u32),
    /// Push the value of `names[n](names[e])`.
    LoadElem(u32, u32),
    /// Pop `k` parts, concatenate their strings into an element index,
    /// push the value of `names[n](index)`.
    LoadElemDyn(u32, u32),
    /// Pop `k` parts, push their string concatenation (compound words).
    Concat(u32),
    /// Pop a value, assign scalar `names[n]`, push the value back
    /// (`set`'s result).
    StoreVar(u32),
    /// Peephole-fused `StoreVar` + `Pop`: assign without pushing the
    /// discarded result (a `set` in statement position).
    StoreVarPop(u32),
    /// Pop a value, assign `names[n](names[e])`, push it back.
    StoreElem(u32, u32),
    /// `incr` fast path: add the immediate to `names[n]` (scalar when the
    /// element slot is `NO_ELEM`, else `names[n](names[e])`), push the new
    /// value.
    IncrVar(u32, u32, i64),
    /// Peephole-fused `IncrVar` + `Pop` (an `incr` in statement position).
    IncrVarPop(u32, u32, i64),
    /// Pop `argc` words (command name first), dispatch through
    /// [`Interp::invoke`] — the generic path every non-inlined command
    /// takes — and push the result. Barrier.
    Invoke(u32),
    /// Evaluate `scripts[s]` (nested-depth accounting included) and push
    /// its result: the escape for over-deep inlining. Barrier.
    EvalScript(u32),
    /// Unconditional jump.
    Jump(u32),
    /// Raise `TclError::Break` (unwound by the enclosing loop range).
    Break,
    /// Raise `TclError::Continue`.
    Continue,
    /// Pop the list value, parse it, push an iterator state.
    ForeachInit,
    /// Assign the next round of `foreach[i]`'s variables; when the list
    /// is exhausted pop the iterator and jump to the end target.
    ForeachStep(u32, u32),
    /// Push `nums[k]` onto the numeric stack.
    NPushNum(u32),
    /// Push the coerced value of scalar `names[n]` onto the numeric
    /// stack (the `$var` operand of an expression).
    NLoadVar(u32),
    /// Peephole-fused pair of adjacent `NLoadVar`s (both operands of a
    /// comparison like `$n % $d == 0` in one dispatch).
    NLoadVar2(u32, u32),
    /// `$name(raw)` inside `expr`: substitute `names[r]` once for the
    /// element index, push the coerced element of `names[n]`.
    NElem(u32, u32),
    /// Evaluate `names[t]` as a script through [`Interp::eval`] — the
    /// text path the tree-walker uses for `[...]` inside `expr` — and
    /// push its coerced result. Barrier.
    NEvalText(u32),
    /// Pop two numeric operands, apply the binary operator, push.
    NBin(BinOp),
    /// Peephole-fused `NPushNum` + `NBin`: apply the operator with
    /// `nums[k]` as the right operand (`$i * 3`, `$n % 2`).
    NBinNum(BinOp, u32),
    /// Peephole-fused `NBin` + `NJumpIfFalse`: apply the operator and
    /// branch on the result without a round-trip through the stack (the
    /// closing compare of every loop guard).
    NBinJumpIfFalse(BinOp, u32),
    /// Peephole-fused `NBinNum` + `NJumpIfFalse` (`$i < 1000` guards in
    /// a single dispatch after the load).
    NBinNumJumpIfFalse(BinOp, u32, u32),
    /// Pop one numeric operand, apply the unary operator, push.
    NUn(UnOp),
    /// Pop, push 1/0 for its truthiness (`&&`/`||` results).
    NTruth,
    /// Pop `argc` numeric operands, call math function `names[n]`, push.
    NCallFunc(u32, u32),
    /// Pop a numeric operand, jump when false (guards and `&&`).
    NJumpIfFalse(u32),
    /// Pop a numeric operand, jump when true (`||`).
    NJumpIfTrue(u32),
    /// Pop the numeric result, push it on the main stack as a `Value` —
    /// the `eval_expr_value` boundary conversion.
    NToValue,
}

/// Display names for the profiler's per-opcode hit counters, indexed by
/// [`Instr::opcode`]. Keep in `Instr` declaration order.
pub(crate) const OPCODE_NAMES: [&str; 33] = [
    "PushConst",
    "Pop",
    "LoadVar",
    "LoadElem",
    "LoadElemDyn",
    "Concat",
    "StoreVar",
    "StoreVarPop",
    "StoreElem",
    "IncrVar",
    "IncrVarPop",
    "Invoke",
    "EvalScript",
    "Jump",
    "Break",
    "Continue",
    "ForeachInit",
    "ForeachStep",
    "NPushNum",
    "NLoadVar",
    "NLoadVar2",
    "NElem",
    "NEvalText",
    "NBin",
    "NBinNum",
    "NBinJumpIfFalse",
    "NBinNumJumpIfFalse",
    "NUn",
    "NTruth",
    "NCallFunc",
    "NJumpIfFalse",
    "NJumpIfTrue",
    "NToValue",
];

impl Instr {
    /// Index into [`OPCODE_NAMES`] / the profiler's hit table.
    fn opcode(&self) -> usize {
        match self {
            Instr::PushConst(..) => 0,
            Instr::Pop => 1,
            Instr::LoadVar(..) => 2,
            Instr::LoadElem(..) => 3,
            Instr::LoadElemDyn(..) => 4,
            Instr::Concat(..) => 5,
            Instr::StoreVar(..) => 6,
            Instr::StoreVarPop(..) => 7,
            Instr::StoreElem(..) => 8,
            Instr::IncrVar(..) => 9,
            Instr::IncrVarPop(..) => 10,
            Instr::Invoke(..) => 11,
            Instr::EvalScript(..) => 12,
            Instr::Jump(..) => 13,
            Instr::Break => 14,
            Instr::Continue => 15,
            Instr::ForeachInit => 16,
            Instr::ForeachStep(..) => 17,
            Instr::NPushNum(..) => 18,
            Instr::NLoadVar(..) => 19,
            Instr::NLoadVar2(..) => 20,
            Instr::NElem(..) => 21,
            Instr::NEvalText(..) => 22,
            Instr::NBin(..) => 23,
            Instr::NBinNum(..) => 24,
            Instr::NBinJumpIfFalse(..) => 25,
            Instr::NBinNumJumpIfFalse(..) => 26,
            Instr::NUn(..) => 27,
            Instr::NTruth => 28,
            Instr::NCallFunc(..) => 29,
            Instr::NJumpIfFalse(..) => 30,
            Instr::NJumpIfTrue(..) => 31,
            Instr::NToValue => 32,
        }
    }
}

/// Break/continue region: any `Break`/`Continue` raised at a pc in
/// `[start, end)` truncates the stacks and jumps instead of propagating.
#[derive(Debug, Clone, Copy)]
struct LoopRange {
    start: u32,
    end: u32,
    break_to: u32,
    cont_to: u32,
    /// Operand-stack depth at loop entry.
    stack: u32,
    /// Iterator-stack depth after a break (foreach pops its iterator).
    iters_break: u32,
    /// Iterator-stack depth after a continue (foreach keeps iterating).
    iters_cont: u32,
}

/// The loop variables of one `foreach`, as name-pool indices.
#[derive(Debug)]
struct ForeachInfo {
    vars: Vec<u32>,
}

/// A compiled script: flat code plus its constant/name/script pools.
#[derive(Debug)]
pub(crate) struct ByteCode {
    code: Vec<Instr>,
    consts: Vec<Value>,
    /// Numeric/string literals of `expr` subtrees (`Int`/`Dbl`, plus
    /// non-numeric `Str` literals, which clone exactly as the
    /// tree-walker clones `Node::Lit`).
    nums: Vec<EValue>,
    names: Vec<Rc<str>>,
    scripts: Vec<Rc<CompiledScript>>,
    loops: Vec<LoopRange>,
    foreach: Vec<ForeachInfo>,
}

/// Returns the bytecode for `script`, compiling (or recompiling after an
/// epoch bump) on demand. `None` means the script is uncompilable and the
/// caller must tree-walk; the verdict is cached so repeat executions pay
/// one enum check.
pub(crate) fn bytecode_for(interp: &mut Interp, script: &CompiledScript) -> Option<Rc<ByteCode>> {
    match &*script.bc.borrow() {
        BcSlot::Ready { epoch, code } if *epoch == interp.bc_epoch => {
            let code = code.clone();
            interp.bc_stats.hits += 1;
            interp.telemetry().count("tcl.bc.hits");
            return Some(code);
        }
        BcSlot::Uncompilable => {
            interp.bc_stats.fallbacks += 1;
            interp.telemetry().count("tcl.bc.fallbacks");
            return None;
        }
        _ => {}
    }
    match Compiler::lower(interp, script) {
        Some(code) => {
            interp.bc_stats.compiles += 1;
            interp.telemetry().count("tcl.bc.compiles");
            let code = Rc::new(code);
            *script.bc.borrow_mut() = BcSlot::Ready {
                epoch: interp.bc_epoch,
                code: code.clone(),
            };
            Some(code)
        }
        None => {
            interp.bc_stats.fallbacks += 1;
            interp.telemetry().count("tcl.bc.fallbacks");
            *script.bc.borrow_mut() = BcSlot::Uncompilable;
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

/// Compile-time operand/iterator depths, threaded through the lowering so
/// loop ranges know what to truncate to on break/continue.
#[derive(Clone, Copy)]
struct Ctx {
    depth: u32,
    iters: u32,
}

struct Compiler<'a> {
    interp: &'a mut Interp,
    code: Vec<Instr>,
    consts: Vec<Value>,
    nums: Vec<EValue>,
    names: Vec<Rc<str>>,
    scripts: Vec<Rc<CompiledScript>>,
    loops: Vec<LoopRange>,
    foreach: Vec<ForeachInfo>,
    inline: u32,
    /// Every jump target is a position returned by `here()`; this is the
    /// highest such position handed out so far. The peephole helpers
    /// refuse to fuse an instruction into its predecessor (or remove a
    /// trailing pair) when a label could point at the position being
    /// folded away — fusing *at* a labeled position is fine (the fused
    /// instruction performs the full original sequence from there), but
    /// folding the instruction a label points *to* into an earlier slot
    /// would skip work on the jumping path.
    label_mark: usize,
}

impl<'a> Compiler<'a> {
    fn lower(interp: &'a mut Interp, script: &CompiledScript) -> Option<ByteCode> {
        let mut c = Compiler {
            interp,
            code: Vec::new(),
            consts: vec![Value::empty()],
            nums: Vec::new(),
            names: Vec::new(),
            scripts: Vec::new(),
            loops: Vec::new(),
            foreach: Vec::new(),
            inline: 0,
            label_mark: 0,
        };
        c.script(script, Ctx { depth: 0, iters: 0 });
        if c.code.len() > MAX_CODE {
            return None;
        }
        Some(ByteCode {
            code: c.code,
            consts: c.consts,
            nums: c.nums,
            names: c.names,
            scripts: c.scripts,
            loops: c.loops,
            foreach: c.foreach,
        })
    }

    // ----- emission helpers ------------------------------------------

    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    /// The current position, as a jump target. Also pins it against the
    /// peephole helpers: the next instruction emitted here must stay.
    fn here(&mut self) -> u32 {
        self.label_mark = self.code.len();
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Instr::Jump(t)
            | Instr::NJumpIfFalse(t)
            | Instr::NJumpIfTrue(t)
            | Instr::NBinJumpIfFalse(_, t)
            | Instr::NBinNumJumpIfFalse(_, _, t)
            | Instr::ForeachStep(_, t) => *t = target,
            _ => unreachable!("patch target is not a jump"),
        }
    }

    /// Whether the last emitted instruction may be fused into or folded
    /// away (no label can point past it).
    fn fusable(&self) -> bool {
        self.code.len() > self.label_mark
    }

    /// Emits a `Pop`, folding it into a fusable predecessor: a stored or
    /// incremented value whose result is discarded skips the push, and a
    /// constant pushed just to be dropped (a loop's empty result in
    /// statement position) disappears with its `Pop` entirely.
    fn emit_pop(&mut self) {
        if self.fusable() {
            match self.code.last().copied() {
                Some(Instr::PushConst(_)) => {
                    self.code.pop();
                    return;
                }
                Some(Instr::StoreVar(n)) => {
                    *self.code.last_mut().unwrap() = Instr::StoreVarPop(n);
                    return;
                }
                Some(Instr::IncrVar(n, e, amount)) => {
                    *self.code.last_mut().unwrap() = Instr::IncrVarPop(n, e, amount);
                    return;
                }
                _ => {}
            }
        }
        self.emit(Instr::Pop);
    }

    /// Emits an `NLoadVar`, pairing it with an immediately preceding one.
    fn emit_nloadvar(&mut self, n: u32) {
        if self.fusable() {
            if let Some(Instr::NLoadVar(a)) = self.code.last().copied() {
                *self.code.last_mut().unwrap() = Instr::NLoadVar2(a, n);
                return;
            }
        }
        self.emit(Instr::NLoadVar(n));
    }

    /// Emits a binary operator, folding an immediately preceding
    /// constant push into its right operand.
    fn emit_nbin(&mut self, op: BinOp) {
        if self.fusable() {
            if let Some(Instr::NPushNum(k)) = self.code.last().copied() {
                *self.code.last_mut().unwrap() = Instr::NBinNum(op, k);
                return;
            }
        }
        self.emit(Instr::NBin(op));
    }

    /// Emits a branch-if-false (target patched later), folding it into an
    /// immediately preceding binary operator.
    fn emit_branch_false(&mut self) -> usize {
        if self.fusable() {
            match self.code.last().copied() {
                Some(Instr::NBin(op)) => {
                    *self.code.last_mut().unwrap() = Instr::NBinJumpIfFalse(op, 0);
                    return self.code.len() - 1;
                }
                Some(Instr::NBinNum(op, k)) => {
                    *self.code.last_mut().unwrap() = Instr::NBinNumJumpIfFalse(op, k, 0);
                    return self.code.len() - 1;
                }
                _ => {}
            }
        }
        self.emit(Instr::NJumpIfFalse(0))
    }

    fn konst(&mut self, v: Value) -> u32 {
        self.consts.push(v);
        (self.consts.len() - 1) as u32
    }

    fn num(&mut self, v: EValue) -> u32 {
        self.nums.push(v);
        (self.nums.len() - 1) as u32
    }

    fn name(&mut self, s: &str) -> u32 {
        if let Some(i) = self.names.iter().position(|n| &**n == s) {
            return i as u32;
        }
        self.names.push(Rc::from(s));
        (self.names.len() - 1) as u32
    }

    fn script_ref(&mut self, s: Rc<CompiledScript>) -> u32 {
        self.scripts.push(s);
        (self.scripts.len() - 1) as u32
    }

    // ----- script / command lowering ---------------------------------

    /// Lowers a script; net effect is one value (its result) pushed.
    fn script(&mut self, s: &CompiledScript, ctx: Ctx) {
        if s.commands.is_empty() {
            self.emit(Instr::PushConst(EMPTY));
            return;
        }
        for (i, cmd) in s.commands.iter().enumerate() {
            if i > 0 {
                self.emit_pop();
            }
            self.command(cmd, ctx);
        }
    }

    /// Lowers one command (net one value pushed): the inlined special
    /// form when possible, the generic invoke sequence otherwise.
    fn command(&mut self, cmd: &CompiledCommand, ctx: Ctx) {
        let code_mark = self.code.len();
        let loop_mark = self.loops.len();
        if self.special(cmd, ctx).is_none() {
            // A special form declined partway through (non-literal
            // structure, unparseable guard, numeric-string literal in an
            // expr): drop whatever it emitted and lower generically. The
            // command behaves exactly as the tree-walker because the real
            // built-in runs.
            self.code.truncate(code_mark);
            self.loops.truncate(loop_mark);
            self.generic(cmd, ctx);
        }
    }

    fn generic(&mut self, cmd: &CompiledCommand, ctx: Ctx) {
        for (i, w) in cmd.words.iter().enumerate() {
            self.token(
                w,
                Ctx {
                    depth: ctx.depth + i as u32,
                    ..ctx
                },
            );
        }
        self.emit(Instr::Invoke(cmd.words.len() as u32));
    }

    /// Lowers one word token (net one value pushed). `ctx.depth` is the
    /// operand depth before the token's value lands.
    fn token(&mut self, t: &Token, ctx: Ctx) {
        match t {
            Token::Literal(v) => {
                let k = self.konst(v.clone());
                self.emit(Instr::PushConst(k));
            }
            Token::VarSub(name, None) => {
                let n = self.name(name);
                self.emit(Instr::LoadVar(n));
            }
            Token::VarSub(name, Some(parts)) => {
                if let [Token::Literal(lit)] = parts.as_slice() {
                    let n = self.name(name);
                    let e = self.name(lit.as_str());
                    self.emit(Instr::LoadElem(n, e));
                } else {
                    let n = self.name(name);
                    for (i, p) in parts.iter().enumerate() {
                        self.token(
                            p,
                            Ctx {
                                depth: ctx.depth + i as u32,
                                ..ctx
                            },
                        );
                    }
                    self.emit(Instr::LoadElemDyn(n, parts.len() as u32));
                }
            }
            Token::BracketSub(inner) => {
                if self.inline < MAX_INLINE {
                    self.inline += 1;
                    self.script(inner, ctx);
                    self.inline -= 1;
                } else {
                    let s = self.script_ref(inner.clone());
                    self.emit(Instr::EvalScript(s));
                }
            }
            Token::Compound(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    self.token(
                        p,
                        Ctx {
                            depth: ctx.depth + i as u32,
                            ..ctx
                        },
                    );
                }
                self.emit(Instr::Concat(parts.len() as u32));
            }
        }
    }

    // ----- special forms ---------------------------------------------

    /// Tries to inline `cmd` as a special form. `None` = lower generically
    /// (after the caller rolls back anything partially emitted).
    fn special(&mut self, cmd: &CompiledCommand, ctx: Ctx) -> Option<()> {
        let Some(Token::Literal(name)) = cmd.words.first() else {
            return None;
        };
        let name = name.as_str();
        if !BC_SPECIAL_NAMES.contains(&name) || !self.interp.bc_special_pristine(name) {
            return None;
        }
        match name {
            "set" => self.sf_set(cmd, ctx),
            "incr" => self.sf_incr(cmd),
            "expr" => self.sf_expr(cmd),
            "if" => self.sf_if(cmd, ctx),
            "while" => self.sf_while(cmd, ctx),
            "for" => self.sf_for(cmd, ctx),
            "foreach" => self.sf_foreach(cmd, ctx),
            "break" if cmd.words.len() == 1 => {
                self.emit(Instr::Break);
                Some(())
            }
            "continue" if cmd.words.len() == 1 => {
                self.emit(Instr::Continue);
                Some(())
            }
            _ => None,
        }
    }

    fn sf_set(&mut self, cmd: &CompiledCommand, ctx: Ctx) -> Option<()> {
        let Some(Token::Literal(spec)) = cmd.words.get(1) else {
            return None;
        };
        let (name, idx) = crate::commands::split_varspec(spec.as_str());
        match cmd.words.len() {
            2 => {
                let n = self.name(&name);
                match idx {
                    None => self.emit(Instr::LoadVar(n)),
                    Some(i) => {
                        let e = self.name(&i);
                        self.emit(Instr::LoadElem(n, e))
                    }
                };
                Some(())
            }
            3 => {
                self.token(&cmd.words[2], ctx);
                let n = self.name(&name);
                match idx {
                    None => self.emit(Instr::StoreVar(n)),
                    Some(i) => {
                        let e = self.name(&i);
                        self.emit(Instr::StoreElem(n, e))
                    }
                };
                Some(())
            }
            _ => None,
        }
    }

    fn sf_incr(&mut self, cmd: &CompiledCommand) -> Option<()> {
        if cmd.words.len() != 2 && cmd.words.len() != 3 {
            return None;
        }
        let Token::Literal(spec) = &cmd.words[1] else {
            return None;
        };
        let amount = match cmd.words.get(2) {
            None => 1,
            // The literal must strict-parse at compile time; otherwise the
            // generic path reports `expected integer but got ...` exactly
            // as `incr` does.
            Some(Token::Literal(amt)) => amt.as_int()?,
            Some(_) => return None,
        };
        let (name, idx) = crate::commands::split_varspec(spec.as_str());
        let n = self.name(&name);
        let e = match idx {
            Some(i) => self.name(&i),
            None => NO_ELEM,
        };
        self.emit(Instr::IncrVar(n, e, amount));
        Some(())
    }

    fn sf_expr(&mut self, cmd: &CompiledCommand) -> Option<()> {
        if cmd.words.len() != 2 {
            return None;
        }
        let Token::Literal(text) = &cmd.words[1] else {
            return None;
        };
        // Compile through the interpreter's expr cache: the same parse the
        // tree-walker would do on first evaluation, done once here.
        let PreparedExpr::Compiled(ce) = prepare_expr(self.interp, text.as_str()) else {
            return None;
        };
        self.expr(ce.node())?;
        self.emit(Instr::NToValue);
        Some(())
    }

    /// Lowers one `expr` AST node onto the numeric stack — the exact
    /// `eval_node` recursion, flattened.
    fn expr(&mut self, n: &Node) -> Option<()> {
        match n {
            Node::Lit(v) => {
                // A quoted string literal that *looks* numeric (e.g. "5")
                // would be coerced by a later numeric operator, where the
                // tree-walker keeps it a string (`"5"+1` is an error).
                // Decline; the generic path preserves the semantics.
                if let EValue::Str(s) = v {
                    if !matches!(coerce(s), EValue::Str(_)) {
                        return None;
                    }
                }
                let k = self.num(v.clone());
                self.emit(Instr::NPushNum(k));
            }
            Node::Var(name, None) => {
                let i = self.name(name);
                self.emit_nloadvar(i);
            }
            Node::Var(name, Some(raw)) => {
                let ni = self.name(name);
                let ri = self.name(raw);
                self.emit(Instr::NElem(ni, ri));
            }
            Node::Cmd(script) => {
                let si = self.name(script);
                self.emit(Instr::NEvalText(si));
            }
            Node::Unary(op, a) => {
                self.expr(a)?;
                self.emit(Instr::NUn(*op));
            }
            Node::Binary(BinOp::And, a, b) => {
                self.expr(a)?;
                let jf = self.emit_branch_false();
                self.expr(b)?;
                self.emit(Instr::NTruth);
                let j = self.emit(Instr::Jump(0));
                let at = self.here();
                self.patch(jf, at);
                let k = self.num(EValue::Int(0));
                self.emit(Instr::NPushNum(k));
                let at = self.here();
                self.patch(j, at);
            }
            Node::Binary(BinOp::Or, a, b) => {
                self.expr(a)?;
                let jt = self.emit(Instr::NJumpIfTrue(0));
                self.expr(b)?;
                self.emit(Instr::NTruth);
                let j = self.emit(Instr::Jump(0));
                let at = self.here();
                self.patch(jt, at);
                let k = self.num(EValue::Int(1));
                self.emit(Instr::NPushNum(k));
                let at = self.here();
                self.patch(j, at);
            }
            Node::Binary(op, a, b) => {
                self.expr(a)?;
                self.expr(b)?;
                self.emit_nbin(*op);
            }
            Node::Ternary(c, t, e) => {
                self.expr(c)?;
                let jf = self.emit_branch_false();
                self.expr(t)?;
                let j = self.emit(Instr::Jump(0));
                let at = self.here();
                self.patch(jf, at);
                self.expr(e)?;
                let at = self.here();
                self.patch(j, at);
            }
            Node::Call(name, args) => {
                for a in args {
                    self.expr(a)?;
                }
                let ni = self.name(name);
                self.emit(Instr::NCallFunc(ni, args.len() as u32));
            }
        }
        Some(())
    }

    /// Lowers a literal body value: inline its compiled script, or an
    /// `EvalScript` escape past the inlining depth. `None` when the body
    /// text does not compile (the tree-walker's lazy-error path must run).
    fn body(&mut self, v: &Value, ctx: Ctx) -> Option<()> {
        match self.interp.prepare_value(v) {
            Prepared::Compiled(rc) => {
                if self.inline < MAX_INLINE {
                    self.inline += 1;
                    self.script(&rc, ctx);
                    self.inline -= 1;
                } else {
                    let s = self.script_ref(rc);
                    self.emit(Instr::EvalScript(s));
                }
                Some(())
            }
            Prepared::Source(_) => None,
        }
    }

    /// Compiles a literal guard text through the expr cache; `None` when
    /// it does not parse (the built-in reports the error lazily).
    fn guard(&mut self, text: &Value) -> Option<()> {
        let PreparedExpr::Compiled(ce) = prepare_expr(self.interp, text.as_str()) else {
            return None;
        };
        self.expr(ce.node())
    }

    fn sf_if(&mut self, cmd: &CompiledCommand, ctx: Ctx) -> Option<()> {
        // Structure detection needs every word literal (a substituted word
        // could *be* "elseif" at run time).
        let words: Vec<&Value> = cmd
            .words
            .iter()
            .map(|t| match t {
                Token::Literal(v) => Some(v),
                _ => None,
            })
            .collect::<Option<_>>()?;
        let mut a = 1usize;
        let mut end_jumps = Vec::new();
        loop {
            let guard = words.get(a)?;
            a += 1;
            if a < words.len() && words[a].as_str() == "then" {
                a += 1;
            }
            let then_body = words.get(a)?;
            a += 1;
            self.guard(guard)?;
            let jf = self.emit_branch_false();
            self.body(then_body, ctx)?;
            end_jumps.push(self.emit(Instr::Jump(0)));
            let at = self.here();
            self.patch(jf, at);
            if a >= words.len() {
                self.emit(Instr::PushConst(EMPTY));
                break;
            }
            match words[a].as_str() {
                "elseif" => {
                    a += 1;
                    continue;
                }
                "else" => {
                    a += 1;
                    self.body(words.get(a)?, ctx)?;
                    break;
                }
                // Bare else-body (Tcl 6 allowed omitting the keyword);
                // like `cmd_if`, words past it are ignored.
                _ => {
                    self.body(words[a], ctx)?;
                    break;
                }
            }
        }
        let end = self.here();
        for j in end_jumps {
            self.patch(j, end);
        }
        Some(())
    }

    fn sf_while(&mut self, cmd: &CompiledCommand, ctx: Ctx) -> Option<()> {
        if cmd.words.len() != 3 {
            return None;
        }
        let (Token::Literal(test), Token::Literal(body)) = (&cmd.words[1], &cmd.words[2]) else {
            return None;
        };
        let top = self.here();
        self.guard(test)?;
        let jf = self.emit_branch_false();
        let body_start = self.here();
        self.body(body, ctx)?;
        self.emit_pop();
        let body_end = self.here();
        self.emit(Instr::Jump(top));
        let end = self.here();
        self.patch(jf, end);
        self.emit(Instr::PushConst(EMPTY));
        self.loops.push(LoopRange {
            start: body_start,
            end: body_end,
            break_to: end,
            cont_to: top,
            stack: ctx.depth,
            iters_break: ctx.iters,
            iters_cont: ctx.iters,
        });
        Some(())
    }

    fn sf_for(&mut self, cmd: &CompiledCommand, ctx: Ctx) -> Option<()> {
        if cmd.words.len() != 5 {
            return None;
        }
        let (
            Token::Literal(start),
            Token::Literal(test),
            Token::Literal(next),
            Token::Literal(body),
        ) = (&cmd.words[1], &cmd.words[2], &cmd.words[3], &cmd.words[4])
        else {
            return None;
        };
        self.body(start, ctx)?;
        self.emit_pop();
        let top = self.here();
        self.guard(test)?;
        let jf = self.emit_branch_false();
        let body_start = self.here();
        self.body(body, ctx)?;
        self.emit_pop();
        let body_end = self.here();
        // `continue` re-enters at the next-script, like `cmd_for`.
        let cont = self.here();
        self.body(next, ctx)?;
        self.emit_pop();
        self.emit(Instr::Jump(top));
        let end = self.here();
        self.patch(jf, end);
        self.emit(Instr::PushConst(EMPTY));
        self.loops.push(LoopRange {
            start: body_start,
            end: body_end,
            break_to: end,
            cont_to: cont,
            stack: ctx.depth,
            iters_break: ctx.iters,
            iters_cont: ctx.iters,
        });
        Some(())
    }

    fn sf_foreach(&mut self, cmd: &CompiledCommand, ctx: Ctx) -> Option<()> {
        if cmd.words.len() != 4 {
            return None;
        }
        let (Token::Literal(varlist), Token::Literal(body)) = (&cmd.words[1], &cmd.words[3]) else {
            return None;
        };
        let vars = parse_list(varlist.as_str()).ok()?;
        if vars.is_empty() {
            return None;
        }
        // The list word is substituted before `cmd_foreach` would run, so
        // evaluating it first preserves side-effect and error order.
        self.token(&cmd.words[2], ctx);
        let info = self.foreach.len() as u32;
        let var_idxs = vars.iter().map(|s| self.name(s)).collect();
        self.foreach.push(ForeachInfo { vars: var_idxs });
        self.emit(Instr::ForeachInit);
        let step = self.emit(Instr::ForeachStep(info, 0));
        let body_start = self.here();
        self.body(
            body,
            Ctx {
                iters: ctx.iters + 1,
                ..ctx
            },
        )?;
        self.emit_pop();
        let body_end = self.here();
        self.emit(Instr::Jump(step as u32));
        let end = self.here();
        self.patch(step, end);
        self.emit(Instr::PushConst(EMPTY));
        self.loops.push(LoopRange {
            start: body_start,
            end: body_end,
            break_to: end,
            cont_to: step as u32,
            stack: ctx.depth,
            iters_break: ctx.iters,
            iters_cont: ctx.iters + 1,
        });
        Some(())
    }
}

// ---------------------------------------------------------------------------
// VM
// ---------------------------------------------------------------------------

/// One live `foreach` iteration.
struct IterState {
    items: Rc<Vec<Value>>,
    idx: usize,
}

/// One cached scalar. A populated slot proves the active frame holds
/// this name as a plain scalar right now — a read or a write-through
/// succeeded since the last barrier — so subsequent writes may be
/// deferred: `set_var` on an existing scalar cannot fail, and nothing
/// can change the slot's shape without passing a barrier first.
struct Slot {
    val: Value,
    dirty: bool,
}

/// The mutable execution state of one `execute` call.
struct Vm {
    /// Main operand stack (command words and results).
    stack: Vec<Value>,
    /// Numeric scratch stack (`expr` subsequences). Empty at every
    /// command boundary.
    nums: Vec<EValue>,
    /// Live `foreach` iterations.
    iters: Vec<IterState>,
    /// Per-name-pool-slot scalar cache; see the module docs.
    vcache: Vec<Option<Slot>>,
    /// Name-pool indices holding dirty slots (the flush set).
    dirty: Vec<u32>,
    /// Whether the cache may be used at all right now (no aliasing links
    /// in the active frame).
    cache_on: bool,
}

impl Vm {
    /// Applies every deferred store to the frame. Runs before any
    /// instruction through which other code could observe variables —
    /// generic invokes, nested evals, array operations on a possibly
    /// cached name — and when execution ends (normally or with an
    /// error, so the final variable state matches the tree-walker's).
    fn flush(&mut self, interp: &mut Interp, bc: &ByteCode) -> TclResult<()> {
        for n in self.dirty.drain(..) {
            if let Some(slot) = &mut self.vcache[n as usize] {
                if slot.dirty {
                    slot.dirty = false;
                    interp.set_var(&bc.names[n as usize], slot.val.clone())?;
                }
            }
        }
        Ok(())
    }

    /// Drops all cached variable state: run after any instruction that
    /// hands control to arbitrary code, which may write variables,
    /// create links, or switch frames. (The matching `flush` must have
    /// run before the control transfer.)
    fn barrier(&mut self, interp: &Interp) {
        debug_assert!(self.dirty.is_empty(), "barrier without flush");
        for slot in &mut self.vcache {
            *slot = None;
        }
        self.cache_on = interp.bc_frame_cacheable();
    }

    /// Reads scalar `names[n]`, from cache when possible.
    fn load(&mut self, interp: &Interp, bc: &ByteCode, n: u32) -> TclResult<Value> {
        if self.cache_on {
            if let Some(s) = &self.vcache[n as usize] {
                return Ok(s.val.clone());
            }
            let v = interp.get_var(&bc.names[n as usize])?;
            self.vcache[n as usize] = Some(Slot {
                val: v.clone(),
                dirty: false,
            });
            return Ok(v);
        }
        interp.get_var(&bc.names[n as usize])
    }

    /// Writes scalar `names[n]`: into the cache (deferred) when the slot
    /// is proven scalar, through `set_var` otherwise.
    fn store(&mut self, interp: &mut Interp, bc: &ByteCode, n: u32, v: Value) -> TclResult<()> {
        if interp.has_traces() {
            // Write through — the trace script must fire now, and it may
            // touch any variable (or create links): drop everything.
            // Deferral never runs while traces exist, so no dirty slot
            // can be skipped by this barrier.
            interp.set_var(&bc.names[n as usize], v)?;
            self.flush(interp, bc)?;
            self.barrier(interp);
            return Ok(());
        }
        if self.cache_on {
            if let Some(s) = &mut self.vcache[n as usize] {
                s.val = v;
                if !s.dirty {
                    s.dirty = true;
                    self.dirty.push(n);
                }
                return Ok(());
            }
            // First touch of this name: write through, so a "variable is
            // array" error surfaces exactly where the tree-walker raises
            // it. Success proves the slot scalar; later stores defer.
            interp.set_var(&bc.names[n as usize], v.clone())?;
            self.vcache[n as usize] = Some(Slot {
                val: v,
                dirty: false,
            });
            return Ok(());
        }
        interp.set_var(&bc.names[n as usize], v)
    }
}

/// Runs compiled bytecode to completion, returning the script result.
pub(crate) fn execute(interp: &mut Interp, code: &Rc<ByteCode>) -> TclResult<Value> {
    let bc: &ByteCode = code;
    let mut vm = Vm {
        stack: Vec::new(),
        nums: Vec::new(),
        iters: Vec::new(),
        vcache: Vec::new(),
        dirty: Vec::new(),
        cache_on: interp.bc_frame_cacheable(),
    };
    vm.vcache.resize_with(bc.names.len(), || None);
    let span = interp.telemetry().span_begin("tcl.bc", String::new);
    // Hoisted so the off path pays one well-predicted branch per
    // instruction and nothing else.
    let profiling = interp.profiler.enabled();
    let mut pc = 0usize;
    let mut steps = 0u64;
    let n = bc.code.len();
    let mut failure = None;
    while pc < n {
        steps += 1;
        if profiling {
            interp.profiler.opcode_hit(bc.code[pc].opcode());
        }
        match step(interp, bc, pc, &mut vm) {
            Ok(next) => pc = next,
            Err(e) => match unwind(bc, pc, &e, &mut vm) {
                Some(next) => pc = next,
                None => {
                    failure = Some(e);
                    break;
                }
            },
        }
    }
    let result = match failure {
        Some(e) => {
            // Apply pending writes so the variable state at the failure
            // point matches the tree-walker's (flushing proven scalars
            // cannot itself fail).
            let flushed = vm.flush(interp, bc);
            debug_assert!(flushed.is_ok(), "flush failed on proven scalars");
            Err(e)
        }
        None => {
            debug_assert_eq!(vm.stack.len(), 1, "operand stack must hold the result");
            debug_assert!(vm.nums.is_empty(), "numeric stack must drain");
            vm.flush(interp, bc)
                .map(|()| vm.stack.pop().unwrap_or_default())
        }
    };
    interp.bc_stats.instructions += steps;
    interp.telemetry().add("tcl.bc.instructions", steps);
    if span {
        interp.telemetry().span_end();
    }
    result
}

/// Executes the instruction at `pc`; returns the next pc.
fn step(interp: &mut Interp, bc: &ByteCode, pc: usize, vm: &mut Vm) -> TclResult<usize> {
    match bc.code[pc] {
        Instr::PushConst(k) => vm.stack.push(bc.consts[k as usize].clone()),
        Instr::Pop => {
            vm.stack.pop();
        }
        Instr::LoadVar(n) => {
            let v = vm.load(interp, bc, n)?;
            vm.stack.push(v);
        }
        Instr::LoadElem(n, e) => {
            // Array ops bypass the scalar cache; a deferred write to the
            // same name must land first so shape errors ("variable isn't
            // array") fall exactly where the tree-walker raises them.
            vm.flush(interp, bc)?;
            let v = interp.get_elem(&bc.names[n as usize], &bc.names[e as usize])?;
            vm.stack.push(v);
        }
        Instr::LoadElemDyn(n, parts) => {
            vm.flush(interp, bc)?;
            let base = vm.stack.len() - parts as usize;
            let mut idx = String::new();
            for v in &vm.stack[base..] {
                idx.push_str(v.as_str());
            }
            vm.stack.truncate(base);
            let v = interp.get_elem(&bc.names[n as usize], &idx)?;
            vm.stack.push(v);
        }
        Instr::Concat(parts) => {
            let base = vm.stack.len() - parts as usize;
            let mut out = String::new();
            for v in &vm.stack[base..] {
                out.push_str(v.as_str());
            }
            vm.stack.truncate(base);
            vm.stack.push(Value::from(out));
        }
        Instr::StoreVar(n) => {
            let v = vm.stack.pop().expect("bc stack");
            vm.store(interp, bc, n, v.clone())?;
            vm.stack.push(v);
        }
        Instr::StoreVarPop(n) => {
            let v = vm.stack.pop().expect("bc stack");
            vm.store(interp, bc, n, v)?;
        }
        Instr::StoreElem(n, e) => {
            vm.flush(interp, bc)?;
            let v = vm.stack.pop().expect("bc stack");
            interp.set_elem(&bc.names[n as usize], &bc.names[e as usize], v.clone())?;
            if interp.has_traces() {
                vm.barrier(interp);
            }
            vm.stack.push(v);
        }
        Instr::IncrVar(n, e, amount) => {
            let new = incr(interp, bc, vm, n, e, amount)?;
            vm.stack.push(new);
        }
        Instr::IncrVarPop(n, e, amount) => {
            incr(interp, bc, vm, n, e, amount)?;
        }
        Instr::Invoke(argc) => {
            vm.flush(interp, bc)?;
            let base = vm.stack.len() - argc as usize;
            let r = interp.invoke(&vm.stack[base..]);
            vm.stack.truncate(base);
            vm.barrier(interp);
            vm.stack.push(r?);
        }
        Instr::EvalScript(s) => {
            vm.flush(interp, bc)?;
            let r = interp.eval_compiled(&bc.scripts[s as usize]);
            vm.barrier(interp);
            vm.stack.push(r?);
        }
        Instr::Jump(t) => return Ok(t as usize),
        Instr::Break => return Err(TclError::Break),
        Instr::Continue => return Err(TclError::Continue),
        Instr::ForeachInit => {
            let v = vm.stack.pop().expect("bc stack");
            let items = v.as_list()?;
            vm.iters.push(IterState { items, idx: 0 });
        }
        Instr::ForeachStep(i, end) => {
            let info = &bc.foreach[i as usize];
            let it = vm.iters.last_mut().expect("bc iter stack");
            if it.idx >= it.items.len() {
                vm.iters.pop();
                return Ok(end as usize);
            }
            let items = it.items.clone();
            let start = it.idx;
            it.idx += info.vars.len();
            for (k, var) in info.vars.iter().enumerate() {
                let value = items.get(start + k).cloned().unwrap_or_default();
                vm.store(interp, bc, *var, value)?;
            }
        }
        Instr::NPushNum(k) => vm.nums.push(bc.nums[k as usize].clone()),
        Instr::NLoadVar(n) => nload(interp, bc, vm, n)?,
        Instr::NLoadVar2(a, b) => {
            nload(interp, bc, vm, a)?;
            nload(interp, bc, vm, b)?;
        }
        Instr::NElem(n, r) => {
            // The element text may itself substitute commands
            // (`$a([next])`): full barrier around it.
            vm.flush(interp, bc)?;
            let idx = interp.substitute_all(&bc.names[r as usize]);
            vm.barrier(interp);
            let v = interp.get_elem_ref(&bc.names[n as usize], &idx?)?;
            vm.nums.push(coerce_value(v));
        }
        Instr::NEvalText(t) => {
            vm.flush(interp, bc)?;
            let r = interp.eval(&bc.names[t as usize]);
            vm.barrier(interp);
            vm.nums.push(coerce_value(&r?));
        }
        Instr::NBin(op) => {
            let b = vm.nums.pop().expect("bc num stack");
            let a = vm.nums.pop().expect("bc num stack");
            let r = eval_binop(op, a, b)?;
            vm.nums.push(r);
        }
        Instr::NBinNum(op, k) => {
            let a = vm.nums.pop().expect("bc num stack");
            let r = eval_binop(op, a, bc.nums[k as usize].clone())?;
            vm.nums.push(r);
        }
        Instr::NBinJumpIfFalse(op, t) => {
            let b = vm.nums.pop().expect("bc num stack");
            let a = vm.nums.pop().expect("bc num stack");
            if !eval_binop(op, a, b)?.truthy()? {
                return Ok(t as usize);
            }
        }
        Instr::NBinNumJumpIfFalse(op, k, t) => {
            let a = vm.nums.pop().expect("bc num stack");
            if !eval_binop(op, a, bc.nums[k as usize].clone())?.truthy()? {
                return Ok(t as usize);
            }
        }
        Instr::NUn(op) => {
            let a = vm.nums.pop().expect("bc num stack");
            vm.nums.push(eval_unop(op, a)?);
        }
        Instr::NTruth => {
            let a = vm.nums.pop().expect("bc num stack");
            let b = a.truthy()?;
            vm.nums.push(EValue::Int(b as i64));
        }
        Instr::NCallFunc(n, argc) => {
            let base = vm.nums.len() - argc as usize;
            let r = eval_func(interp, &bc.names[n as usize], &vm.nums[base..])?;
            vm.nums.truncate(base);
            vm.nums.push(r);
        }
        Instr::NJumpIfFalse(t) => {
            let a = vm.nums.pop().expect("bc num stack");
            if !a.truthy()? {
                return Ok(t as usize);
            }
        }
        Instr::NJumpIfTrue(t) => {
            let a = vm.nums.pop().expect("bc num stack");
            if a.truthy()? {
                return Ok(t as usize);
            }
        }
        Instr::NToValue => {
            let a = vm.nums.pop().expect("bc num stack");
            vm.stack.push(into_tcl_value(a));
        }
    }
    Ok(pc + 1)
}

/// `NLoadVar`: pushes the coerced value of scalar `names[n]` onto the
/// numeric stack — the coercion the tree-walker applies to `$var`
/// operands — reading through the cache without cloning the value.
fn nload(interp: &Interp, bc: &ByteCode, vm: &mut Vm, n: u32) -> TclResult<()> {
    if vm.cache_on {
        if let Some(s) = &vm.vcache[n as usize] {
            let e = coerce_value(&s.val);
            vm.nums.push(e);
        } else {
            let v = interp.get_var(&bc.names[n as usize])?;
            vm.nums.push(coerce_value(&v));
            vm.vcache[n as usize] = Some(Slot {
                val: v,
                dirty: false,
            });
        }
    } else {
        vm.nums
            .push(coerce_value(interp.get_var_ref(&bc.names[n as usize])?));
    }
    Ok(())
}

/// `IncrVar`: adds the immediate to scalar `names[n]` (or the element
/// `names[n](names[e])` when `e != NO_ELEM`) and returns the new value.
fn incr(
    interp: &mut Interp,
    bc: &ByteCode,
    vm: &mut Vm,
    n: u32,
    e: u32,
    amount: i64,
) -> TclResult<Value> {
    if e == NO_ELEM {
        let cur = vm.load(interp, bc, n)?;
        let cur = cur
            .as_int()
            .ok_or_else(|| TclError::Error(format!("expected integer but got \"{cur}\"")))?;
        let new = Value::from_int(cur.wrapping_add(amount));
        vm.store(interp, bc, n, new.clone())?;
        Ok(new)
    } else {
        vm.flush(interp, bc)?;
        let name = &bc.names[n as usize];
        let elem = &bc.names[e as usize];
        let v = interp.get_elem_ref(name, elem)?;
        let cur = v
            .as_int()
            .ok_or_else(|| TclError::Error(format!("expected integer but got \"{v}\"")))?;
        let new = Value::from_int(cur.wrapping_add(amount));
        interp.set_elem(name, elem, new.clone())?;
        if interp.has_traces() {
            vm.barrier(interp);
        }
        Ok(new)
    }
}

/// Resolves a `Break`/`Continue` raised at `pc`: finds the innermost
/// enclosing loop range, restores the stacks to its entry depths and
/// returns the jump target. `None` propagates the code to the caller
/// (guards, proc bodies, `catch` — exactly the tree-walker's behavior).
fn unwind(bc: &ByteCode, pc: usize, e: &TclError, vm: &mut Vm) -> Option<usize> {
    let is_break = match e {
        TclError::Break => true,
        TclError::Continue => false,
        _ => return None,
    };
    let pc = pc as u32;
    let mut innermost: Option<&LoopRange> = None;
    for r in &bc.loops {
        if r.start <= pc && pc < r.end && innermost.is_none_or(|b| r.start >= b.start) {
            innermost = Some(r);
        }
    }
    let r = innermost?;
    vm.stack.truncate(r.stack as usize);
    // The numeric stack is empty at every command boundary, which is
    // where all jump targets sit.
    vm.nums.clear();
    if is_break {
        vm.iters.truncate(r.iters_break as usize);
        Some(r.break_to as usize)
    } else {
        vm.iters.truncate(r.iters_cont as usize);
        Some(r.cont_to as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn new() -> Interp {
        Interp::new()
    }

    fn bc_used(i: &Interp) -> bool {
        i.bc_stats().compiles > 0 || i.bc_stats().hits > 0
    }

    #[test]
    fn simple_script_compiles_and_runs() {
        let mut i = new();
        assert_eq!(i.eval("set a 1; set b 2; set c 3").unwrap(), "3");
        assert!(bc_used(&i));
        assert_eq!(i.get_var("b").unwrap(), "2");
    }

    #[test]
    fn while_loop_is_inlined() {
        let mut i = new();
        i.eval("set n 0; set sum 0; while {$n < 10} {incr n; incr sum $n}")
            .unwrap();
        assert_eq!(i.get_var("sum").unwrap(), "55");
        assert!(i.bc_stats().instructions > 50);
    }

    #[test]
    fn cached_bytecode_hits_on_reeval() {
        let mut i = new();
        i.eval("set x 1").unwrap();
        let compiles = i.bc_stats().compiles;
        i.eval("set x 1").unwrap();
        assert_eq!(i.bc_stats().compiles, compiles);
        assert!(i.bc_stats().hits >= 1);
    }

    #[test]
    fn redefining_special_recompiles_against_new_binding() {
        let mut i = new();
        assert_eq!(i.eval("set q 5").unwrap(), "5");
        // Shadow `set`: compiled scripts must notice the rebinding.
        i.register("set", |_, _| Ok(Value::from("shadowed")));
        assert_eq!(i.eval("set q 5").unwrap(), "shadowed");
    }

    #[test]
    fn redefine_before_first_compile_is_not_inlined() {
        let mut i = new();
        i.register("incr", |_, _| Ok(Value::from("custom")));
        assert_eq!(i.eval("incr anything").unwrap(), "custom");
    }

    #[test]
    fn vm_disable_switch_falls_back() {
        let mut i = new();
        i.set_bc_enabled(false);
        assert_eq!(i.eval("set x 7").unwrap(), "7");
        assert_eq!(i.bc_stats().compiles, 0);
        i.set_bc_enabled(true);
        assert_eq!(i.eval("set x 8").unwrap(), "8");
        assert!(bc_used(&i));
    }

    #[test]
    fn break_restores_operand_stack_depth() {
        let mut i = new();
        // `break` fires during the bracket substitution of the outer
        // `set`: the pending operands must be discarded by the unwinder.
        i.eval("set out {}; foreach x {1 2 3} {set out $x[if {$x > 1} break]}")
            .unwrap();
        assert_eq!(i.get_var("out").unwrap(), "1");
    }

    #[test]
    fn expr_string_literal_comparison_matches_tree_walker() {
        let mut i = new();
        assert_eq!(i.eval(r#"expr {"abc" < "abd"}"#).unwrap(), "1");
        // A numeric-looking quoted literal stays a string: addition on it
        // is an error under both engines.
        assert!(i.eval(r#"expr {"5" + 1}"#).is_err());
    }

    #[test]
    fn nonfinite_intermediate_matches_tree_walker() {
        let mut vm = new();
        let mut tw = new();
        tw.set_bc_enabled(false);
        for script in [
            "expr {1e308 * 10}",
            "expr {1e308 * 10 > 0}",
            "expr {1e400}",
            "set x [expr {1e308 * 10}]; catch {expr {$x + 1}} msg; set msg",
        ] {
            let a = vm.eval(script).map(|v| v.to_string());
            let b = tw.eval(script).map(|v| v.to_string());
            assert_eq!(a, b, "script: {script}");
        }
    }

    #[test]
    fn cached_writes_reach_the_frame_for_invoked_commands() {
        let mut i = new();
        // `llength $l` runs through generic invoke after cached writes to
        // `l`: the write-through must be visible.
        assert_eq!(
            i.eval("set l {a b}; set l {a b c}; llength $l").unwrap(),
            "3"
        );
    }

    #[test]
    fn upvar_alias_disables_the_variable_cache() {
        let mut i = new();
        // `a` and `b` alias one variable through an explicit link; the
        // VM must read the fresh value through either name.
        i.eval("set a 1; upvar 0 a b; set a 5").unwrap();
        assert_eq!(i.eval("set b").unwrap(), "5");
        i.eval("set b 9").unwrap();
        assert_eq!(i.eval("set a").unwrap(), "9");
        // And inside one compiled script, where the cache would
        // otherwise serve stale values between barriers.
        i.eval("set r {}; set a 0; set n 0; while {$n < 3} {incr n; incr a; set r $r$b}")
            .unwrap();
        assert_eq!(i.get_var("r").unwrap(), "123");
    }

    #[test]
    fn write_traces_disable_the_variable_cache() {
        let mut i = new();
        // A write trace on `x` rewrites `y`; a compiled loop reading `y`
        // after writing `x` must observe the trace's effect every time.
        i.eval("set y 0; trace variable x w {set y [expr {$y + 10}] ;#}")
            .unwrap();
        i.eval("set r {}; set n 0; while {$n < 3} {incr n; set x $n; set r $r$y,}")
            .unwrap();
        assert_eq!(i.get_var("r").unwrap(), "10,20,30,");
    }

    #[test]
    fn uncompilable_fallback_is_sticky_and_counted() {
        let mut i = new();
        let before = i.bc_stats().fallbacks;
        let _ = i.eval("set a 1");
        assert_eq!(i.bc_stats().fallbacks, before);
    }
}
