//! The Tcl interpreter: variable frames, command dispatch, evaluation.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::{Rc, Weak};

use wafe_trace::Telemetry;

use crate::compile::{compile, CompiledScript, LruCache, Token};
use crate::error::{TclError, TclResult};
use crate::expr::CompiledExpr;
use crate::hash::FnvMap;
use crate::parser::{find_matching_brace, find_matching_bracket, parse_backslash, scan_varname};
use crate::value::Value;

/// Maximum nesting depth of script evaluation, mirroring Tcl's
/// `maxNestingDepth` interpreter limit.
pub const MAX_NESTING_DEPTH: usize = 500;

/// Default bound of the script and expression caches (entries each).
pub const DEFAULT_CACHE_LIMIT: usize = 512;

/// Nesting depth beyond which scripts tree-walk instead of entering the
/// bytecode VM. The VM's dispatch loop adds native stack frames on every
/// re-entry (proc call, `EvalScript` escape); past this depth the
/// cheaper tree-walker frames keep `MAX_NESTING_DEPTH` levels of Tcl
/// recursion within the native stack. Results are identical either way.
pub(crate) const BC_MAX_DEPTH: usize = 16;

/// Scripts longer than this are compiled but not cached: the cache is
/// meant for hot loop bodies and proc calls, not one-shot `source` text.
const MAX_CACHED_SCRIPT_LEN: usize = 1 << 16;

/// The unsized native-command function type behind [`CmdFn`].
pub type NativeFn = dyn Fn(&mut Interp, &[Value]) -> TclResult<Value>;

/// Signature of a native command (the analogue of `Tcl_CmdProc`).
///
/// `argv[0]` is the command name, like in C Tcl. Arguments arrive as
/// shared dual-representation [`Value`]s; a command that only needs the
/// text can treat them as `&str` (they deref), while numeric and list
/// commands reuse the cached internal representations.
pub type CmdFn = Rc<NativeFn>;

/// A weak handle to a resolved command, interned into command-name
/// `Value`s so repeated dispatch of the same word skips the table lookup.
/// Weak references break the cycle `ProcDef → CompiledScript →
/// Token::Literal(Value) → interned command → ProcDef` that a recursive
/// proc would otherwise create.
#[derive(Clone)]
pub(crate) enum CmdIntern {
    Native(Weak<NativeFn>),
    Proc(Weak<ProcDef>),
}

/// A user-defined procedure created with `proc`.
#[derive(Debug, Clone)]
pub struct ProcDef {
    /// Formal arguments: `(name, default)`. A trailing `args` collects the
    /// remaining actual arguments as a list.
    pub args: Vec<(String, Option<String>)>,
    /// The procedure body, evaluated in a fresh frame.
    pub body: String,
    /// The body's parse-once form, compiled when the proc is defined.
    /// `None` when the body text does not compile (it then evaluates
    /// through the legacy parse-as-you-go path, reproducing Tcl's lazy
    /// error timing). Redefining a proc replaces the whole `ProcDef`, so
    /// a stale compiled body can never outlive its source text.
    pub compiled: Option<Rc<CompiledScript>>,
}

impl ProcDef {
    /// Builds a definition, compiling the body once up front.
    pub fn new(args: Vec<(String, Option<String>)>, body: String) -> Self {
        let compiled = compile(&body).ok().map(Rc::new);
        ProcDef {
            args,
            body,
            compiled,
        }
    }
}

#[derive(Clone)]
enum Command {
    Native(CmdFn),
    Proc(Rc<ProcDef>),
}

/// A variable: scalar or associative array. Slots hold shared [`Value`]s,
/// so reading a variable is an `Rc` bump and cached representations
/// (numeric, list, script) survive across reads.
#[derive(Debug, Clone)]
pub enum Var {
    /// A scalar value.
    Scalar(Value),
    /// An associative array (`name(elem)` syntax).
    Array(HashMap<String, Value>),
}

#[derive(Debug, Clone)]
enum VarSlot {
    Value(Var),
    /// A link created by `global`/`upvar` to a variable in another frame.
    Link {
        frame: usize,
        name: String,
    },
}

#[derive(Default)]
struct Frame {
    vars: FnvMap<String, VarSlot>,
    /// Number of `VarSlot::Link` entries in `vars`. The bytecode VM's
    /// per-execution variable cache is sound only while no two names in
    /// the frame can alias the same variable, i.e. while this is zero.
    links: u32,
}

/// A shared output callback, as held by [`OutputSink::Func`].
pub type OutputFn = Rc<RefCell<dyn FnMut(&str)>>;

/// Destination for `echo`/`puts` output.
#[derive(Clone)]
pub enum OutputSink {
    /// Write to the process standard output (the default).
    Stdout,
    /// Append to a shared string buffer (used by tests and captures).
    Buffer(Rc<RefCell<String>>),
    /// Invoke a callback for every write (used by the Wafe session to
    /// route output into the frontend protocol).
    Func(OutputFn),
}

/// The Tcl interpreter.
///
/// # Examples
///
/// ```
/// use wafe_tcl::Interp;
/// let mut i = Interp::new();
/// i.register("double", |_, argv| {
///     let n: i64 = argv[1].parse().unwrap_or(0);
///     Ok((n * 2).into())
/// });
/// assert_eq!(i.eval("double 21").unwrap(), "42");
/// ```
pub struct Interp {
    commands: FnvMap<String, Command>,
    /// Bumped whenever the command table changes; validates the command
    /// handles interned into argv[0] `Value`s.
    cmd_epoch: u64,
    frames: Vec<Frame>,
    /// Index of the active variable frame (changed by `uplevel`).
    active: usize,
    depth: usize,
    output: OutputSink,
    /// Deterministic pseudo-random state for `expr rand()`.
    pub(crate) rand_state: u64,
    /// Variable traces (`trace variable`): global-variable name →
    /// `(ops, script)` pairs. Scripts run with `name element op`
    /// appended, like C Tcl.
    traces: HashMap<String, Vec<(String, String)>>,
    /// Guards against trace recursion (a trace writing its own variable).
    tracing: std::cell::Cell<u32>,
    /// Parse-once cache: script text → compiled form (`None` marks text
    /// that is known not to compile, so the fallback path is taken
    /// without re-attempting compilation).
    script_cache: LruCache<Option<Rc<CompiledScript>>>,
    /// Parse-once cache for `expr` texts.
    expr_cache: LruCache<Rc<CompiledExpr>>,
    /// Telemetry store shared with the embedding (session, frontend).
    /// Disabled by default: each eval/dispatch pays one flag load.
    telemetry: Telemetry,
    /// Whether compiled scripts execute through the bytecode VM.
    /// Runtime-togglable (`interp bcdisable`) so the same binary can
    /// measure VM-on vs VM-off (the E23 bench).
    bc_enabled: bool,
    /// Bumped whenever a command the bytecode compiler inlines (`set`,
    /// `if`, `while`, …) is redefined; stamped into every compiled
    /// [`crate::bc::ByteCode`] so stale inlinings recompile instead of
    /// bypassing the new binding.
    pub(crate) bc_epoch: u64,
    /// Bytecode compile/hit/fallback/instruction counters.
    pub(crate) bc_stats: BcStats,
    /// The pristine built-in handlers for the inlined command names,
    /// captured at construction. The compiler only inlines a special form
    /// while its name still resolves to the pristine handler.
    bc_builtins: Vec<(&'static str, CmdFn)>,
    /// Per-proc time / per-opcode hit profiler (`interp profile …`).
    pub(crate) profiler: crate::profile::Profiler,
}

/// The command names the bytecode compiler lowers to dedicated opcodes.
/// Redefining any of them invalidates compiled bytecode (see
/// [`Interp::bc_epoch`]).
pub(crate) const BC_SPECIAL_NAMES: [&str; 9] = [
    "set", "incr", "expr", "if", "while", "for", "foreach", "break", "continue",
];

/// Counters of the bytecode layer (see [`crate::bc`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BcStats {
    /// Scripts lowered to bytecode (includes epoch-forced recompiles).
    pub compiles: u64,
    /// Executions served by an already-compiled bytecode body.
    pub hits: u64,
    /// Executions that fell back to the tree-walking evaluator because
    /// the script was declined by the compiler.
    pub fallbacks: u64,
    /// Total VM instructions dispatched.
    pub instructions: u64,
}

/// A script readied for repeated evaluation: either its parse-once
/// compiled form, or (for uncompilable text, or with the cache disabled)
/// the raw source re-parsed on every run — exactly the legacy path.
#[derive(Clone)]
pub enum Prepared {
    /// Compiled once; each run only substitutes.
    Compiled(Rc<CompiledScript>),
    /// Re-parsed on every run.
    Source(String),
}

/// A snapshot of the interpreter's parse-cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Script-cache lookups that found a compiled entry.
    pub script_hits: u64,
    /// Script-cache lookups that missed.
    pub script_misses: u64,
    /// Live script-cache entries.
    pub script_entries: usize,
    /// Script-cache evictions under the LRU bound.
    pub script_evictions: u64,
    /// Expression-cache hits.
    pub expr_hits: u64,
    /// Expression-cache misses.
    pub expr_misses: u64,
    /// Live expression-cache entries.
    pub expr_entries: usize,
    /// Expression-cache evictions.
    pub expr_evictions: u64,
    /// The configured bound (0 = caching disabled).
    pub limit: usize,
    /// Executions served from already-compiled bytecode — counted apart
    /// from `script_hits` (a parse-cache hit), so the two layers are
    /// distinguishable.
    pub bc_hits: u64,
    /// Scripts lowered to bytecode.
    pub bc_compiles: u64,
    /// Bytecode-declined executions that tree-walked instead.
    pub bc_fallbacks: u64,
}

impl Default for Interp {
    fn default() -> Self {
        Self::new()
    }
}

/// The one-line script preview used as `tcl.eval` span detail: at most
/// 32 characters, whitespace flattened so span trees stay one line per
/// span.
fn span_preview(script: &str) -> String {
    let mut out = String::new();
    for (i, c) in script.chars().enumerate() {
        if i == 32 {
            out.push_str("...");
            break;
        }
        out.push(if c == '\n' || c == '\r' || c == '\t' {
            ' '
        } else {
            c
        });
    }
    out
}

impl Interp {
    /// Creates an interpreter with all built-in commands registered.
    pub fn new() -> Self {
        let mut interp = Interp {
            commands: FnvMap::default(),
            cmd_epoch: 0,
            frames: vec![Frame::default()],
            active: 0,
            depth: 0,
            output: OutputSink::Stdout,
            rand_state: 0x9e3779b97f4a7c15,
            traces: HashMap::new(),
            tracing: std::cell::Cell::new(0),
            script_cache: LruCache::new(DEFAULT_CACHE_LIMIT),
            expr_cache: LruCache::new(DEFAULT_CACHE_LIMIT),
            telemetry: Telemetry::new(),
            bc_enabled: true,
            bc_epoch: 0,
            bc_stats: BcStats::default(),
            bc_builtins: Vec::new(),
            profiler: crate::profile::Profiler::default(),
        };
        crate::commands::register_all(&mut interp);
        // Snapshot the pristine handlers of the inlinable commands: the
        // bytecode compiler inlines `set`/`if`/`while`/… only while the
        // name still resolves to exactly this handler.
        interp.bc_builtins = BC_SPECIAL_NAMES
            .iter()
            .filter_map(|&name| match interp.commands.get(name) {
                Some(Command::Native(f)) => Some((name, f.clone())),
                _ => None,
            })
            .collect();
        interp
    }

    /// True while `name` still resolves to the pristine built-in captured
    /// at construction (the bytecode compiler's inlining precondition).
    pub(crate) fn bc_special_pristine(&self, name: &str) -> bool {
        self.bc_builtins.iter().any(|(n, f)| {
            *n == name
                && matches!(self.commands.get(name),
                    Some(Command::Native(g)) if Rc::ptr_eq(f, g))
        })
    }

    /// Bumps the bytecode epoch when a compiler-inlined command name is
    /// rebound, so compiled scripts pick up the new binding.
    fn note_bc_sensitive(&mut self, name: &str) {
        if BC_SPECIAL_NAMES.contains(&name) {
            self.bc_epoch += 1;
        }
    }

    /// Registers a native command, replacing any previous binding
    /// (the analogue of `Tcl_CreateCommand`).
    pub fn register<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&mut Interp, &[Value]) -> TclResult<Value> + 'static,
    {
        self.cmd_epoch += 1;
        self.note_bc_sensitive(name);
        self.commands
            .insert(name.to_string(), Command::Native(Rc::new(f)));
    }

    /// Registers a native command from an already-shared handler. Useful
    /// to register one handler under several names (the paper notes "Tcl
    /// allows to register the same command under various names").
    pub fn register_shared(&mut self, name: &str, f: CmdFn) {
        self.cmd_epoch += 1;
        self.note_bc_sensitive(name);
        self.commands.insert(name.to_string(), Command::Native(f));
    }

    /// Removes a command; returns true if it existed.
    pub fn unregister(&mut self, name: &str) -> bool {
        self.cmd_epoch += 1;
        self.note_bc_sensitive(name);
        self.commands.remove(name).is_some()
    }

    /// Renames a command (`rename old new`); empty `new` deletes.
    pub fn rename_command(&mut self, old: &str, new: &str) -> TclResult<()> {
        self.cmd_epoch += 1;
        self.note_bc_sensitive(old);
        self.note_bc_sensitive(new);
        let cmd = self.commands.remove(old).ok_or_else(|| {
            TclError::Error(format!("can't rename \"{old}\": command doesn't exist"))
        })?;
        if !new.is_empty() {
            if self.commands.contains_key(new) {
                self.commands.insert(old.into(), cmd);
                return Err(TclError::Error(format!(
                    "can't rename to \"{new}\": command already exists"
                )));
            }
            self.commands.insert(new.to_string(), cmd);
        }
        Ok(())
    }

    /// True if a command (native or proc) with this name exists.
    pub fn has_command(&self, name: &str) -> bool {
        self.commands.contains_key(name)
    }

    /// Names of all registered commands, unsorted.
    pub fn command_names(&self) -> Vec<String> {
        self.commands.keys().cloned().collect()
    }

    /// Names of all user-defined procedures.
    pub fn proc_names(&self) -> Vec<String> {
        self.commands
            .iter()
            .filter(|(_, c)| matches!(c, Command::Proc(_)))
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Returns a proc definition, if `name` is a proc.
    pub fn get_proc(&self, name: &str) -> Option<Rc<ProcDef>> {
        match self.commands.get(name) {
            Some(Command::Proc(p)) => Some(p.clone()),
            _ => None,
        }
    }

    /// Defines a procedure (the `proc` command calls this).
    pub fn define_proc(&mut self, name: &str, def: ProcDef) {
        self.cmd_epoch += 1;
        self.note_bc_sensitive(name);
        self.commands
            .insert(name.to_string(), Command::Proc(Rc::new(def)));
    }

    /// Sets the output sink used by `echo` and `puts`.
    pub fn set_output(&mut self, sink: OutputSink) {
        self.output = sink;
    }

    /// Writes a string to the interpreter's output sink.
    pub fn write_output(&mut self, s: &str) {
        match &self.output {
            OutputSink::Stdout => print!("{s}"),
            OutputSink::Buffer(buf) => buf.borrow_mut().push_str(s),
            OutputSink::Func(f) => (f.borrow_mut())(s),
        }
    }

    // ----- variables --------------------------------------------------

    /// Current procedure-call level (0 = global).
    pub fn level(&self) -> usize {
        self.active
    }

    /// Follows `global`/`upvar` links to the owning frame. The common
    /// case (no link) borrows the caller's name — no allocation on the
    /// variable-access hot path.
    fn resolve<'a>(&self, mut frame: usize, name: &'a str) -> (usize, Cow<'a, str>) {
        let mut name: Cow<'a, str> = Cow::Borrowed(name);
        loop {
            match self.frames[frame].vars.get(name.as_ref()) {
                Some(VarSlot::Link { frame: f, name: n }) => {
                    let (f, n) = (*f, n.clone());
                    frame = f;
                    name = Cow::Owned(n);
                }
                _ => return (frame, name),
            }
        }
    }

    /// Reads a scalar variable in the active frame. The returned [`Value`]
    /// shares the variable's representation — cloning is an `Rc` bump and
    /// any cached numeric/list rep comes along for free.
    pub fn get_var(&self, name: &str) -> TclResult<Value> {
        self.get_var_ref(name).cloned()
    }

    /// Reads a scalar variable without cloning its value (the expression
    /// evaluator's hot path — the borrow ends before any mutation).
    pub(crate) fn get_var_ref(&self, name: &str) -> TclResult<&Value> {
        let (f, n) = self.resolve(self.active, name);
        match self.frames[f].vars.get(n.as_ref()) {
            Some(VarSlot::Value(Var::Scalar(s))) => Ok(s),
            Some(VarSlot::Value(Var::Array(_))) => Err(TclError::Error(format!(
                "can't read \"{name}\": variable is array"
            ))),
            _ => Err(TclError::Error(format!(
                "can't read \"{name}\": no such variable"
            ))),
        }
    }

    /// Reads an array element in the active frame.
    pub fn get_elem(&self, name: &str, index: &str) -> TclResult<Value> {
        self.get_elem_ref(name, index).cloned()
    }

    /// Reads an array element without cloning its value.
    pub(crate) fn get_elem_ref(&self, name: &str, index: &str) -> TclResult<&Value> {
        let (f, n) = self.resolve(self.active, name);
        match self.frames[f].vars.get(n.as_ref()) {
            Some(VarSlot::Value(Var::Array(map))) => map.get(index).ok_or_else(|| {
                TclError::Error(format!(
                    "can't read \"{name}({index})\": no such element in array"
                ))
            }),
            Some(VarSlot::Value(Var::Scalar(_))) => Err(TclError::Error(format!(
                "can't read \"{name}({index})\": variable isn't array"
            ))),
            _ => Err(TclError::Error(format!(
                "can't read \"{name}({index})\": no such variable"
            ))),
        }
    }

    /// Sets a scalar variable in the active frame. Accepts anything
    /// convertible to a [`Value`] (`&str`, `String`, `i64`, a shared
    /// `Value`…); storing a `Value` preserves its cached representations.
    pub fn set_var(&mut self, name: &str, value: impl Into<Value>) -> TclResult<()> {
        let value = value.into();
        let (f, n) = self.resolve(self.active, name);
        match self.frames[f].vars.get_mut(n.as_ref()) {
            Some(VarSlot::Value(Var::Array(_))) => Err(TclError::Error(format!(
                "can't set \"{name}\": variable is array"
            ))),
            Some(VarSlot::Value(Var::Scalar(s))) => {
                *s = value;
                self.fire_traces(&n, "", 'w');
                Ok(())
            }
            Some(VarSlot::Link { .. }) => unreachable!("resolve() follows links"),
            None => {
                self.frames[f]
                    .vars
                    .insert(n.to_string(), VarSlot::Value(Var::Scalar(value)));
                self.fire_traces(&n, "", 'w');
                Ok(())
            }
        }
    }

    /// Runs the traces registered for `name` matching operation `op`
    /// (`w` write, `u` unset). Trace-script errors are discarded, and
    /// recursion is bounded so a trace writing its own variable cannot
    /// loop forever.
    fn fire_traces(&mut self, name: &str, elem: &str, op: char) {
        if self.traces.is_empty() || self.tracing.get() >= 8 {
            return;
        }
        let scripts: Vec<String> = match self.traces.get(name) {
            Some(list) => list
                .iter()
                .filter(|(ops, _)| ops.contains(op))
                .map(|(_, s)| s.clone())
                .collect(),
            None => return,
        };
        if scripts.is_empty() {
            return;
        }
        self.tracing.set(self.tracing.get() + 1);
        for script in scripts {
            let full = format!(
                "{script} {} {} {}",
                crate::list::list_quote(name),
                crate::list::list_quote(elem),
                op
            );
            let _ = self.eval(&full);
        }
        self.tracing.set(self.tracing.get() - 1);
    }

    /// Registers a variable trace: `script` runs (with `name element op`
    /// appended) on every matching operation.
    pub fn add_trace(&mut self, name: &str, ops: &str, script: &str) {
        let (_, n) = self.resolve(self.active, name);
        self.traces
            .entry(n.into_owned())
            .or_default()
            .push((ops.to_string(), script.to_string()));
    }

    /// Removes a matching trace; returns true if one was removed.
    pub fn remove_trace(&mut self, name: &str, ops: &str, script: &str) -> bool {
        let (_, n) = self.resolve(self.active, name);
        if let Some(list) = self.traces.get_mut(n.as_ref()) {
            if let Some(ix) = list.iter().position(|(o, s)| o == ops && s == script) {
                list.remove(ix);
                return true;
            }
        }
        false
    }

    /// Lists the traces on a variable as `(ops, script)` pairs.
    pub fn trace_info(&self, name: &str) -> Vec<(String, String)> {
        let (_, n) = self.resolve(self.active, name);
        self.traces.get(n.as_ref()).cloned().unwrap_or_default()
    }

    /// Sets an array element in the active frame.
    pub fn set_elem(&mut self, name: &str, index: &str, value: impl Into<Value>) -> TclResult<()> {
        let value = value.into();
        let (f, n) = self.resolve(self.active, name);
        match self.frames[f]
            .vars
            .entry(n.to_string())
            .or_insert_with(|| VarSlot::Value(Var::Array(HashMap::new())))
        {
            VarSlot::Value(Var::Array(map)) => {
                map.insert(index.to_string(), value);
                self.fire_traces(&n, index, 'w');
                Ok(())
            }
            VarSlot::Value(Var::Scalar(_)) => Err(TclError::Error(format!(
                "can't set \"{name}({index})\": variable isn't array"
            ))),
            VarSlot::Link { .. } => unreachable!("resolve() follows links"),
        }
    }

    /// Unsets a variable (scalar or whole array) in the active frame.
    pub fn unset_var(&mut self, name: &str) -> TclResult<()> {
        let (f, n) = self.resolve(self.active, name);
        if self.frames[f].vars.remove(n.as_ref()).is_none() {
            return Err(TclError::Error(format!(
                "can't unset \"{name}\": no such variable"
            )));
        }
        self.fire_traces(&n, "", 'u');
        // Also remove the link itself if `name` was a link in the active frame.
        if f != self.active || n != name {
            if let Some(VarSlot::Link { .. }) = self.frames[self.active].vars.remove(name) {
                self.frames[self.active].links -= 1;
            }
        }
        Ok(())
    }

    /// Unsets one array element.
    pub fn unset_elem(&mut self, name: &str, index: &str) -> TclResult<()> {
        let (f, n) = self.resolve(self.active, name);
        match self.frames[f].vars.get_mut(n.as_ref()) {
            Some(VarSlot::Value(Var::Array(map))) => {
                if map.remove(index).is_none() {
                    return Err(TclError::Error(format!(
                        "can't unset \"{name}({index})\": no such element in array"
                    )));
                }
                Ok(())
            }
            _ => Err(TclError::Error(format!(
                "can't unset \"{name}({index})\": no such variable"
            ))),
        }
    }

    /// True if the variable (scalar or array) exists in the active frame.
    pub fn var_exists(&self, name: &str) -> bool {
        let (f, n) = self.resolve(self.active, name);
        self.frames[f].vars.contains_key(n.as_ref())
    }

    /// True if the variable exists and is an array.
    pub fn is_array(&self, name: &str) -> bool {
        let (f, n) = self.resolve(self.active, name);
        matches!(
            self.frames[f].vars.get(n.as_ref()),
            Some(VarSlot::Value(Var::Array(_)))
        )
    }

    /// Returns the element names of an array, unsorted.
    pub fn array_names(&self, name: &str) -> TclResult<Vec<String>> {
        let (f, n) = self.resolve(self.active, name);
        match self.frames[f].vars.get(n.as_ref()) {
            Some(VarSlot::Value(Var::Array(map))) => Ok(map.keys().cloned().collect()),
            _ => Err(TclError::Error(format!("\"{name}\" isn't an array"))),
        }
    }

    /// Names of variables visible in the active frame.
    pub fn var_names(&self) -> Vec<String> {
        self.frames[self.active].vars.keys().cloned().collect()
    }

    /// Names of global variables.
    pub fn global_names(&self) -> Vec<String> {
        self.frames[0].vars.keys().cloned().collect()
    }

    /// Creates a link named `local` in the active frame to `name` in
    /// `target_frame` (used by `global` and `upvar`).
    pub fn link_var(&mut self, local: &str, target_frame: usize, name: &str) -> TclResult<()> {
        if target_frame >= self.frames.len() {
            return Err(TclError::Error(format!(
                "bad level for variable link to \"{name}\""
            )));
        }
        let (tf, tn) = self.resolve(target_frame, name);
        if tf == self.active && tn == local {
            return Err(TclError::Error(format!(
                "can't upvar from variable to itself ({local})"
            )));
        }
        let old = self.frames[self.active].vars.insert(
            local.to_string(),
            VarSlot::Link {
                frame: tf,
                name: tn.into_owned(),
            },
        );
        if !matches!(old, Some(VarSlot::Link { .. })) {
            self.frames[self.active].links += 1;
        }
        Ok(())
    }

    /// True while the bytecode VM may cache scalar lookups of the active
    /// frame: no `global`/`upvar` links exist, so distinct names cannot
    /// alias one variable.
    pub(crate) fn bc_frame_cacheable(&self) -> bool {
        self.frames[self.active].links == 0
    }

    /// True if any variable write traces are registered (their scripts
    /// may touch arbitrary variables, so the VM must drop its cache).
    pub(crate) fn has_traces(&self) -> bool {
        !self.traces.is_empty()
    }

    // ----- evaluation -------------------------------------------------

    /// Evaluates a script and returns the result of its last command.
    ///
    /// Already-seen scripts skip lexing entirely: the text is looked up in
    /// the interpreter's parse-once cache and only substitution runs.
    pub fn eval(&mut self, script: &str) -> TclResult<Value> {
        // One enabled-flag load when telemetry is off; nested evals
        // (bracket substitution, loop bodies) each count as one eval.
        let timer = self.telemetry.timer();
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            self.depth -= 1;
            return Err(TclError::error(
                "too many nested calls to Tcl_Eval (infinite loop?)",
            ));
        }
        let span = self
            .telemetry
            .span_begin("tcl.eval", || span_preview(script));
        let r = match self.lookup_or_compile(script) {
            Some(c) => self.eval_compiled_inner(&c),
            None => self.eval_inner(script),
        };
        if span {
            self.telemetry.span_end();
        }
        self.depth -= 1;
        if timer.is_some() {
            self.telemetry.count("tcl.evals");
            self.telemetry.observe_since("tcl.eval", timer);
        }
        r
    }

    /// Evaluates an already-compiled script (same nesting accounting as
    /// [`Interp::eval`]).
    pub fn eval_compiled(&mut self, script: &Rc<CompiledScript>) -> TclResult<Value> {
        let timer = self.telemetry.timer();
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            self.depth -= 1;
            return Err(TclError::error(
                "too many nested calls to Tcl_Eval (infinite loop?)",
            ));
        }
        // Our own handle: cache eviction during evaluation must not be
        // able to drop the script out from under us.
        let script = script.clone();
        let span = self.telemetry.span_begin("tcl.eval", String::new);
        let r = self.eval_compiled_inner(&script);
        if span {
            self.telemetry.span_end();
        }
        self.depth -= 1;
        if timer.is_some() {
            self.telemetry.count("tcl.evals");
            self.telemetry.observe_since("tcl.eval", timer);
        }
        r
    }

    /// Evaluates a script held in a [`Value`], caching the compiled form
    /// in the value itself. A braced body that is a shared literal of a
    /// compiled script (e.g. `catch {...}` inside a loop) hits the rep on
    /// every iteration after the first — no hashing, no text lookup.
    pub fn eval_value(&mut self, script: &Value) -> TclResult<Value> {
        if let Some(c) = script.cached_script() {
            return self.eval_compiled(&c);
        }
        match self.lookup_or_compile(script.as_str()) {
            Some(c) => {
                script.cache_script(c.clone());
                self.eval_compiled(&c)
            }
            None => self.eval(script.as_str()),
        }
    }

    /// Readies a script for repeated evaluation (loop bodies): compiled
    /// when possible, raw source otherwise. With the cache disabled
    /// (`interp cachelimit 0`) this always yields the re-parsing form.
    pub fn prepare(&mut self, script: &str) -> Prepared {
        match self.lookup_or_compile(script) {
            Some(c) => Prepared::Compiled(c),
            None => Prepared::Source(script.to_string()),
        }
    }

    /// [`Interp::prepare`] for a script held in a [`Value`]: consults and
    /// populates the value's own compiled-script rep, skipping the text
    /// cache lookup when the same `Value` (a shared loop-body literal) is
    /// prepared again.
    pub fn prepare_value(&mut self, script: &Value) -> Prepared {
        if let Some(c) = script.cached_script() {
            return Prepared::Compiled(c);
        }
        match self.lookup_or_compile(script.as_str()) {
            Some(c) => {
                script.cache_script(c.clone());
                Prepared::Compiled(c)
            }
            None => Prepared::Source(script.as_str().to_string()),
        }
    }

    /// Runs a [`Prepared`] script.
    pub fn run_prepared(&mut self, prepared: &Prepared) -> TclResult<Value> {
        match prepared {
            Prepared::Compiled(c) => self.eval_compiled(c),
            Prepared::Source(s) => self.eval(s),
        }
    }

    /// Cache lookup + compile-on-miss. Returns `None` when the text does
    /// not compile (caller falls back to the legacy evaluator) or when
    /// caching is disabled.
    fn lookup_or_compile(&mut self, script: &str) -> Option<Rc<CompiledScript>> {
        if self.script_cache.limit() == 0 {
            return None;
        }
        if script.len() > MAX_CACHED_SCRIPT_LEN {
            // Compile (parse-once still pays off within the one run via
            // proc bodies and loops) but do not occupy the cache.
            return compile(script).ok().map(Rc::new);
        }
        if let Some(entry) = self.script_cache.get(script) {
            return entry;
        }
        let compiled = compile(script).ok().map(Rc::new);
        self.script_cache.insert(script, compiled.clone());
        compiled
    }

    // ----- telemetry --------------------------------------------------

    /// The interpreter's telemetry handle (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Replaces the telemetry handle, typically with one shared across
    /// the whole stack (interpreter, toolkit, pipe protocol) so a single
    /// snapshot sees every layer.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    // ----- parse-cache introspection ---------------------------------

    /// Counters and sizes of the parse-once caches.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            script_hits: self.script_cache.hits(),
            script_misses: self.script_cache.misses(),
            script_entries: self.script_cache.len(),
            script_evictions: self.script_cache.evictions(),
            expr_hits: self.expr_cache.hits(),
            expr_misses: self.expr_cache.misses(),
            expr_entries: self.expr_cache.len(),
            expr_evictions: self.expr_cache.evictions(),
            limit: self.script_cache.limit(),
            bc_hits: self.bc_stats.hits,
            bc_compiles: self.bc_stats.compiles,
            bc_fallbacks: self.bc_stats.fallbacks,
        }
    }

    // ----- bytecode layer --------------------------------------------

    /// Counters of the bytecode compiler and VM.
    pub fn bc_stats(&self) -> BcStats {
        self.bc_stats
    }

    /// Enables/disables the bytecode VM (the E23 same-binary baseline
    /// switch, and `interp bcdisable`/`bcenable`). Returns the previous
    /// setting. Compiled bytecode stays cached while disabled.
    pub fn set_bc_enabled(&mut self, on: bool) -> bool {
        std::mem::replace(&mut self.bc_enabled, on)
    }

    /// True while compiled scripts execute through the bytecode VM.
    pub fn bc_enabled(&self) -> bool {
        self.bc_enabled
    }

    /// Empties both parse caches (counters are kept).
    pub fn cache_clear(&mut self) {
        self.script_cache.clear();
        self.expr_cache.clear();
    }

    /// The cache bound; 0 means caching is disabled.
    pub fn cache_limit(&self) -> usize {
        self.script_cache.limit()
    }

    /// Sets the cache bound for both caches, trimming immediately.
    /// `0` disables the parse-once layer entirely — every evaluation
    /// re-parses, exactly like Tcl 6.x (used as the benchmark baseline).
    pub fn set_cache_limit(&mut self, limit: usize) {
        self.script_cache.set_limit(limit);
        self.expr_cache.set_limit(limit);
    }

    /// True when the parse-once layer is active.
    pub fn cache_enabled(&self) -> bool {
        self.script_cache.limit() > 0
    }

    pub(crate) fn expr_cache_get(&mut self, text: &str) -> Option<Rc<CompiledExpr>> {
        if self.expr_cache.limit() == 0 || text.len() > MAX_CACHED_SCRIPT_LEN {
            return None;
        }
        self.expr_cache.get(text)
    }

    pub(crate) fn expr_cache_put(&mut self, text: &str, compiled: Rc<CompiledExpr>) {
        if text.len() > MAX_CACHED_SCRIPT_LEN {
            return;
        }
        self.expr_cache.insert(text, compiled);
    }

    // ----- compiled evaluation ---------------------------------------

    fn eval_compiled_inner(&mut self, script: &CompiledScript) -> TclResult<Value> {
        // Bytecode fast path: lower the script once and dispatch a flat
        // instruction stream. The compiler declines rather than guesses —
        // a `None` here (or `bcdisable`, or the Tcl 6.x `cachelimit 0`
        // baseline, or recursion past `BC_MAX_DEPTH`) means the
        // tree-walker below runs instead.
        if self.bc_enabled && self.depth <= BC_MAX_DEPTH && self.cache_enabled() {
            if let Some(code) = crate::bc::bytecode_for(self, script) {
                return crate::bc::execute(self, &code);
            }
        }
        let mut result = Value::empty();
        for cmd in &script.commands {
            result = match &cmd.literal {
                // All-literal command: substitution is the identity, so
                // the precomputed argv is invoked with no allocation. The
                // shared literal `Value`s accumulate cached reps (numeric,
                // interned command) across iterations.
                Some(words) => self.invoke(words)?,
                None => {
                    let mut words: Vec<Value> = Vec::with_capacity(cmd.words.len());
                    for w in &cmd.words {
                        words.push(self.subst_token(w)?);
                    }
                    self.invoke(&words)?
                }
            };
        }
        Ok(result)
    }

    /// Performs the per-evaluation substitution step for one token.
    fn subst_token(&mut self, token: &Token) -> TclResult<Value> {
        match token {
            Token::Literal(v) => Ok(v.clone()),
            Token::VarSub(name, None) => self.get_var(name),
            Token::VarSub(name, Some(index)) => {
                let mut idx = String::new();
                for part in index {
                    idx.push_str(&self.subst_token(part)?);
                }
                self.get_elem(name, &idx)
            }
            Token::BracketSub(inner) => self.eval_compiled(inner),
            Token::Compound(parts) => {
                let mut out = String::new();
                for part in parts {
                    out.push_str(&self.subst_token(part)?);
                }
                Ok(Value::from(out))
            }
        }
    }

    /// Evaluates a script at a given frame level (used by `uplevel`).
    pub fn eval_at_level(&mut self, level: usize, script: &str) -> TclResult<Value> {
        if level >= self.frames.len() {
            return Err(TclError::Error(format!("bad level \"{level}\"")));
        }
        let saved = self.active;
        self.active = level;
        let r = self.eval(script);
        self.active = saved;
        r
    }

    fn eval_inner(&mut self, script: &str) -> TclResult<Value> {
        let chars: Vec<char> = script.chars().collect();
        let mut pos = 0usize;
        let mut result = Value::empty();
        while pos < chars.len() {
            let (words, next) = self.parse_command(&chars, pos)?;
            pos = next;
            if words.is_empty() {
                continue;
            }
            result = self.invoke(&words)?;
        }
        Ok(result)
    }

    /// Invokes a fully-substituted command word list.
    ///
    /// Unknown commands fall back to the `unknown` procedure when one is
    /// defined (classic Tcl: `proc unknown {args} {...}` intercepts every
    /// unresolved command with the original words as its arguments).
    pub fn invoke(&mut self, words: &[Value]) -> TclResult<Value> {
        let timer = self.telemetry.timer();
        let r = self.invoke_inner(words);
        if timer.is_some() {
            self.telemetry.count("tcl.dispatches");
            self.telemetry.observe_since("tcl.dispatch", timer);
        }
        r
    }

    fn invoke_inner(&mut self, words: &[Value]) -> TclResult<Value> {
        // Interned fast path: a command-name Value that already resolved
        // at the current epoch skips hashing the name entirely. Weak
        // handles fail closed — a dead upgrade falls through to lookup.
        if let Some(intern) = words[0].cached_cmd(self.cmd_epoch) {
            match intern {
                CmdIntern::Native(w) => {
                    if let Some(f) = w.upgrade() {
                        return f(self, words);
                    }
                }
                CmdIntern::Proc(w) => {
                    if let Some(p) = w.upgrade() {
                        return self.call_proc(&words[0], &p, &words[1..]);
                    }
                }
            }
        }
        let cmd = self.commands.get(words[0].as_str()).cloned();
        match cmd {
            Some(Command::Native(f)) => {
                words[0].intern_cmd(self.cmd_epoch, CmdIntern::Native(Rc::downgrade(&f)));
                f(self, words)
            }
            Some(Command::Proc(p)) => {
                words[0].intern_cmd(self.cmd_epoch, CmdIntern::Proc(Rc::downgrade(&p)));
                self.call_proc(&words[0], &p, &words[1..])
            }
            None => {
                if words[0] != "unknown" {
                    if let Some(Command::Proc(p)) = self.commands.get("unknown").cloned() {
                        return self.call_proc("unknown", &p, words);
                    }
                }
                Err(TclError::Error(format!(
                    "invalid command name \"{}\"",
                    words[0]
                )))
            }
        }
    }

    fn call_proc(&mut self, name: &str, p: &ProcDef, actuals: &[Value]) -> TclResult<Value> {
        let mut frame = Frame::default();
        let mut ai = 0usize;
        for (fi, (formal, default)) in p.args.iter().enumerate() {
            if formal == "args" && fi == p.args.len() - 1 {
                // The rest-args list is built as a shared list rep; it
                // renders to the canonical `list_join` form on demand.
                let rest = Value::from_list(actuals[ai.min(actuals.len())..].to_vec());
                frame
                    .vars
                    .insert("args".into(), VarSlot::Value(Var::Scalar(rest)));
                ai = actuals.len();
                break;
            }
            if ai < actuals.len() {
                frame.vars.insert(
                    formal.clone(),
                    VarSlot::Value(Var::Scalar(actuals[ai].clone())),
                );
                ai += 1;
            } else if let Some(d) = default {
                frame.vars.insert(
                    formal.clone(),
                    VarSlot::Value(Var::Scalar(Value::from(d.as_str()))),
                );
            } else {
                return Err(TclError::Error(format!(
                    "no value given for parameter \"{formal}\" to \"{name}\""
                )));
            }
        }
        if ai < actuals.len() {
            return Err(TclError::Error(format!(
                "called \"{name}\" with too many arguments"
            )));
        }
        self.frames.push(frame);
        let saved_active = self.active;
        self.active = self.frames.len() - 1;
        let span = self.telemetry.span_begin("tcl.proc", || name.to_string());
        let prof = self.profiler.enter(name);
        let r = match (&p.compiled, self.cache_enabled()) {
            (Some(c), true) => self.eval_compiled(c),
            _ => self.eval(&p.body),
        };
        if prof {
            self.profiler.exit();
        }
        if span {
            self.telemetry.span_end();
        }
        self.frames.pop();
        self.active = saved_active;
        match r {
            Ok(v) => Ok(v),
            Err(TclError::Return(v)) => Ok(Value::from(v)),
            Err(TclError::Break) => Err(TclError::error("invoked \"break\" outside of a loop")),
            Err(TclError::Continue) => {
                Err(TclError::error("invoked \"continue\" outside of a loop"))
            }
            Err(e) => Err(e),
        }
    }

    /// Parses one command starting at `pos`, performing all substitutions.
    ///
    /// Returns the words and the position just past the command
    /// terminator. An empty word list means the segment held only a
    /// separator or comment.
    fn parse_command(&mut self, chars: &[char], mut pos: usize) -> TclResult<(Vec<Value>, usize)> {
        let mut words: Vec<Value> = Vec::new();
        // Skip leading white space (not newlines — those terminate).
        loop {
            while pos < chars.len() && (chars[pos] == ' ' || chars[pos] == '\t') {
                pos += 1;
            }
            if pos + 1 < chars.len() && chars[pos] == '\\' && chars[pos + 1] == '\n' {
                let (_, next) = parse_backslash(chars, pos);
                pos = next;
                continue;
            }
            break;
        }
        if pos >= chars.len() {
            return Ok((words, pos));
        }
        if chars[pos] == '\n' || chars[pos] == ';' {
            return Ok((words, pos + 1));
        }
        if chars[pos] == '#' {
            // Comment to end of line; backslash-newline continues it.
            while pos < chars.len() && chars[pos] != '\n' {
                if chars[pos] == '\\' && pos + 1 < chars.len() {
                    pos += 1;
                }
                pos += 1;
            }
            return Ok((words, (pos + 1).min(chars.len())));
        }
        loop {
            // Parse one word.
            let word;
            match chars[pos] {
                '{' => {
                    let end = find_matching_brace(chars, pos)?;
                    word = chars[pos + 1..end].iter().collect::<String>();
                    pos = end + 1;
                    if pos < chars.len()
                        && !matches!(chars[pos], ' ' | '\t' | '\n' | ';')
                        && !(chars[pos] == '\\' && pos + 1 < chars.len() && chars[pos + 1] == '\n')
                    {
                        return Err(TclError::error("extra characters after close-brace"));
                    }
                }
                '"' => {
                    let (w, next) = self.parse_quoted(chars, pos + 1)?;
                    word = w;
                    pos = next;
                    if pos < chars.len()
                        && !matches!(chars[pos], ' ' | '\t' | '\n' | ';')
                        && !(chars[pos] == '\\' && pos + 1 < chars.len() && chars[pos + 1] == '\n')
                    {
                        return Err(TclError::error("extra characters after close-quote"));
                    }
                }
                _ => {
                    let (w, next) = self.parse_bare(chars, pos)?;
                    word = w;
                    pos = next;
                }
            }
            words.push(Value::from(word));
            // Skip intra-command white space.
            loop {
                while pos < chars.len() && (chars[pos] == ' ' || chars[pos] == '\t') {
                    pos += 1;
                }
                if pos + 1 < chars.len() && chars[pos] == '\\' && chars[pos + 1] == '\n' {
                    let (_, next) = parse_backslash(chars, pos);
                    pos = next;
                    continue;
                }
                break;
            }
            if pos >= chars.len() {
                return Ok((words, pos));
            }
            if chars[pos] == '\n' || chars[pos] == ';' {
                return Ok((words, pos + 1));
            }
        }
    }

    /// Parses a double-quoted word starting just after the opening quote.
    fn parse_quoted(&mut self, chars: &[char], mut pos: usize) -> TclResult<(String, usize)> {
        let mut out = String::new();
        while pos < chars.len() {
            match chars[pos] {
                '"' => return Ok((out, pos + 1)),
                '\\' => {
                    let (s, next) = parse_backslash(chars, pos);
                    out.push_str(&s);
                    pos = next;
                }
                '$' => {
                    let (s, next) = self.substitute_dollar(chars, pos)?;
                    out.push_str(&s);
                    pos = next;
                }
                '[' => {
                    let end = find_matching_bracket(chars, pos)?;
                    let script: String = chars[pos + 1..end].iter().collect();
                    out.push_str(&self.eval(&script)?);
                    pos = end + 1;
                }
                c => {
                    out.push(c);
                    pos += 1;
                }
            }
        }
        Err(TclError::error("missing \""))
    }

    /// Parses a bare word starting at `pos`.
    fn parse_bare(&mut self, chars: &[char], mut pos: usize) -> TclResult<(String, usize)> {
        let mut out = String::new();
        while pos < chars.len() {
            match chars[pos] {
                ' ' | '\t' | '\n' | ';' => break,
                '\\' => {
                    if pos + 1 < chars.len() && chars[pos + 1] == '\n' {
                        break; // Backslash-newline ends the word (acts as separator).
                    }
                    let (s, next) = parse_backslash(chars, pos);
                    out.push_str(&s);
                    pos = next;
                }
                '$' => {
                    let (s, next) = self.substitute_dollar(chars, pos)?;
                    out.push_str(&s);
                    pos = next;
                }
                '[' => {
                    let end = find_matching_bracket(chars, pos)?;
                    let script: String = chars[pos + 1..end].iter().collect();
                    out.push_str(&self.eval(&script)?);
                    pos = end + 1;
                }
                c => {
                    out.push(c);
                    pos += 1;
                }
            }
        }
        Ok((out, pos))
    }

    /// Substitutes a `$`-form starting at `chars[pos]` (the `$`).
    fn substitute_dollar(&mut self, chars: &[char], pos: usize) -> TclResult<(String, usize)> {
        let (name, index, next) = scan_varname(chars, pos + 1);
        if name.is_empty() {
            return Ok(("$".into(), pos + 1));
        }
        match index {
            None => Ok((self.get_var(&name)?.to_string(), next)),
            Some(raw) => {
                // The index itself undergoes one round of substitution.
                let idx = self.substitute_all(&raw)?;
                Ok((self.get_elem(&name, &idx)?.to_string(), next))
            }
        }
    }

    /// Performs `$`, `[]` and backslash substitution on an entire string
    /// (the behaviour of array-index text; also used by `expr`).
    pub fn substitute_all(&mut self, s: &str) -> TclResult<String> {
        let chars: Vec<char> = s.chars().collect();
        let mut out = String::new();
        let mut pos = 0usize;
        while pos < chars.len() {
            match chars[pos] {
                '\\' => {
                    let (t, next) = parse_backslash(&chars, pos);
                    out.push_str(&t);
                    pos = next;
                }
                '$' => {
                    let (t, next) = self.substitute_dollar(&chars, pos)?;
                    out.push_str(&t);
                    pos = next;
                }
                '[' => {
                    let end = find_matching_bracket(&chars, pos)?;
                    let script: String = chars[pos + 1..end].iter().collect();
                    out.push_str(&self.eval(&script)?);
                    pos = end + 1;
                }
                c => {
                    out.push(c);
                    pos += 1;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut i = Interp::new();
        assert_eq!(i.eval("set x hello").unwrap(), "hello");
        assert_eq!(i.eval("set x").unwrap(), "hello");
        assert_eq!(i.get_var("x").unwrap(), "hello");
    }

    #[test]
    fn variable_substitution_forms() {
        let mut i = Interp::new();
        i.set_var("a", "1").unwrap();
        i.set_elem("arr", "k", "v").unwrap();
        assert_eq!(i.eval("set r $a").unwrap(), "1");
        assert_eq!(i.eval("set r ${a}x").unwrap(), "1x");
        assert_eq!(i.eval("set r $arr(k)").unwrap(), "v");
        i.set_var("key", "k").unwrap();
        assert_eq!(i.eval("set r $arr($key)").unwrap(), "v");
    }

    #[test]
    fn command_substitution() {
        let mut i = Interp::new();
        assert_eq!(i.eval("set r [set x 5]").unwrap(), "5");
        assert_eq!(i.eval("set r a[set x 5]b").unwrap(), "a5b");
    }

    #[test]
    fn braces_defer_substitution() {
        let mut i = Interp::new();
        i.set_var("x", "1").unwrap();
        assert_eq!(i.eval("set r {$x [set y]}").unwrap(), "$x [set y]");
    }

    #[test]
    fn quotes_substitute_but_keep_spaces() {
        let mut i = Interp::new();
        i.set_var("x", "1").unwrap();
        assert_eq!(i.eval("set r \"a $x b\"").unwrap(), "a 1 b");
    }

    #[test]
    fn semicolons_and_newlines_separate() {
        let mut i = Interp::new();
        assert_eq!(i.eval("set a 1; set b 2\nset c 3").unwrap(), "3");
        assert_eq!(i.get_var("a").unwrap(), "1");
        assert_eq!(i.get_var("b").unwrap(), "2");
    }

    #[test]
    fn comments_skipped() {
        let mut i = Interp::new();
        assert_eq!(i.eval("# comment\nset x 1").unwrap(), "1");
        // `#` not at command start is literal.
        assert_eq!(i.eval("set x a#b").unwrap(), "a#b");
    }

    #[test]
    fn backslash_newline_continues_command() {
        let mut i = Interp::new();
        assert_eq!(i.eval("set x \\\n   5").unwrap(), "5");
    }

    #[test]
    fn unknown_command_error() {
        let mut i = Interp::new();
        let e = i.eval("nosuchcmd").unwrap_err();
        assert_eq!(e.message(), "invalid command name \"nosuchcmd\"");
    }

    #[test]
    fn unset_and_exists() {
        let mut i = Interp::new();
        i.set_var("x", "1").unwrap();
        assert!(i.var_exists("x"));
        i.unset_var("x").unwrap();
        assert!(!i.var_exists("x"));
        assert!(i.unset_var("x").is_err());
        assert!(i.get_var("x").is_err());
    }

    #[test]
    fn proc_with_defaults_and_args() {
        let mut i = Interp::new();
        i.eval("proc f {a {b B} args} {return $a-$b-$args}")
            .unwrap();
        assert_eq!(i.eval("f 1").unwrap(), "1-B-");
        assert_eq!(i.eval("f 1 2").unwrap(), "1-2-");
        assert_eq!(i.eval("f 1 2 3 4").unwrap(), "1-2-3 4");
        assert!(i.eval("f").is_err());
    }

    #[test]
    fn proc_frames_isolate_variables() {
        let mut i = Interp::new();
        i.set_var("x", "global").unwrap();
        i.eval("proc f {} {set x local; set x}").unwrap();
        assert_eq!(i.eval("f").unwrap(), "local");
        assert_eq!(i.get_var("x").unwrap(), "global");
    }

    #[test]
    fn global_links_work() {
        let mut i = Interp::new();
        i.set_var("g", "1").unwrap();
        i.eval("proc f {} {global g; set g 2}").unwrap();
        i.eval("f").unwrap();
        assert_eq!(i.get_var("g").unwrap(), "2");
    }

    #[test]
    fn nesting_depth_limit() {
        let mut i = Interp::new();
        i.eval("proc f {} {f}").unwrap();
        let e = i.eval("f").unwrap_err();
        assert!(e.message().contains("too many nested calls"));
    }

    #[test]
    fn rename_command() {
        let mut i = Interp::new();
        i.eval("proc f {} {return hi}").unwrap();
        i.rename_command("f", "g").unwrap();
        assert_eq!(i.eval("g").unwrap(), "hi");
        assert!(i.eval("f").is_err());
        assert!(i.rename_command("nope", "x").is_err());
    }

    #[test]
    fn output_capture() {
        let buf = Rc::new(RefCell::new(String::new()));
        let mut i = Interp::new();
        i.set_output(OutputSink::Buffer(buf.clone()));
        i.eval("echo hello world").unwrap();
        assert_eq!(&*buf.borrow(), "hello world\n");
    }

    #[test]
    fn dollar_without_name_is_literal() {
        let mut i = Interp::new();
        assert_eq!(i.eval("set x $").unwrap(), "$");
        assert_eq!(i.eval("set x a$").unwrap(), "a$");
    }

    #[test]
    fn extra_chars_after_brace_error() {
        let mut i = Interp::new();
        assert!(i.eval("set x {a}b").is_err());
    }

    #[test]
    fn unknown_proc_intercepts_missing_commands() {
        let mut i = Interp::new();
        i.eval("proc unknown {args} {return \"caught: $args\"}")
            .unwrap();
        assert_eq!(i.eval("frobnicate a b").unwrap(), "caught: frobnicate a b");
        // Defined commands are unaffected.
        assert_eq!(i.eval("set x 1").unwrap(), "1");
    }

    #[test]
    fn unknown_absent_still_errors() {
        let mut i = Interp::new();
        let e = i.eval("frobnicate").unwrap_err();
        assert!(e.message().contains("invalid command name"));
    }
}
