//! Dual-representation Tcl values.
//!
//! Wafe inherits Tcl 6's strings-only data model; this module gives the
//! interpreter the Tcl 8 `Tcl_Obj` leap: a [`Value`] is a cheaply clonable
//! handle (`Rc`) to a string representation plus a lazily computed, cached
//! internal representation (integer, double, boolean, parsed list, or
//! compiled script). The string rep stays authoritative — "everything is a
//! string" semantics are observable at the Tcl level exactly as before —
//! but repeated numeric or list use of the same value no longer re-parses
//! text on every touch ("shimmering").
//!
//! Invalidation rule: a `Value` is immutable. Mutation in the interpreter
//! (e.g. `set`, `lappend`) replaces the variable's `Value` with a new one,
//! so a cached rep can never go stale. Commands that build a new string
//! from an old value construct a fresh `Value`.

use std::borrow::Borrow;
use std::cell::{Cell, OnceCell, RefCell};
use std::fmt;
use std::rc::Rc;

use crate::compile::CompiledScript;
use crate::error::TclResult;
use crate::list::parse_list;

/// Internal (cached) representation of a value. `None` means only the
/// string rep exists so far.
#[derive(Debug, Clone, Default)]
pub enum IntRep {
    #[default]
    None,
    /// Canonical decimal integer (round-trips to the identical string).
    Int(i64),
    /// Floating point value; rendered form matches the string rep.
    Double(f64),
    /// Boolean literal (`0/1/true/false/yes/no/on/off`).
    Bool(bool),
    /// Parsed Tcl list; shared so `lindex`/`foreach` etc. are O(1) re-use.
    List(Rc<Vec<Value>>),
    /// Compiled script body (cached by `eval`/proc bodies).
    Script(Rc<CompiledScript>),
}

struct Inner {
    /// String representation. Always set for string-born values; computed
    /// on demand for value-born (int/list/…) ones.
    str_rep: OnceCell<Rc<str>>,
    /// Cached internal representation.
    int_rep: RefCell<IntRep>,
    /// Cached command-table resolution (epoch, handle) when this value is
    /// used as argv[0]; validated against the interpreter's epoch counter
    /// (bumped on register/rename/unregister/proc).
    cmd: RefCell<Option<(u64, crate::interp::CmdIntern)>>,
}

/// A shared, dual-representation Tcl value. Clone is an `Rc` bump.
#[derive(Clone)]
pub struct Value(Rc<Inner>);

// ---------------------------------------------------------------------------
// Shimmer telemetry. The interpreter is single-threaded (Rc throughout), so
// plain thread-locals are the cheapest home for these counters; `Value`
// methods have no `Interp` access.
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone, Copy)]
pub struct ShimmerStats {
    /// String → integer parses that populated a cached rep.
    pub int_parses: u64,
    /// String → double parses that populated a cached rep.
    pub double_parses: u64,
    /// String → list parses that populated a cached rep.
    pub list_parses: u64,
    /// Rep cache hits (any kind) that avoided a re-parse.
    pub rep_hits: u64,
    /// Value-born values rendered to strings on demand.
    pub renders: u64,
    /// Copy-on-write list clones forced by sharing.
    pub list_cow: u64,
    /// Command-name intern hits that skipped a table lookup.
    pub cmd_intern_hits: u64,
}

thread_local! {
    static STATS: RefCell<ShimmerStats> = RefCell::new(ShimmerStats::default());
    /// When false, `Value` behaves like the old strings-only model: no rep
    /// caching, every numeric/list access re-parses. Used by the e21 bench
    /// to measure the string model on the same binary.
    static REPS_ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// Snapshot the thread's shimmer counters.
pub fn shimmer_stats() -> ShimmerStats {
    STATS.with(|s| *s.borrow())
}

/// Reset the thread's shimmer counters (tests, benches).
pub fn reset_shimmer_stats() {
    STATS.with(|s| *s.borrow_mut() = ShimmerStats::default());
}

/// Enable/disable dual representations (benchmark baseline switch).
/// Returns the previous setting.
pub fn set_reps_enabled(on: bool) -> bool {
    REPS_ENABLED.with(|c| c.replace(on))
}

/// Whether dual representations are currently enabled on this thread.
pub fn reps_enabled() -> bool {
    REPS_ENABLED.with(|c| c.get())
}

fn stat(f: impl FnOnce(&mut ShimmerStats)) {
    STATS.with(|s| f(&mut s.borrow_mut()));
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

impl Value {
    /// An empty-string value.
    pub fn empty() -> Value {
        Value::from("")
    }

    fn from_parts(str_rep: Option<Rc<str>>, rep: IntRep) -> Value {
        let cell = OnceCell::new();
        if let Some(s) = str_rep {
            let _ = cell.set(s);
        }
        Value(Rc::new(Inner {
            str_rep: cell,
            int_rep: RefCell::new(rep),
            cmd: RefCell::new(None),
        }))
    }

    /// A value born from an integer: carries the Int rep, renders lazily.
    pub fn from_int(n: i64) -> Value {
        if reps_enabled() {
            Value::from_parts(None, IntRep::Int(n))
        } else {
            Value::from(n.to_string())
        }
    }

    /// A value born from a double; rendered via Tcl's double formatting.
    /// Non-finite values stay string-only: `expr`'s coercion treats
    /// "NaN"/"Inf" as strings, and a cached Double rep would change that.
    pub fn from_double(d: f64) -> Value {
        if reps_enabled() && d.is_finite() {
            Value::from_parts(None, IntRep::Double(d))
        } else {
            Value::from(crate::expr::format_double(d))
        }
    }

    /// A value born from a parsed list; renders via `list_join` lazily.
    pub fn from_list(elems: Vec<Value>) -> Value {
        if reps_enabled() {
            Value::from_parts(None, IntRep::List(Rc::new(elems)))
        } else {
            Value::from(join_values(&elems))
        }
    }

    /// A value sharing an existing list rep.
    pub fn from_list_rc(elems: Rc<Vec<Value>>) -> Value {
        if reps_enabled() {
            Value::from_parts(None, IntRep::List(elems))
        } else {
            Value::from(join_values(&elems))
        }
    }

    // -----------------------------------------------------------------
    // Checkpoint support (session snapshots)
    // -----------------------------------------------------------------

    /// The value's parts for checkpointing: the string rep *if already
    /// computed* and a clone of the cached internal rep. Reading never
    /// forces a render or a parse, so capturing a snapshot cannot
    /// shimmer the value it reads.
    pub fn snapshot_parts(&self) -> (Option<Rc<str>>, IntRep) {
        (
            self.0.str_rep.get().cloned(),
            self.0.int_rep.borrow().clone(),
        )
    }

    /// Rebuilds a value from checkpointed parts, re-validating the rep
    /// against the string rep: a corrupt (or hand-edited) snapshot must
    /// not plant a cached rep the normal `as_int`/`as_double` canonical
    /// checks would have refused. Anything non-canonical falls back to
    /// the string-only form; `Script` reps are never restored (compiled
    /// bodies are rebuilt lazily on first eval).
    pub fn from_snapshot_parts(str_rep: Option<Rc<str>>, rep: IntRep) -> Value {
        let rep = match rep {
            IntRep::Script(_) => IntRep::None,
            IntRep::Int(n) => match &str_rep {
                Some(s) if !canonical_int(s, n) => IntRep::None,
                _ => IntRep::Int(n),
            },
            IntRep::Double(d) => {
                let ok = d.is_finite()
                    && match &str_rep {
                        Some(s) => crate::expr::format_double(d) == **s,
                        None => true,
                    };
                if ok {
                    IntRep::Double(d)
                } else {
                    IntRep::None
                }
            }
            IntRep::Bool(b) => match &str_rep {
                None => IntRep::Bool(b),
                Some(s) if (**s == *"1") == b && (**s == *"1" || **s == *"0") => IntRep::Bool(b),
                Some(_) => IntRep::None,
            },
            other => other,
        };
        if str_rep.is_none() && matches!(rep, IntRep::None) {
            return Value::empty();
        }
        Value::from_parts(str_rep, rep)
    }

    // -----------------------------------------------------------------
    // String representation
    // -----------------------------------------------------------------

    /// The string representation, rendering it from the internal rep if
    /// this value was value-born.
    pub fn as_str(&self) -> &str {
        self.str_rc()
    }

    fn str_rc(&self) -> &Rc<str> {
        self.0.str_rep.get_or_init(|| {
            stat(|s| s.renders += 1);
            let rep = self.0.int_rep.borrow();
            let rendered: String = match &*rep {
                IntRep::Int(n) => n.to_string(),
                IntRep::Double(d) => crate::expr::format_double(*d),
                IntRep::Bool(b) => if *b { "1" } else { "0" }.to_string(),
                IntRep::List(elems) => join_values(elems),
                IntRep::Script(_) | IntRep::None => String::new(),
            };
            Rc::from(rendered.as_str())
        })
    }

    /// The shared `Rc<str>` string rep (cheap to clone).
    pub fn shared_str(&self) -> Rc<str> {
        self.str_rc().clone()
    }

    /// True when the string rep has already been computed.
    pub fn has_str_rep(&self) -> bool {
        self.0.str_rep.get().is_some()
    }

    // -----------------------------------------------------------------
    // Numeric reps
    // -----------------------------------------------------------------

    /// The cached integer rep, if present and valid.
    pub fn cached_int(&self) -> Option<i64> {
        match &*self.0.int_rep.borrow() {
            IntRep::Int(n) => {
                stat(|s| s.rep_hits += 1);
                Some(*n)
            }
            _ => None,
        }
    }

    /// The cached double rep, if present.
    pub fn cached_double(&self) -> Option<f64> {
        match &*self.0.int_rep.borrow() {
            IntRep::Double(d) => {
                stat(|s| s.rep_hits += 1);
                Some(*d)
            }
            IntRep::Int(n) => {
                stat(|s| s.rep_hits += 1);
                Some(*n as f64)
            }
            _ => None,
        }
    }

    /// Parse as integer, caching the rep when the textual form is the
    /// canonical decimal rendering (so caching can never change how other
    /// consumers — e.g. `incr`'s strict parser — see the value).
    pub fn as_int(&self) -> Option<i64> {
        if let Some(n) = self.cached_int() {
            return Some(n);
        }
        let s = self.as_str();
        let n: i64 = s.trim().parse().ok()?;
        if reps_enabled() && canonical_int(s, n) {
            stat(|s| s.int_parses += 1);
            self.set_rep(IntRep::Int(n));
        }
        Some(n)
    }

    /// Parse as double (no caching unless canonical is certain; the expr
    /// layer formats doubles in its own canonical way, so we only cache
    /// when round-trip matches).
    pub fn as_double(&self) -> Option<f64> {
        if let Some(d) = self.cached_double() {
            return Some(d);
        }
        let s = self.as_str();
        let d: f64 = s.trim().parse().ok()?;
        if reps_enabled() && d.is_finite() && crate::expr::format_double(d) == s {
            stat(|st| st.double_parses += 1);
            self.set_rep(IntRep::Double(d));
        }
        Some(d)
    }

    /// Cache an integer rep iff the string rep is the canonical decimal
    /// rendering of `n` (used by `expr`'s coercion after a parse).
    pub fn cache_int_canonical(&self, n: i64) {
        if reps_enabled() && canonical_int(self.as_str(), n) {
            stat(|s| s.int_parses += 1);
            self.set_rep(IntRep::Int(n));
        }
    }

    /// Cache a double rep iff the string rep round-trips exactly through
    /// Tcl's double formatting (and the value is finite — non-finite
    /// spellings coerce as strings).
    pub fn cache_double_canonical(&self, d: f64) {
        if reps_enabled() && d.is_finite() && crate::expr::format_double(d) == self.as_str() {
            stat(|s| s.double_parses += 1);
            self.set_rep(IntRep::Double(d));
        }
    }

    fn set_rep(&self, rep: IntRep) {
        // Never clobber a List/Script rep with a numeric one; those are
        // the expensive ones to rebuild.
        let mut cur = self.0.int_rep.borrow_mut();
        if matches!(&*cur, IntRep::None) {
            *cur = rep;
        }
    }

    // -----------------------------------------------------------------
    // List rep
    // -----------------------------------------------------------------

    /// The parsed list rep, parsing and caching on first use.
    pub fn as_list(&self) -> TclResult<Rc<Vec<Value>>> {
        if let IntRep::List(elems) = &*self.0.int_rep.borrow() {
            stat(|s| s.rep_hits += 1);
            return Ok(elems.clone());
        }
        let parsed = parse_list(self.as_str())?;
        let elems: Rc<Vec<Value>> = Rc::new(parsed.into_iter().map(Value::from).collect());
        if reps_enabled() {
            stat(|s| s.list_parses += 1);
            let mut cur = self.0.int_rep.borrow_mut();
            if !matches!(&*cur, IntRep::Script(_)) {
                *cur = IntRep::List(elems.clone());
            }
        }
        Ok(elems)
    }

    /// True when a list rep is already cached.
    pub fn has_list_rep(&self) -> bool {
        matches!(&*self.0.int_rep.borrow(), IntRep::List(_))
    }

    /// Sole-owner rep steal for amortized O(1) `lappend`.
    ///
    /// When exactly two handles reference this value — the variable slot
    /// being rewritten and the caller's clone of it — the cached list rep
    /// is moved out so the underlying vector has a single owner and can be
    /// extended in place. The slot is about to be overwritten with the
    /// extended list, so the brief rep-less window is unobservable. Any
    /// other sharing (`set b $l`, `lappend l $l`, …) returns `None` and
    /// the caller falls back to a counted copy-on-write clone.
    pub(crate) fn list_rep_for_update(&self) -> Option<Rc<Vec<Value>>> {
        if Rc::strong_count(&self.0) != 2 {
            return None;
        }
        let mut cur = self.0.int_rep.borrow_mut();
        if matches!(&*cur, IntRep::List(_)) {
            if let IntRep::List(rc) = std::mem::take(&mut *cur) {
                stat(|s| s.rep_hits += 1);
                return Some(rc);
            }
        }
        None
    }

    // -----------------------------------------------------------------
    // Script rep
    // -----------------------------------------------------------------

    /// The cached compiled-script rep, if present.
    pub fn cached_script(&self) -> Option<Rc<CompiledScript>> {
        match &*self.0.int_rep.borrow() {
            IntRep::Script(c) => {
                stat(|s| s.rep_hits += 1);
                Some(c.clone())
            }
            _ => None,
        }
    }

    /// Cache a compiled-script rep (only onto a rep-less value).
    pub fn cache_script(&self, compiled: Rc<CompiledScript>) {
        if reps_enabled() {
            self.set_rep(IntRep::Script(compiled));
        }
    }

    // -----------------------------------------------------------------
    // Command interning
    // -----------------------------------------------------------------

    pub(crate) fn cached_cmd(&self, epoch: u64) -> Option<crate::interp::CmdIntern> {
        let cmd = self.0.cmd.borrow();
        match &*cmd {
            Some((e, c)) if *e == epoch => {
                stat(|s| s.cmd_intern_hits += 1);
                Some(c.clone())
            }
            _ => None,
        }
    }

    pub(crate) fn intern_cmd(&self, epoch: u64, intern: crate::interp::CmdIntern) {
        if reps_enabled() {
            *self.0.cmd.borrow_mut() = Some((epoch, intern));
        }
    }
}

/// True when `s` is exactly the canonical decimal rendering of `n`.
fn canonical_int(s: &str, n: i64) -> bool {
    // Cheap check without allocating for the common small-digit case:
    // itoa-free comparison via a stack buffer would be ideal; a short
    // to_string is fine here because this runs once per distinct value.
    s == n.to_string()
}

/// Join values into a canonical Tcl list string. Produces exactly what
/// [`list_join`] yields for the same element texts, without the
/// intermediate `Vec<String>`.
pub fn join_values(elems: &[Value]) -> String {
    let mut out = String::new();
    for (i, v) in elems.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&crate::list::list_quote(v.as_str()));
    }
    out
}

/// Record a copy-on-write list clone (called by the list commands).
pub(crate) fn note_list_cow() {
    stat(|s| s.list_cow += 1);
}

// ---------------------------------------------------------------------------
// Trait plumbing: make `Value` behave like a string almost everywhere.
// ---------------------------------------------------------------------------

impl Default for Value {
    fn default() -> Value {
        Value::empty()
    }
}

impl std::ops::Deref for Value {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for Value {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Value {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        Rc::ptr_eq(&self.0, &other.0) || self.as_str() == other.as_str()
    }
}

impl Eq for Value {}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Value> for str {
    fn eq(&self, other: &Value) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        self.as_str() == other.as_str()
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::from_parts(Some(Rc::from(s.as_str())), IntRep::None)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::from_parts(Some(Rc::from(s)), IntRep::None)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::from(s.as_str())
    }
}

impl From<Rc<str>> for Value {
    fn from(s: Rc<str>) -> Value {
        Value::from_parts(Some(s), IntRep::None)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::from_int(n)
    }
}

impl From<f64> for Value {
    fn from(d: f64) -> Value {
        Value::from_double(d)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::from(if b { "1" } else { "0" })
    }
}

impl From<Value> for String {
    fn from(v: Value) -> String {
        v.as_str().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_roundtrip() {
        let v = Value::from("hello world");
        assert_eq!(v.as_str(), "hello world");
        assert_eq!(v, "hello world");
        assert_eq!(v.to_string(), "hello world");
    }

    #[test]
    fn int_born_renders_lazily() {
        let v = Value::from_int(42);
        assert!(!v.has_str_rep() || !reps_enabled());
        assert_eq!(v.as_str(), "42");
        assert_eq!(v.cached_int(), Some(42));
    }

    #[test]
    fn int_parse_caches_canonical_only() {
        let v = Value::from("17");
        assert_eq!(v.as_int(), Some(17));
        assert_eq!(v.cached_int(), Some(17));
        // Hex parses via expr's coercion, not here; "0x11" must NOT get an
        // Int rep because `incr` would then accept what it used to reject.
        let h = Value::from("0x11");
        assert_eq!(h.as_int(), None);
        assert_eq!(h.cached_int(), None);
        // Leading-zero / whitespace forms parse but are not cached.
        let z = Value::from(" 7 ");
        assert_eq!(z.as_int(), Some(7));
        assert_eq!(z.cached_int(), None);
    }

    #[test]
    fn double_roundtrip() {
        let v = Value::from_double(1.5);
        assert_eq!(v.as_str(), "1.5");
        assert_eq!(v.cached_double(), Some(1.5));
        let w = Value::from_double(2.0);
        assert_eq!(w.as_str(), "2.0");
    }

    #[test]
    fn list_rep_roundtrip() {
        let v = Value::from("a b {c d} e");
        let l = v.as_list().unwrap();
        assert_eq!(l.len(), 4);
        assert_eq!(l[2], "c d");
        // Cached: second call returns the same Rc.
        let l2 = v.as_list().unwrap();
        assert!(Rc::ptr_eq(&l, &l2));
    }

    #[test]
    fn list_born_renders_canonically() {
        let v = Value::from_list(vec![Value::from("a"), Value::from("c d"), Value::from("")]);
        assert_eq!(v.as_str(), "a {c d} {}");
    }

    #[test]
    fn value_eq_is_string_eq() {
        assert_eq!(Value::from_int(5), Value::from("5"));
        assert_ne!(Value::from("05"), Value::from("5"));
    }

    #[test]
    fn borrow_str_enables_join() {
        let argv = [Value::from("a"), Value::from("b")];
        let joined = argv.join(" ");
        assert_eq!(joined, "a b");
    }

    #[test]
    fn shimmer_counters_move() {
        reset_shimmer_stats();
        let v = Value::from("123");
        let _ = v.as_int();
        let _ = v.as_int();
        let s = shimmer_stats();
        assert_eq!(s.int_parses, 1);
        assert!(s.rep_hits >= 1);
    }

    #[test]
    fn reps_disabled_is_string_model() {
        let prev = set_reps_enabled(false);
        let v = Value::from_int(9);
        assert!(v.has_str_rep());
        let w = Value::from("10");
        assert_eq!(w.as_int(), Some(10));
        assert_eq!(w.cached_int(), None);
        set_reps_enabled(prev);
    }
}
