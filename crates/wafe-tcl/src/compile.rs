//! Parse-once compilation of Tcl scripts.
//!
//! Tcl 6.x re-parses every piece of script each time it runs — the paper
//! concedes this as the frontend's main performance limitation, and the
//! E18 benchmark demonstrates it. This module removes the re-parse: a
//! script is lexed a single time into a [`CompiledScript`] — a list of
//! commands, each a list of word [`Token`]s — and only the *substitution*
//! step (`$var`, `[cmd]`, already-folded backslashes) runs per
//! evaluation.
//!
//! What is decided at compile time:
//!
//! * command boundaries (newlines, semicolons, comments, backslash-newline
//!   continuations),
//! * word boundaries and word kind (braced, quoted, bare),
//! * backslash sequences (they are position-independent, so they fold
//!   into literal text),
//! * the structure of every `$name`, `$name(index)` and `[script]`
//!   substitution — bracketed scripts compile recursively, array-index
//!   text compiles to its own token list.
//!
//! What still happens per evaluation: variable reads, nested-script
//! evaluation for `[...]`, and the concatenation of compound words.
//!
//! Compilation is a pure function of the script text: it never touches
//! interpreter state, so compiled scripts are shared freely (`Rc`) between
//! the interpreter's script cache, proc definitions and loop bodies.
//!
//! Scripts that fail to compile (unbalanced braces, unterminated quotes)
//! are *not* errors at this layer's call sites: the interpreter falls back
//! to the legacy parse-as-you-go evaluator so that a syntax error in the
//! third command still lets the first two run, exactly as Tcl behaves.

use std::rc::Rc;

use crate::error::{TclError, TclResult};
use crate::interp::MAX_NESTING_DEPTH;
use crate::parser::{find_matching_brace, find_matching_bracket, parse_backslash, scan_varname};
use crate::value::Value;

/// One substitution unit of a compiled word.
#[derive(Debug, Clone)]
pub enum Token {
    /// Verbatim text: braced words, and literal runs of quoted/bare words
    /// with backslash sequences already folded in. Stored as a shared
    /// [`Value`] so every evaluation of the script reuses the same object
    /// — cached numeric reps and interned command names accumulate across
    /// loop iterations instead of being re-derived.
    Literal(Value),
    /// `$name` or `$name(index)`; the index text is itself a compiled
    /// token list (it undergoes one round of substitution per read).
    VarSub(String, Option<Vec<Token>>),
    /// `[script]`: the bracketed script, compiled recursively.
    BracketSub(Rc<CompiledScript>),
    /// A word assembled from several parts, e.g. `a$b[c]` or `"x $y"`.
    Compound(Vec<Token>),
}

/// One command: a list of word tokens (`words[0]` names the command).
#[derive(Debug, Clone)]
pub struct CompiledCommand {
    /// The command's words, in order; each is one [`Token`].
    pub words: Vec<Token>,
    /// When every word is a literal, the fully-substituted argv —
    /// evaluation invokes it directly with zero per-iteration allocation
    /// (the common case: `incr d`, `while {..} {..}`, braced bodies).
    /// The `Value`s are shared with `words`, so rep caches persist.
    pub literal: Option<Vec<Value>>,
}

impl CompiledCommand {
    fn new(words: Vec<Token>) -> CompiledCommand {
        let literal = words
            .iter()
            .map(|t| match t {
                Token::Literal(s) => Some(s.clone()),
                _ => None,
            })
            .collect::<Option<Vec<Value>>>();
        CompiledCommand { words, literal }
    }
}

/// A whole script: the commands it runs, in order.
#[derive(Debug, Clone, Default)]
pub struct CompiledScript {
    /// The commands; separators and comments are already gone.
    pub commands: Vec<CompiledCommand>,
    /// The script's bytecode form, produced lazily by the first bytecode
    /// execution and shared by everything that shares this script (the
    /// text cache, `Value` script reps, proc bodies). See [`crate::bc`].
    pub(crate) bc: std::cell::RefCell<crate::bc::BcSlot>,
}

/// Compiles a script into its parse-once form.
///
/// Fails on structural errors (unbalanced delimiters, text after a close
/// brace/quote) — callers fall back to the legacy evaluator in that case
/// so error *timing* matches Tcl's lazy parser.
pub fn compile(script: &str) -> TclResult<CompiledScript> {
    let chars: Vec<char> = script.chars().collect();
    compile_chars(&chars, 0)
}

fn compile_chars(chars: &[char], depth: usize) -> TclResult<CompiledScript> {
    if depth > MAX_NESTING_DEPTH {
        // Too deeply nested to compile safely; the legacy evaluator's
        // runtime depth limit reports this case.
        return Err(TclError::error("script too deeply nested to compile"));
    }
    let mut commands = Vec::new();
    let mut pos = 0usize;
    while pos < chars.len() {
        let (words, next) = compile_command(chars, pos, depth)?;
        pos = next;
        if !words.is_empty() {
            commands.push(CompiledCommand::new(words));
        }
    }
    Ok(CompiledScript {
        commands,
        bc: Default::default(),
    })
}

/// Compiles one command starting at `pos`; mirrors
/// `Interp::parse_command` word for word, but builds tokens instead of
/// performing substitutions.
fn compile_command(chars: &[char], mut pos: usize, depth: usize) -> TclResult<(Vec<Token>, usize)> {
    let mut words: Vec<Token> = Vec::new();
    // Skip leading white space (not newlines — those terminate).
    loop {
        while pos < chars.len() && (chars[pos] == ' ' || chars[pos] == '\t') {
            pos += 1;
        }
        if pos + 1 < chars.len() && chars[pos] == '\\' && chars[pos + 1] == '\n' {
            let (_, next) = parse_backslash(chars, pos);
            pos = next;
            continue;
        }
        break;
    }
    if pos >= chars.len() {
        return Ok((words, pos));
    }
    if chars[pos] == '\n' || chars[pos] == ';' {
        return Ok((words, pos + 1));
    }
    if chars[pos] == '#' {
        // Comment to end of line; backslash-newline continues it.
        while pos < chars.len() && chars[pos] != '\n' {
            if chars[pos] == '\\' && pos + 1 < chars.len() {
                pos += 1;
            }
            pos += 1;
        }
        return Ok((words, (pos + 1).min(chars.len())));
    }
    loop {
        // Compile one word.
        let word;
        match chars[pos] {
            '{' => {
                let end = find_matching_brace(chars, pos)?;
                word = Token::Literal(Value::from(chars[pos + 1..end].iter().collect::<String>()));
                pos = end + 1;
                if pos < chars.len()
                    && !matches!(chars[pos], ' ' | '\t' | '\n' | ';')
                    && !(chars[pos] == '\\' && pos + 1 < chars.len() && chars[pos + 1] == '\n')
                {
                    return Err(TclError::error("extra characters after close-brace"));
                }
            }
            '"' => {
                let (w, next) = compile_quoted(chars, pos + 1, depth)?;
                word = w;
                pos = next;
                if pos < chars.len()
                    && !matches!(chars[pos], ' ' | '\t' | '\n' | ';')
                    && !(chars[pos] == '\\' && pos + 1 < chars.len() && chars[pos + 1] == '\n')
                {
                    return Err(TclError::error("extra characters after close-quote"));
                }
            }
            _ => {
                let (w, next) = compile_bare(chars, pos, depth)?;
                word = w;
                pos = next;
            }
        }
        words.push(word);
        // Skip intra-command white space.
        loop {
            while pos < chars.len() && (chars[pos] == ' ' || chars[pos] == '\t') {
                pos += 1;
            }
            if pos + 1 < chars.len() && chars[pos] == '\\' && chars[pos + 1] == '\n' {
                let (_, next) = parse_backslash(chars, pos);
                pos = next;
                continue;
            }
            break;
        }
        if pos >= chars.len() {
            return Ok((words, pos));
        }
        if chars[pos] == '\n' || chars[pos] == ';' {
            return Ok((words, pos + 1));
        }
    }
}

/// Collects token parts into the final word token, folding the
/// single-part and empty cases.
fn finish_word(mut parts: Vec<Token>) -> Token {
    match parts.len() {
        0 => Token::Literal(Value::empty()),
        1 => parts.pop().expect("len checked"),
        _ => Token::Compound(parts),
    }
}

/// Pushes an accumulated literal run onto `parts`, if non-empty.
fn flush_literal(parts: &mut Vec<Token>, lit: &mut String) {
    if !lit.is_empty() {
        parts.push(Token::Literal(Value::from(std::mem::take(lit))));
    }
}

/// Compiles a double-quoted word starting just after the opening quote.
fn compile_quoted(chars: &[char], mut pos: usize, depth: usize) -> TclResult<(Token, usize)> {
    let mut parts: Vec<Token> = Vec::new();
    let mut lit = String::new();
    while pos < chars.len() {
        match chars[pos] {
            '"' => {
                flush_literal(&mut parts, &mut lit);
                return Ok((finish_word(parts), pos + 1));
            }
            '\\' => {
                let (s, next) = parse_backslash(chars, pos);
                lit.push_str(&s);
                pos = next;
            }
            '$' => {
                let (tok, next) = compile_dollar(chars, pos, depth)?;
                push_sub(&mut parts, &mut lit, tok);
                pos = next;
            }
            '[' => {
                let end = find_matching_bracket(chars, pos)?;
                flush_literal(&mut parts, &mut lit);
                let inner = compile_chars(&chars[pos + 1..end], depth + 1)?;
                parts.push(Token::BracketSub(Rc::new(inner)));
                pos = end + 1;
            }
            c => {
                lit.push(c);
                pos += 1;
            }
        }
    }
    Err(TclError::error("missing \""))
}

/// Compiles a bare word starting at `pos`.
fn compile_bare(chars: &[char], mut pos: usize, depth: usize) -> TclResult<(Token, usize)> {
    let mut parts: Vec<Token> = Vec::new();
    let mut lit = String::new();
    while pos < chars.len() {
        match chars[pos] {
            ' ' | '\t' | '\n' | ';' => break,
            '\\' => {
                if pos + 1 < chars.len() && chars[pos + 1] == '\n' {
                    break; // Backslash-newline ends the word (acts as separator).
                }
                let (s, next) = parse_backslash(chars, pos);
                lit.push_str(&s);
                pos = next;
            }
            '$' => {
                let (tok, next) = compile_dollar(chars, pos, depth)?;
                push_sub(&mut parts, &mut lit, tok);
                pos = next;
            }
            '[' => {
                let end = find_matching_bracket(chars, pos)?;
                flush_literal(&mut parts, &mut lit);
                let inner = compile_chars(&chars[pos + 1..end], depth + 1)?;
                parts.push(Token::BracketSub(Rc::new(inner)));
                pos = end + 1;
            }
            c => {
                lit.push(c);
                pos += 1;
            }
        }
    }
    flush_literal(&mut parts, &mut lit);
    Ok((finish_word(parts), pos))
}

/// Adds a compiled `$`-substitution to the parts, merging the "`$` with
/// no name is a literal dollar" case back into the literal run.
fn push_sub(parts: &mut Vec<Token>, lit: &mut String, tok: Token) {
    match tok {
        Token::Literal(s) => lit.push_str(&s),
        other => {
            flush_literal(parts, lit);
            parts.push(other);
        }
    }
}

/// Compiles a `$`-form starting at `chars[pos]` (the `$`).
fn compile_dollar(chars: &[char], pos: usize, depth: usize) -> TclResult<(Token, usize)> {
    let (name, index, next) = scan_varname(chars, pos + 1);
    if name.is_empty() {
        return Ok((Token::Literal("$".into()), pos + 1));
    }
    match index {
        None => Ok((Token::VarSub(name, None), next)),
        Some(raw) => {
            let raw_chars: Vec<char> = raw.chars().collect();
            let idx = compile_subst(&raw_chars, depth)?;
            Ok((Token::VarSub(name, Some(idx)), next))
        }
    }
}

/// Compiles free-form text under full-substitution rules (the behaviour
/// of `Interp::substitute_all`: backslash, `$`, `[]`; everything else is
/// literal). Used for array-index text.
fn compile_subst(chars: &[char], depth: usize) -> TclResult<Vec<Token>> {
    let mut parts: Vec<Token> = Vec::new();
    let mut lit = String::new();
    let mut pos = 0usize;
    while pos < chars.len() {
        match chars[pos] {
            '\\' => {
                let (s, next) = parse_backslash(chars, pos);
                lit.push_str(&s);
                pos = next;
            }
            '$' => {
                let (tok, next) = compile_dollar(chars, pos, depth)?;
                push_sub(&mut parts, &mut lit, tok);
                pos = next;
            }
            '[' => {
                let end = find_matching_bracket(chars, pos)?;
                flush_literal(&mut parts, &mut lit);
                let inner = compile_chars(&chars[pos + 1..end], depth + 1)?;
                parts.push(Token::BracketSub(Rc::new(inner)));
                pos = end + 1;
            }
            c => {
                lit.push(c);
                pos += 1;
            }
        }
    }
    flush_literal(&mut parts, &mut lit);
    Ok(parts)
}

/// A bounded, least-recently-used cache from script/expression text to
/// its compiled form. Keys are the full source text, so a cache hit is
/// exact: same text, same parse.
pub(crate) struct LruCache<V> {
    map: crate::hash::FnvMap<String, (V, u64)>,
    limit: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V: Clone> LruCache<V> {
    pub fn new(limit: usize) -> Self {
        LruCache {
            map: crate::hash::FnvMap::default(),
            limit,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up `key`, refreshing its recency and counting hit/miss.
    pub fn get(&mut self, key: &str) -> Option<V> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((v, used)) => {
                *used = self.tick;
                self.hits += 1;
                Some(v.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `key`, evicting the least-recently-used entry when full.
    pub fn insert(&mut self, key: &str, value: V) {
        if self.limit == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(key) {
            while self.map.len() >= self.limit {
                self.evict_one();
            }
        }
        self.map.insert(key.to_string(), (value, self.tick));
    }

    fn evict_one(&mut self) {
        if let Some(oldest) = self
            .map
            .iter()
            .min_by_key(|(_, (_, used))| *used)
            .map(|(k, _)| k.clone())
        {
            self.map.remove(&oldest);
            self.evictions += 1;
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn clear(&mut self) {
        self.map.clear();
    }

    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Changes the bound, trimming down to it immediately.
    pub fn set_limit(&mut self, limit: usize) {
        self.limit = limit;
        if limit == 0 {
            self.map.clear();
        } else {
            while self.map.len() > limit {
                self.evict_one();
            }
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiled(s: &str) -> CompiledScript {
        compile(s).expect("compiles")
    }

    #[test]
    fn literal_words() {
        let c = compiled("set x hello");
        assert_eq!(c.commands.len(), 1);
        assert_eq!(c.commands[0].words.len(), 3);
        assert!(matches!(&c.commands[0].words[0], Token::Literal(s) if s == "set"));
        assert!(matches!(&c.commands[0].words[2], Token::Literal(s) if s == "hello"));
    }

    #[test]
    fn braced_word_is_verbatim() {
        let c = compiled("set x {$a [b] \\n}");
        assert!(matches!(&c.commands[0].words[2], Token::Literal(s) if s == "$a [b] \\n"));
    }

    #[test]
    fn separators_and_comments_vanish() {
        let c = compiled("# comment\nset a 1; set b 2\n\n;\nset c 3");
        assert_eq!(c.commands.len(), 3);
    }

    #[test]
    fn varsub_forms() {
        let c = compiled("set r $a");
        assert!(matches!(&c.commands[0].words[2], Token::VarSub(n, None) if n == "a"));
        let c = compiled("set r ${strange name}");
        assert!(matches!(&c.commands[0].words[2], Token::VarSub(n, None) if n == "strange name"));
        let c = compiled("set r $arr(k)");
        match &c.commands[0].words[2] {
            Token::VarSub(n, Some(idx)) => {
                assert_eq!(n, "arr");
                assert!(matches!(&idx[0], Token::Literal(s) if s == "k"));
            }
            other => panic!("expected VarSub, got {other:?}"),
        }
    }

    #[test]
    fn dynamic_array_index_compiles_to_tokens() {
        let c = compiled("set r $arr($key)");
        match &c.commands[0].words[2] {
            Token::VarSub(_, Some(idx)) => {
                assert!(matches!(&idx[0], Token::VarSub(n, None) if n == "key"));
            }
            other => panic!("expected VarSub, got {other:?}"),
        }
    }

    #[test]
    fn bracket_sub_compiles_recursively() {
        let c = compiled("set r [set x 5]");
        match &c.commands[0].words[2] {
            Token::BracketSub(inner) => assert_eq!(inner.commands.len(), 1),
            other => panic!("expected BracketSub, got {other:?}"),
        }
    }

    #[test]
    fn compound_word_parts() {
        let c = compiled("set r a$b[c]d");
        match &c.commands[0].words[2] {
            Token::Compound(parts) => {
                assert_eq!(parts.len(), 4);
                assert!(matches!(&parts[0], Token::Literal(s) if s == "a"));
                assert!(matches!(&parts[1], Token::VarSub(n, None) if n == "b"));
                assert!(matches!(&parts[2], Token::BracketSub(_)));
                assert!(matches!(&parts[3], Token::Literal(s) if s == "d"));
            }
            other => panic!("expected Compound, got {other:?}"),
        }
    }

    #[test]
    fn backslashes_fold_into_literals() {
        let c = compiled("set x a\\tb");
        assert!(matches!(&c.commands[0].words[2], Token::Literal(s) if s == "a\tb"));
        let c = compiled("set x \"a\\x41b\"");
        assert!(matches!(&c.commands[0].words[2], Token::Literal(s) if s == "aAb"));
    }

    #[test]
    fn lone_dollar_stays_literal() {
        let c = compiled("set x a$");
        assert!(matches!(&c.commands[0].words[2], Token::Literal(s) if s == "a$"));
    }

    #[test]
    fn structural_errors_fail_compile() {
        assert!(compile("set x {unclosed").is_err());
        assert!(compile("set x \"unclosed").is_err());
        assert!(compile("set x [unclosed").is_err());
        assert!(compile("set x {a}b").is_err());
    }

    #[test]
    fn empty_quoted_word_is_kept() {
        let c = compiled("cmd \"\"");
        assert_eq!(c.commands[0].words.len(), 2);
        assert!(matches!(&c.commands[0].words[1], Token::Literal(s) if s.is_empty()));
    }

    #[test]
    fn lru_bound_and_counters() {
        let mut c: LruCache<u32> = LruCache::new(2);
        assert_eq!(c.get("a"), None);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get("a"), Some(1));
        c.insert("c", 3); // Evicts "b", the least recently used.
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("b"), None);
        assert_eq!(c.get("a"), Some(1));
        assert_eq!(c.get("c"), Some(3));
        assert_eq!(c.evictions(), 1);
        assert!(c.hits() >= 3);
        assert!(c.misses() >= 2);
        c.set_limit(1);
        assert_eq!(c.len(), 1);
        c.set_limit(0);
        assert_eq!(c.len(), 0);
        c.insert("d", 4);
        assert_eq!(c.len(), 0, "limit 0 disables insertion");
    }
}
