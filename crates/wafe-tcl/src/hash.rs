//! FNV-1a hashing for the interpreter's internal maps.
//!
//! Every command dispatch and variable access hashes a short string key;
//! the standard library's SipHash is DoS-resistant but pays for it on
//! 2–10-byte keys. The interpreter is a single-user embedded language —
//! its command and variable names are not attacker-chosen buckets — so
//! the internal maps use FNV-1a, which is several times faster at these
//! key lengths. Only the interpreter's own maps use this; nothing about
//! the public API changes.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FnvHasher`].
pub type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// The FNV-1a streaming hasher (64-bit).
pub struct FnvHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher { state: FNV_OFFSET }
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // FNV-1a 64-bit test vectors (with the trailing 0xFF length byte
        // HashMap appends excluded — hash raw bytes directly).
        let mut h = FnvHasher::default();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
        let mut h = FnvHasher::default();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn map_round_trip() {
        let mut m: FnvMap<String, i32> = FnvMap::default();
        m.insert("set".into(), 1);
        m.insert("while".into(), 2);
        assert_eq!(m.get("set"), Some(&1));
        assert_eq!(m.get("while"), Some(&2));
        assert_eq!(m.get("for"), None);
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        let strings = ["a", "b", "ab", "ba", "set", "incr", "while", ""];
        let hashes: Vec<u64> = strings
            .iter()
            .map(|s| {
                let mut h = FnvHasher::default();
                h.write(s.as_bytes());
                h.finish()
            })
            .collect();
        for i in 0..hashes.len() {
            for j in i + 1..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "{} vs {}", strings[i], strings[j]);
            }
        }
    }
}
