//! The interpreter profiler: per-proc inclusive/exclusive time and
//! call counts, plus per-opcode hit counters for the bytecode VM.
//!
//! Rides the same hooks as the span layer: `call_proc` brackets each
//! proc body with [`Profiler::enter`]/[`Profiler::exit`], and the VM
//! dispatch loop feeds [`Profiler::opcode_hit`]. Everything is one
//! `enabled` bool away when off — no clock reads, no hashing.
//!
//! Inclusive time is the whole body (children included); exclusive time
//! subtracts the inclusive time of directly nested proc calls, so a
//! thin wrapper shows up cheap even when what it wraps is hot. Call
//! counts and opcode hits are deterministic; the times are wall-clock
//! and only meaningful relatively.

use std::collections::HashMap;
use std::time::Instant;

#[derive(Debug, Default, Clone, Copy)]
struct ProcStat {
    calls: u64,
    incl_ns: u64,
    excl_ns: u64,
}

#[derive(Debug)]
struct ProfFrame {
    name: String,
    start: Instant,
    /// Inclusive nanoseconds of directly nested proc calls.
    child_ns: u64,
}

/// Per-proc and per-opcode execution profile (see module docs).
#[derive(Debug, Default)]
pub(crate) struct Profiler {
    enabled: bool,
    procs: HashMap<String, ProcStat>,
    stack: Vec<ProfFrame>,
    /// Indexed by `bc::Instr::opcode()`; sized lazily on first hit.
    opcode_hits: Vec<u64>,
}

impl Profiler {
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns profiling on or off. Frames opened under the other setting
    /// are abandoned so enters and exits can never cross a toggle.
    pub(crate) fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        self.stack.clear();
    }

    /// Opens a frame for a proc body. Returns whether one was pushed —
    /// the caller gates the matching [`Profiler::exit`] on it.
    #[inline]
    pub(crate) fn enter(&mut self, name: &str) -> bool {
        if !self.enabled {
            return false;
        }
        self.stack.push(ProfFrame {
            name: name.to_string(),
            start: Instant::now(),
            child_ns: 0,
        });
        true
    }

    /// Closes the innermost frame, folding its time into the stats.
    pub(crate) fn exit(&mut self) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let incl_ns = frame.start.elapsed().as_nanos() as u64;
        let excl_ns = incl_ns.saturating_sub(frame.child_ns);
        let stat = self.procs.entry(frame.name).or_default();
        stat.calls += 1;
        stat.incl_ns += incl_ns;
        stat.excl_ns += excl_ns;
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += incl_ns;
        }
    }

    /// Counts one dispatch of the given opcode.
    #[inline]
    pub(crate) fn opcode_hit(&mut self, opcode: usize) {
        if self.opcode_hits.len() <= opcode {
            self.opcode_hits.resize(opcode + 1, 0);
        }
        self.opcode_hits[opcode] += 1;
    }

    /// Drops all collected data (the enabled flag is kept — `interp
    /// profile reset` re-arms measurement, it does not stop it).
    pub(crate) fn reset(&mut self) {
        self.procs.clear();
        self.stack.clear();
        self.opcode_hits.clear();
    }

    /// The report behind `interp profile report`: one `proc` line per
    /// called proc (hottest inclusive first, name-ordered on ties) then
    /// one `op` line per dispatched opcode (most hits first). Call and
    /// hit counts are deterministic; the microsecond columns are wall
    /// clock.
    pub(crate) fn report(&self, opcode_names: &[&str]) -> String {
        let mut procs: Vec<(&String, &ProcStat)> = self.procs.iter().collect();
        procs.sort_by(|a, b| b.1.incl_ns.cmp(&a.1.incl_ns).then_with(|| a.0.cmp(b.0)));
        let mut lines: Vec<String> = procs
            .iter()
            .map(|(name, s)| {
                format!(
                    "proc {} calls {} inclUs {} exclUs {}",
                    name,
                    s.calls,
                    s.incl_ns / 1_000,
                    s.excl_ns / 1_000
                )
            })
            .collect();
        let mut ops: Vec<(usize, u64)> = self
            .opcode_hits
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, hits)| hits > 0)
            .collect();
        ops.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for (op, hits) in ops {
            let name = opcode_names.get(op).copied().unwrap_or("?");
            lines.push(format!("op {name} hits {hits}"));
        }
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_enter_is_free() {
        let mut p = Profiler::default();
        assert!(!p.enter("f"));
        p.exit();
        assert_eq!(p.report(&[]), "");
    }

    #[test]
    fn nested_calls_split_inclusive_and_exclusive() {
        let mut p = Profiler::default();
        p.set_enabled(true);
        assert!(p.enter("outer"));
        assert!(p.enter("inner"));
        p.exit();
        p.exit();
        let report = p.report(&[]);
        assert!(report.contains("proc outer calls 1"), "{report}");
        assert!(report.contains("proc inner calls 1"), "{report}");
        let outer = p.procs.get("outer").unwrap();
        let inner = p.procs.get("inner").unwrap();
        assert!(outer.incl_ns >= inner.incl_ns, "outer includes inner");
        assert_eq!(
            outer.excl_ns,
            outer.incl_ns - inner.incl_ns,
            "exclusive subtracts the nested call"
        );
    }

    #[test]
    fn toggle_mid_call_abandons_the_frame() {
        let mut p = Profiler::default();
        p.set_enabled(true);
        assert!(p.enter("f"));
        p.set_enabled(false);
        p.exit(); // caller's guarded exit: stack already empty
        assert!(p.procs.is_empty());
    }

    #[test]
    fn opcode_hits_render_sorted_by_count() {
        let mut p = Profiler::default();
        p.set_enabled(true);
        p.opcode_hit(2);
        p.opcode_hit(0);
        p.opcode_hit(2);
        assert_eq!(p.report(&["A", "B", "C"]), "op C hits 2\nop A hits 1");
        p.reset();
        assert_eq!(p.report(&["A", "B", "C"]), "");
    }
}
