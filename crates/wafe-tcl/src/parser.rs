//! Lexical helpers of the Tcl parser.
//!
//! The substitution-performing parts of parsing live in
//! [`crate::interp::Interp`] because `$var` and `[command]` substitution
//! need the interpreter; this module holds the pure-lexical scanners:
//! matching-delimiter searches and backslash processing.

use crate::error::{TclError, TclResult};

/// Processes the backslash sequence starting at `chars[pos]` (which is the
/// backslash itself). Returns the replacement text and the index of the
/// first character after the sequence.
///
/// Supported sequences follow the Tcl book: `\b \f \n \r \t \v`, octal
/// `\ddd`, hex `\xhh`, and backslash-newline (plus following white space)
/// which collapses to a single space. Any other `\c` yields `c`.
pub fn parse_backslash(chars: &[char], pos: usize) -> (String, usize) {
    debug_assert_eq!(chars[pos], '\\');
    if pos + 1 >= chars.len() {
        return ("\\".into(), pos + 1);
    }
    let c = chars[pos + 1];
    match c {
        'b' => ("\u{8}".into(), pos + 2),
        'f' => ("\u{c}".into(), pos + 2),
        'n' => ("\n".into(), pos + 2),
        'r' => ("\r".into(), pos + 2),
        't' => ("\t".into(), pos + 2),
        'v' => ("\u{b}".into(), pos + 2),
        '\n' => {
            let mut j = pos + 2;
            while j < chars.len() && (chars[j] == ' ' || chars[j] == '\t') {
                j += 1;
            }
            (" ".into(), j)
        }
        'x' => {
            let mut j = pos + 2;
            let mut val: u32 = 0;
            let mut any = false;
            while j < chars.len() && chars[j].is_ascii_hexdigit() && j - (pos + 2) < 2 {
                val = val * 16 + chars[j].to_digit(16).unwrap();
                any = true;
                j += 1;
            }
            if any {
                (char::from_u32(val).unwrap_or('\u{fffd}').to_string(), j)
            } else {
                ("x".into(), pos + 2)
            }
        }
        '0'..='7' => {
            let mut j = pos + 1;
            let mut val: u32 = 0;
            while j < chars.len() && ('0'..='7').contains(&chars[j]) && j - (pos + 1) < 3 {
                val = val * 8 + chars[j].to_digit(8).unwrap();
                j += 1;
            }
            (char::from_u32(val).unwrap_or('\u{fffd}').to_string(), j)
        }
        other => (other.to_string(), pos + 2),
    }
}

/// Finds the index of the `}` matching the `{` at `chars[pos]`.
///
/// Braces nest; a backslash escapes the following character.
pub fn find_matching_brace(chars: &[char], pos: usize) -> TclResult<usize> {
    debug_assert_eq!(chars[pos], '{');
    let mut depth = 1usize;
    let mut i = pos + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 1,
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Ok(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    Err(TclError::error("missing close-brace"))
}

/// Finds the index of the `]` matching the `[` at `chars[pos]`.
///
/// Skips nested brackets, braced blocks, double-quoted strings and
/// backslash escapes — the scan mirrors how Tcl finds the end of a command
/// substitution.
pub fn find_matching_bracket(chars: &[char], pos: usize) -> TclResult<usize> {
    debug_assert_eq!(chars[pos], '[');
    let mut depth = 1usize;
    let mut i = pos + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 1,
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Ok(i);
                }
            }
            '{' => i = find_matching_brace(chars, i)?,
            '"' => {
                i += 1;
                while i < chars.len() && chars[i] != '"' {
                    if chars[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    Err(TclError::error("missing close-bracket"))
}

/// Scans a variable name starting just after a `$` at `chars[pos]`.
///
/// Returns `(name, array_index_text, next_pos)`. The array index text (the
/// raw text between parentheses, still needing substitution) is `None` for
/// scalars. If no valid name follows, `name` is empty and the caller
/// treats the `$` literally.
pub fn scan_varname(chars: &[char], pos: usize) -> (String, Option<String>, usize) {
    let mut i = pos;
    if i < chars.len() && chars[i] == '{' {
        // ${name}: everything to the close brace, verbatim.
        let mut j = i + 1;
        while j < chars.len() && chars[j] != '}' {
            j += 1;
        }
        if j < chars.len() {
            return (chars[i + 1..j].iter().collect(), None, j + 1);
        }
        return (String::new(), None, pos);
    }
    let start = i;
    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
        i += 1;
    }
    if i == start {
        return (String::new(), None, pos);
    }
    let name: String = chars[start..i].iter().collect();
    if i < chars.len() && chars[i] == '(' {
        let mut depth = 1usize;
        let mut j = i + 1;
        while j < chars.len() {
            match chars[j] {
                '\\' => j += 1,
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if j < chars.len() {
            let idx: String = chars[i + 1..j].iter().collect();
            return (name, Some(idx), j + 1);
        }
    }
    (name, None, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cv(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn backslash_simple() {
        let c = cv("\\n");
        assert_eq!(parse_backslash(&c, 0), ("\n".into(), 2));
        let c = cv("\\q");
        assert_eq!(parse_backslash(&c, 0), ("q".into(), 2));
    }

    #[test]
    fn backslash_newline_eats_whitespace() {
        let c = cv("\\\n   x");
        let (s, p) = parse_backslash(&c, 0);
        assert_eq!(s, " ");
        assert_eq!(c[p], 'x');
    }

    #[test]
    fn backslash_octal_and_hex() {
        let c = cv("\\101");
        assert_eq!(parse_backslash(&c, 0), ("A".into(), 4));
        let c = cv("\\x41");
        assert_eq!(parse_backslash(&c, 0), ("A".into(), 4));
        let c = cv("\\x4");
        assert_eq!(parse_backslash(&c, 0).0, "\u{4}");
    }

    #[test]
    fn brace_matching() {
        let c = cv("{a{b}c}");
        assert_eq!(find_matching_brace(&c, 0).unwrap(), 6);
        let c = cv("{a\\}b}");
        assert_eq!(find_matching_brace(&c, 0).unwrap(), 5);
        let c = cv("{unclosed");
        assert!(find_matching_brace(&c, 0).is_err());
    }

    #[test]
    fn bracket_matching() {
        let c = cv("[a [b] c]");
        assert_eq!(find_matching_bracket(&c, 0).unwrap(), 8);
        let c = cv("[set x {]}]");
        assert_eq!(find_matching_bracket(&c, 0).unwrap(), 10);
        let c = cv("[set x \"]\"]");
        assert_eq!(find_matching_bracket(&c, 0).unwrap(), 10);
        let c = cv("[oops");
        assert!(find_matching_bracket(&c, 0).is_err());
    }

    #[test]
    fn varname_scan() {
        let c = cv("abc rest");
        assert_eq!(scan_varname(&c, 0), ("abc".into(), None, 3));
        let c = cv("arr(i,j) x");
        assert_eq!(scan_varname(&c, 0), ("arr".into(), Some("i,j".into()), 8));
        let c = cv("{strange name}x");
        assert_eq!(scan_varname(&c, 0), ("strange name".into(), None, 14));
        let c = cv(" not");
        assert_eq!(scan_varname(&c, 0).0, "");
    }
}
