//! Interpreter checkpointing: a rep-preserving snapshot of the global
//! frame and the proc table, plus the length-prefixed wire primitives
//! the outer session snapshot (wafe-core) builds on.
//!
//! The codec is designed around two invariants the property suite pins:
//!
//! 1. **Capture never shimmers.** Reading a value for the snapshot uses
//!    [`Value::snapshot_parts`], which clones the cached rep and the
//!    *already computed* string rep without forcing a render or a
//!    parse. A dual-rep value crosses the checkpoint boundary with both
//!    representations intact.
//! 2. **Encoding is canonical.** Globals and procs are written in
//!    sorted order and `Script` reps degrade to their source string at
//!    capture time, so `encode(decode(bytes)) == bytes` for any blob
//!    the encoder produced — re-parking a restored session yields a
//!    byte-identical snapshot.
//!
//! Decoding re-validates every cached rep against its string rep
//! ([`Value::from_snapshot_parts`]); a corrupt blob degrades to
//! string-only values instead of planting non-canonical reps.

use std::rc::Rc;

use crate::interp::{Interp, ProcDef};
use crate::value::IntRep;
use crate::Value;

/// Length-prefixed little-endian wire primitives shared by every
/// snapshot section (this module and wafe-core's `SessionSnapshot`).
pub mod wire {
    /// Appends a `u8`.
    pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
        buf.push(v);
    }

    /// Appends a `u32` (LE).
    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (LE).
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` (LE, two's complement).
    pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (LE).
    pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(buf: &mut Vec<u8>, s: &str) {
        put_u32(buf, s.len() as u32);
        buf.extend_from_slice(s.as_bytes());
    }

    /// Appends an optional string (presence byte + string).
    pub fn put_opt_str(buf: &mut Vec<u8>, s: Option<&str>) {
        match s {
            Some(s) => {
                put_u8(buf, 1);
                put_str(buf, s);
            }
            None => put_u8(buf, 0),
        }
    }

    /// A bounds-checked reader over a snapshot buffer. Every accessor
    /// fails loudly on truncation — a short or corrupt blob produces an
    /// error, never garbage.
    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// A reader over the whole buffer.
        pub fn new(buf: &'a [u8]) -> Self {
            Reader { buf, pos: 0 }
        }

        /// Bytes not yet consumed.
        pub fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }

        /// Takes `n` raw bytes.
        pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
            if self.remaining() < n {
                return Err(format!(
                    "snapshot truncated: need {n} bytes, have {}",
                    self.remaining()
                ));
            }
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }

        /// Reads a `u8`.
        pub fn u8(&mut self) -> Result<u8, String> {
            Ok(self.take(1)?[0])
        }

        /// Reads a `u32` (LE).
        pub fn u32(&mut self) -> Result<u32, String> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
        }

        /// Reads a `u64` (LE).
        pub fn u64(&mut self) -> Result<u64, String> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }

        /// Reads an `i64` (LE).
        pub fn i64(&mut self) -> Result<i64, String> {
            Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }

        /// Reads an `f64` bit pattern (LE).
        pub fn f64(&mut self) -> Result<f64, String> {
            Ok(f64::from_bits(self.u64()?))
        }

        /// Reads a length-prefixed UTF-8 string.
        pub fn str(&mut self) -> Result<String, String> {
            let n = self.u32()? as usize;
            let bytes = self.take(n)?;
            String::from_utf8(bytes.to_vec()).map_err(|_| "snapshot string not UTF-8".to_string())
        }

        /// Reads an optional string.
        pub fn opt_str(&mut self) -> Result<Option<String>, String> {
            match self.u8()? {
                0 => Ok(None),
                1 => Ok(Some(self.str()?)),
                t => Err(format!("snapshot optional-string tag {t} invalid")),
            }
        }

        /// Asserts the buffer is fully consumed.
        pub fn done(&self) -> Result<(), String> {
            if self.remaining() == 0 {
                Ok(())
            } else {
                Err(format!("snapshot has {} trailing bytes", self.remaining()))
            }
        }
    }
}

use wire::Reader;

// Value rep tags on the wire.
const REP_NONE: u8 = 0;
const REP_INT: u8 = 1;
const REP_DOUBLE: u8 = 2;
const REP_BOOL: u8 = 3;
const REP_LIST: u8 = 4;

/// Encodes one value: presence-tagged string rep, then the cached rep.
/// `Script` reps are canonicalized to their source string (the compiled
/// body is a cache; it is rebuilt lazily after restore), so encoding is
/// stable under decode→encode.
pub fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    let (str_rep, rep) = v.snapshot_parts();
    // A Script rep without its source string cannot exist (scripts are
    // compiled from strings); degrade defensively to the rendered form.
    let str_rep: Option<Rc<str>> = match (&str_rep, &rep) {
        (None, IntRep::Script(_)) => Some(v.shared_str()),
        _ => str_rep,
    };
    wire::put_opt_str(buf, str_rep.as_deref());
    match rep {
        IntRep::None | IntRep::Script(_) => wire::put_u8(buf, REP_NONE),
        IntRep::Int(n) => {
            wire::put_u8(buf, REP_INT);
            wire::put_i64(buf, n);
        }
        IntRep::Double(d) => {
            wire::put_u8(buf, REP_DOUBLE);
            wire::put_f64(buf, d);
        }
        IntRep::Bool(b) => {
            wire::put_u8(buf, REP_BOOL);
            wire::put_u8(buf, b as u8);
        }
        IntRep::List(elems) => {
            wire::put_u8(buf, REP_LIST);
            wire::put_u32(buf, elems.len() as u32);
            for e in elems.iter() {
                encode_value(buf, e);
            }
        }
    }
}

/// Decodes one value, re-validating the rep against the string rep.
pub fn decode_value(r: &mut Reader) -> Result<Value, String> {
    let str_rep: Option<Rc<str>> = r.opt_str()?.map(|s| Rc::from(s.as_str()));
    let rep = match r.u8()? {
        REP_NONE => IntRep::None,
        REP_INT => IntRep::Int(r.i64()?),
        REP_DOUBLE => IntRep::Double(r.f64()?),
        REP_BOOL => IntRep::Bool(r.u8()? != 0),
        REP_LIST => {
            let n = r.u32()? as usize;
            if n > r.remaining() {
                return Err(format!("snapshot list length {n} exceeds buffer"));
            }
            let mut elems = Vec::with_capacity(n);
            for _ in 0..n {
                elems.push(decode_value(r)?);
            }
            IntRep::List(Rc::new(elems))
        }
        t => return Err(format!("snapshot value rep tag {t} invalid")),
    };
    Ok(Value::from_snapshot_parts(str_rep, rep))
}

// Variable slot kinds on the wire.
const VAR_SCALAR: u8 = 0;
const VAR_ARRAY: u8 = 1;

/// One captured global variable.
#[derive(Debug, Clone)]
pub enum VarSnap {
    /// A scalar and its value.
    Scalar(Value),
    /// An associative array as key-sorted element pairs.
    Array(Vec<(String, Value)>),
}

/// One captured proc: `(name, formals-with-defaults, body)`.
pub type ProcSnap = (String, Vec<(String, Option<String>)>, String);

/// A rep-preserving snapshot of an interpreter's persistent scripting
/// state: the global frame and the proc table. Command registrations,
/// caches and telemetry are *not* captured — they are reconstructed by
/// the embedding when it builds the session the snapshot restores into.
#[derive(Debug, Clone, Default)]
pub struct InterpSnapshot {
    /// Global variables, name-sorted.
    pub globals: Vec<(String, VarSnap)>,
    /// User-defined procs, name-sorted: `(name, formals, body)`.
    pub procs: Vec<ProcSnap>,
}

impl InterpSnapshot {
    /// Captures the interpreter's global frame and proc table. Values
    /// are read without forcing representations (no shimmer).
    pub fn capture(interp: &Interp) -> InterpSnapshot {
        let mut globals = Vec::new();
        let mut names = interp.global_names();
        names.sort();
        for name in names {
            if interp.is_array(&name) {
                let mut keys = interp.array_names(&name).unwrap_or_default();
                keys.sort();
                let elems = keys
                    .into_iter()
                    .filter_map(|k| interp.get_elem(&name, &k).ok().map(|v| (k, v)))
                    .collect();
                globals.push((name, VarSnap::Array(elems)));
            } else if let Ok(v) = interp.get_var(&name) {
                globals.push((name, VarSnap::Scalar(v)));
            }
        }
        let mut procs = Vec::new();
        let mut proc_names = interp.proc_names();
        proc_names.sort();
        for name in proc_names {
            if let Some(def) = interp.get_proc(&name) {
                procs.push((name, def.args.clone(), def.body.clone()));
            }
        }
        InterpSnapshot { globals, procs }
    }

    /// Applies the snapshot to an interpreter: defines every proc
    /// (recompiling its body) and sets every global, preserving cached
    /// value reps. Existing state with colliding names is overwritten;
    /// everything else is left alone.
    pub fn apply(&self, interp: &mut Interp) {
        for (name, args, body) in &self.procs {
            interp.define_proc(name, ProcDef::new(args.clone(), body.clone()));
        }
        for (name, var) in &self.globals {
            match var {
                VarSnap::Scalar(v) => {
                    let _ = interp.set_var(name, v.clone());
                }
                VarSnap::Array(elems) => {
                    for (k, v) in elems {
                        let _ = interp.set_elem(name, k, v.clone());
                    }
                }
            }
        }
    }

    /// Encodes the snapshot into `buf` (canonical: sorted, Script-free).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        wire::put_u32(buf, self.globals.len() as u32);
        for (name, var) in &self.globals {
            wire::put_str(buf, name);
            match var {
                VarSnap::Scalar(v) => {
                    wire::put_u8(buf, VAR_SCALAR);
                    encode_value(buf, v);
                }
                VarSnap::Array(elems) => {
                    wire::put_u8(buf, VAR_ARRAY);
                    wire::put_u32(buf, elems.len() as u32);
                    for (k, v) in elems {
                        wire::put_str(buf, k);
                        encode_value(buf, v);
                    }
                }
            }
        }
        wire::put_u32(buf, self.procs.len() as u32);
        for (name, args, body) in &self.procs {
            wire::put_str(buf, name);
            wire::put_u32(buf, args.len() as u32);
            for (arg, default) in args {
                wire::put_str(buf, arg);
                wire::put_opt_str(buf, default.as_deref());
            }
            wire::put_str(buf, body);
        }
    }

    /// Decodes a snapshot produced by [`encode_into`](Self::encode_into).
    pub fn decode_from(r: &mut Reader) -> Result<InterpSnapshot, String> {
        let nglobals = r.u32()? as usize;
        let mut globals = Vec::new();
        for _ in 0..nglobals {
            let name = r.str()?;
            let var = match r.u8()? {
                VAR_SCALAR => VarSnap::Scalar(decode_value(r)?),
                VAR_ARRAY => {
                    let n = r.u32()? as usize;
                    let mut elems = Vec::new();
                    for _ in 0..n {
                        let k = r.str()?;
                        elems.push((k, decode_value(r)?));
                    }
                    VarSnap::Array(elems)
                }
                t => return Err(format!("snapshot variable tag {t} invalid")),
            };
            globals.push((name, var));
        }
        let nprocs = r.u32()? as usize;
        let mut procs = Vec::new();
        for _ in 0..nprocs {
            let name = r.str()?;
            let nargs = r.u32()? as usize;
            let mut args = Vec::new();
            for _ in 0..nargs {
                let arg = r.str()?;
                args.push((arg, r.opt_str()?));
            }
            procs.push((name, args, r.str()?));
        }
        Ok(InterpSnapshot { globals, procs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: &Interp) -> (Vec<u8>, InterpSnapshot) {
        let snap = InterpSnapshot::capture(i);
        let mut buf = Vec::new();
        snap.encode_into(&mut buf);
        let decoded = InterpSnapshot::decode_from(&mut Reader::new(&buf)).unwrap();
        let mut buf2 = Vec::new();
        decoded.encode_into(&mut buf2);
        assert_eq!(buf, buf2, "decode→encode must be byte-identical");
        (buf, decoded)
    }

    #[test]
    fn scalars_arrays_and_procs_roundtrip() {
        let mut i = Interp::new();
        i.eval("set greeting {hello world}").unwrap();
        i.eval("set n 42").unwrap();
        i.eval("set prices(apple) 3; set prices(pear) 5").unwrap();
        i.eval("proc double {x} {expr {$x * 2}}").unwrap();
        let (_, snap) = roundtrip(&i);
        let mut fresh = Interp::new();
        snap.apply(&mut fresh);
        assert_eq!(fresh.eval("set greeting").unwrap(), "hello world");
        assert_eq!(fresh.eval("double $n").unwrap(), "84");
        assert_eq!(fresh.eval("set prices(pear)").unwrap(), "5");
    }

    #[test]
    fn cached_int_rep_survives_without_shimmer() {
        let mut i = Interp::new();
        i.eval("set n [expr {40 + 2}]").unwrap();
        let snap = InterpSnapshot::capture(&i);
        let mut buf = Vec::new();
        snap.encode_into(&mut buf);
        let decoded = InterpSnapshot::decode_from(&mut Reader::new(&buf)).unwrap();
        let mut fresh = Interp::new();
        decoded.apply(&mut fresh);
        let v = fresh.get_var("n").unwrap();
        assert_eq!(v.cached_int(), Some(42), "int rep must cross the boundary");
    }

    #[test]
    fn corrupt_int_rep_is_dropped_not_trusted() {
        // Hand-build a blob whose Int rep disagrees with its string.
        let mut buf = Vec::new();
        wire::put_u32(&mut buf, 1); // one global
        wire::put_str(&mut buf, "x");
        wire::put_u8(&mut buf, VAR_SCALAR);
        wire::put_opt_str(&mut buf, Some("7"));
        wire::put_u8(&mut buf, REP_INT);
        wire::put_i64(&mut buf, 99);
        wire::put_u32(&mut buf, 0); // no procs
        let snap = InterpSnapshot::decode_from(&mut Reader::new(&buf)).unwrap();
        let VarSnap::Scalar(v) = &snap.globals[0].1 else {
            panic!("scalar expected");
        };
        assert_eq!(v.as_str(), "7");
        assert_eq!(v.cached_int(), None, "non-canonical rep must be dropped");
    }

    #[test]
    fn truncated_blob_errors() {
        let mut i = Interp::new();
        i.eval("set s abc").unwrap();
        let snap = InterpSnapshot::capture(&i);
        let mut buf = Vec::new();
        snap.encode_into(&mut buf);
        for cut in [1, buf.len() / 2, buf.len() - 1] {
            assert!(
                InterpSnapshot::decode_from(&mut Reader::new(&buf[..cut])).is_err(),
                "cut at {cut} must error"
            );
        }
    }
}
