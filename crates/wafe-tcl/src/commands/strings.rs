//! String commands: `string`, `format`, `scan`.

use crate::error::{wrong_num_args, TclError, TclResult};
use crate::glob::glob_match;
use crate::interp::Interp;
use crate::value::Value;

pub(super) fn register(interp: &mut Interp) {
    interp.register("string", cmd_string);
    interp.register("format", cmd_format);
    interp.register("scan", cmd_scan);
}

fn cmd_string(_: &mut Interp, argv: &[Value]) -> TclResult<Value> {
    if argv.len() < 3 {
        return Err(wrong_num_args("string option arg ?arg ...?"));
    }
    let s = &argv[2];
    match argv[1].as_str() {
        "length" => Ok(Value::from_int(s.chars().count() as i64)),
        "tolower" => Ok(s.to_lowercase().into()),
        "toupper" => Ok(s.to_uppercase().into()),
        "trim" | "trimleft" | "trimright" => {
            let set: Vec<char> = argv
                .get(3)
                .map(|t| t.chars().collect())
                .unwrap_or_else(|| vec![' ', '\t', '\n', '\r']);
            let pred = |c: char| set.contains(&c);
            Ok(match argv[1].as_str() {
                "trim" => s.trim_matches(pred).to_string(),
                "trimleft" => s.trim_start_matches(pred).to_string(),
                _ => s.trim_end_matches(pred).to_string(),
            }
            .into())
        }
        "index" => {
            let idx: i64 = argv
                .get(3)
                .ok_or_else(|| wrong_num_args("string index string charIndex"))?
                .parse()
                .map_err(|_| TclError::Error(format!("bad index \"{}\"", argv[3])))?;
            if idx < 0 {
                return Ok(Value::empty());
            }
            Ok(s.chars()
                .nth(idx as usize)
                .map(|c| c.to_string())
                .unwrap_or_default()
                .into())
        }
        "range" => {
            if argv.len() != 5 {
                return Err(wrong_num_args("string range string first last"));
            }
            let chars: Vec<char> = s.chars().collect();
            let first = super::parse_index(&argv[3], chars.len())?.max(0) as usize;
            let last = super::parse_index(&argv[4], chars.len())?;
            if last < 0 || first as i64 > last || first >= chars.len() {
                return Ok(Value::empty());
            }
            let last = (last as usize).min(chars.len() - 1);
            Ok(chars[first..=last].iter().collect::<String>().into())
        }
        "compare" => {
            if argv.len() != 4 {
                return Err(wrong_num_args("string compare string1 string2"));
            }
            Ok(match s.as_str().cmp(argv[3].as_str()) {
                std::cmp::Ordering::Less => "-1",
                std::cmp::Ordering::Equal => "0",
                std::cmp::Ordering::Greater => "1",
            }
            .into())
        }
        "match" => {
            if argv.len() != 4 {
                return Err(wrong_num_args("string match pattern string"));
            }
            Ok(if glob_match(s, &argv[3]) { "1" } else { "0" }.into())
        }
        "first" => {
            if argv.len() != 4 {
                return Err(wrong_num_args("string first string1 string2"));
            }
            Ok(Value::from_int(
                char_index_of(&argv[3], s).map(|n| n as i64).unwrap_or(-1),
            ))
        }
        "last" => {
            if argv.len() != 4 {
                return Err(wrong_num_args("string last string1 string2"));
            }
            Ok(Value::from_int(
                char_rindex_of(&argv[3], s).map(|n| n as i64).unwrap_or(-1),
            ))
        }
        other => Err(TclError::Error(format!(
            "bad option \"{other}\": must be compare, first, index, last, length, match, range, tolower, toupper, trim, trimleft, or trimright"
        ))),
    }
}

/// Char (not byte) index of the first occurrence of `needle` in `hay`.
fn char_index_of(hay: &str, needle: &str) -> Option<usize> {
    hay.find(needle).map(|byte| hay[..byte].chars().count())
}

fn char_rindex_of(hay: &str, needle: &str) -> Option<usize> {
    hay.rfind(needle).map(|byte| hay[..byte].chars().count())
}

fn cmd_format(_: &mut Interp, argv: &[Value]) -> TclResult<Value> {
    if argv.len() < 2 {
        return Err(wrong_num_args("format formatString ?arg arg ...?"));
    }
    format_impl(&argv[1], &argv[2..]).map(Value::from)
}

/// A C-`printf` subset: flags `-+ 0#`, width, precision; conversions
/// `s d i u o x X c f e E g G %`.
pub fn format_impl<S: AsRef<str>>(fmt: &str, args: &[S]) -> TclResult<String> {
    let chars: Vec<char> = fmt.chars().collect();
    let mut out = String::new();
    let mut ai = 0usize;
    let mut i = 0usize;
    let next_arg = |ai: &mut usize| -> TclResult<String> {
        let v = args
            .get(*ai)
            .map(|s| s.as_ref().to_string())
            .ok_or_else(|| TclError::error("not enough arguments for all format specifiers"))?;
        *ai += 1;
        Ok(v)
    };
    while i < chars.len() {
        if chars[i] != '%' {
            out.push(chars[i]);
            i += 1;
            continue;
        }
        i += 1;
        if i >= chars.len() {
            return Err(TclError::error(
                "format string ended in middle of field specifier",
            ));
        }
        if chars[i] == '%' {
            out.push('%');
            i += 1;
            continue;
        }
        // Flags.
        let (mut left, mut zero, mut plus, mut space, mut alt) =
            (false, false, false, false, false);
        while i < chars.len() {
            match chars[i] {
                '-' => left = true,
                '0' => zero = true,
                '+' => plus = true,
                ' ' => space = true,
                '#' => alt = true,
                _ => break,
            }
            i += 1;
        }
        // Width.
        let mut width = 0usize;
        let mut have_width = false;
        while i < chars.len() && chars[i].is_ascii_digit() {
            width = width * 10 + chars[i].to_digit(10).unwrap() as usize;
            have_width = true;
            i += 1;
        }
        // Precision.
        let mut prec: Option<usize> = None;
        if i < chars.len() && chars[i] == '.' {
            i += 1;
            let mut p = 0usize;
            while i < chars.len() && chars[i].is_ascii_digit() {
                p = p * 10 + chars[i].to_digit(10).unwrap() as usize;
                i += 1;
            }
            prec = Some(p);
        }
        // Length modifiers `l`/`h` are accepted and ignored.
        while i < chars.len() && matches!(chars[i], 'l' | 'h') {
            i += 1;
        }
        if i >= chars.len() {
            return Err(TclError::error(
                "format string ended in middle of field specifier",
            ));
        }
        let conv = chars[i];
        i += 1;
        let parse_int = |s: &str| -> TclResult<i64> {
            let t = s.trim();
            if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
                return i64::from_str_radix(h, 16)
                    .map_err(|_| TclError::Error(format!("expected integer but got \"{s}\"")));
            }
            t.parse::<i64>().or_else(|_| {
                t.parse::<f64>()
                    .map(|f| f as i64)
                    .map_err(|_| TclError::Error(format!("expected integer but got \"{s}\"")))
            })
        };
        let piece: String = match conv {
            's' => {
                let mut v = next_arg(&mut ai)?;
                if let Some(p) = prec {
                    v = v.chars().take(p).collect();
                }
                v
            }
            'd' | 'i' => {
                let v = parse_int(&next_arg(&mut ai)?)?;
                let body = v.abs().to_string();
                let sign = if v < 0 {
                    "-"
                } else if plus {
                    "+"
                } else if space {
                    " "
                } else {
                    ""
                };
                format!("{sign}{body}")
            }
            'u' => (parse_int(&next_arg(&mut ai)?)? as u64).to_string(),
            'o' => {
                let v = parse_int(&next_arg(&mut ai)?)? as u64;
                if alt {
                    format!("0{v:o}")
                } else {
                    format!("{v:o}")
                }
            }
            'x' => {
                let v = parse_int(&next_arg(&mut ai)?)? as u64;
                if alt {
                    format!("0x{v:x}")
                } else {
                    format!("{v:x}")
                }
            }
            'X' => {
                let v = parse_int(&next_arg(&mut ai)?)? as u64;
                if alt {
                    format!("0X{v:X}")
                } else {
                    format!("{v:X}")
                }
            }
            'c' => {
                let v = parse_int(&next_arg(&mut ai)?)?;
                char::from_u32(v as u32).unwrap_or('\u{fffd}').to_string()
            }
            'f' => {
                let v: f64 = parse_float(&next_arg(&mut ai)?)?;
                let p = prec.unwrap_or(6);
                let body = format!("{:.*}", p, v.abs());
                let sign = if v.is_sign_negative() {
                    "-"
                } else if plus {
                    "+"
                } else {
                    ""
                };
                format!("{sign}{body}")
            }
            'e' | 'E' => {
                let v: f64 = parse_float(&next_arg(&mut ai)?)?;
                let p = prec.unwrap_or(6);
                let s = format!("{v:.*e}", p);
                let s = fix_exponent(&s);
                if conv == 'E' {
                    s.to_uppercase()
                } else {
                    s
                }
            }
            'g' | 'G' => {
                let v: f64 = parse_float(&next_arg(&mut ai)?)?;
                let s = format!("{v}");
                if conv == 'G' {
                    s.to_uppercase()
                } else {
                    s
                }
            }
            other => return Err(TclError::Error(format!("bad field specifier \"{other}\""))),
        };
        // Apply width.
        let padded = if have_width && piece.chars().count() < width {
            let pad = width - piece.chars().count();
            if left {
                format!("{piece}{}", " ".repeat(pad))
            } else if zero && !matches!(conv, 's' | 'c') {
                if let Some(stripped) = piece.strip_prefix('-') {
                    format!("-{}{stripped}", "0".repeat(pad))
                } else {
                    format!("{}{piece}", "0".repeat(pad))
                }
            } else {
                format!("{}{piece}", " ".repeat(pad))
            }
        } else {
            piece
        };
        out.push_str(&padded);
    }
    Ok(out)
}

fn parse_float(s: &str) -> TclResult<f64> {
    s.trim()
        .parse::<f64>()
        .map_err(|_| TclError::Error(format!("expected floating-point number but got \"{s}\"")))
}

/// Rust renders exponents as `e0`; C as `e+00`. Convert.
fn fix_exponent(s: &str) -> String {
    if let Some(epos) = s.find(['e', 'E']) {
        let (mantissa, exp) = s.split_at(epos);
        let exp = &exp[1..];
        let (sign, digits) = match exp.strip_prefix('-') {
            Some(d) => ("-", d),
            None => ("+", exp.strip_prefix('+').unwrap_or(exp)),
        };
        let digits = if digits.len() < 2 {
            format!("0{digits}")
        } else {
            digits.to_string()
        };
        format!("{mantissa}e{sign}{digits}")
    } else {
        s.to_string()
    }
}

fn cmd_scan(i: &mut Interp, argv: &[Value]) -> TclResult<Value> {
    if argv.len() < 3 {
        return Err(wrong_num_args("scan string format ?varName varName ...?"));
    }
    let input: Vec<char> = argv[1].chars().collect();
    let fmt: Vec<char> = argv[2].chars().collect();
    let mut si = 0usize;
    let mut fi = 0usize;
    let mut vi = 3usize;
    let mut count = 0usize;
    while fi < fmt.len() {
        let fc = fmt[fi];
        if fc.is_whitespace() {
            while si < input.len() && input[si].is_whitespace() {
                si += 1;
            }
            fi += 1;
            continue;
        }
        if fc != '%' {
            if si < input.len() && input[si] == fc {
                si += 1;
                fi += 1;
                continue;
            }
            break;
        }
        fi += 1;
        if fi >= fmt.len() {
            break;
        }
        // Optional maximum field width.
        let mut maxw = usize::MAX;
        let mut w = 0usize;
        let mut have_w = false;
        while fi < fmt.len() && fmt[fi].is_ascii_digit() {
            w = w * 10 + fmt[fi].to_digit(10).unwrap() as usize;
            have_w = true;
            fi += 1;
        }
        if have_w {
            maxw = w;
        }
        let conv = fmt[fi];
        fi += 1;
        while si < input.len() && input[si].is_whitespace() && conv != 'c' {
            si += 1;
        }
        let assign = |i: &mut Interp, vi: &mut usize, val: &str| -> TclResult<()> {
            if *vi >= argv.len() {
                return Err(TclError::error(
                    "different numbers of variable names and field specifiers",
                ));
            }
            i.set_var(&argv[*vi], val)?;
            *vi += 1;
            Ok(())
        };
        match conv {
            'd' => {
                let start = si;
                if si < input.len() && (input[si] == '-' || input[si] == '+') {
                    si += 1;
                }
                while si < input.len() && input[si].is_ascii_digit() && si - start < maxw {
                    si += 1;
                }
                if si == start {
                    break;
                }
                let text: String = input[start..si].iter().collect();
                assign(i, &mut vi, &text)?;
                count += 1;
            }
            'f' | 'e' | 'g' => {
                let start = si;
                if si < input.len() && (input[si] == '-' || input[si] == '+') {
                    si += 1;
                }
                while si < input.len()
                    && (input[si].is_ascii_digit()
                        || matches!(input[si], '.' | 'e' | 'E' | '-' | '+'))
                    && si - start < maxw
                {
                    si += 1;
                }
                if si == start {
                    break;
                }
                let text: String = input[start..si].iter().collect();
                let v: f64 = match text.parse() {
                    Ok(v) => v,
                    Err(_) => break,
                };
                assign(i, &mut vi, &crate::expr::format_double(v))?;
                count += 1;
            }
            's' => {
                let start = si;
                while si < input.len() && !input[si].is_whitespace() && si - start < maxw {
                    si += 1;
                }
                if si == start {
                    break;
                }
                let text: String = input[start..si].iter().collect();
                assign(i, &mut vi, &text)?;
                count += 1;
            }
            'c' => {
                if si >= input.len() {
                    break;
                }
                let text = input[si].to_string();
                si += 1;
                assign(i, &mut vi, &text)?;
                count += 1;
            }
            other => {
                return Err(TclError::Error(format!(
                    "bad scan conversion character \"{other}\""
                )))
            }
        }
    }
    Ok(Value::from_int(count as i64))
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    fn new() -> Interp {
        Interp::new()
    }

    #[test]
    fn string_length_case_trim() {
        let mut i = new();
        assert_eq!(i.eval("string length hello").unwrap(), "5");
        assert_eq!(i.eval("string toupper abc").unwrap(), "ABC");
        assert_eq!(i.eval("string tolower ABC").unwrap(), "abc");
        assert_eq!(i.eval("string trim {  hi  }").unwrap(), "hi");
        assert_eq!(i.eval("string trimleft xxhixx x").unwrap(), "hixx");
        assert_eq!(i.eval("string trimright xxhixx x").unwrap(), "xxhi");
    }

    #[test]
    fn string_index_range() {
        let mut i = new();
        assert_eq!(i.eval("string index abcde 2").unwrap(), "c");
        assert_eq!(i.eval("string index abcde 99").unwrap(), "");
        assert_eq!(i.eval("string range abcde 1 3").unwrap(), "bcd");
        assert_eq!(i.eval("string range abcde 2 end").unwrap(), "cde");
    }

    #[test]
    fn string_compare_match_first_last() {
        let mut i = new();
        assert_eq!(i.eval("string compare a b").unwrap(), "-1");
        assert_eq!(i.eval("string compare b b").unwrap(), "0");
        assert_eq!(i.eval("string compare c b").unwrap(), "1");
        assert_eq!(i.eval("string match *.c main.c").unwrap(), "1");
        assert_eq!(i.eval("string match *.c main.h").unwrap(), "0");
        assert_eq!(i.eval("string first bc abcbc").unwrap(), "1");
        assert_eq!(i.eval("string last bc abcbc").unwrap(), "3");
        assert_eq!(i.eval("string first zz abc").unwrap(), "-1");
    }

    #[test]
    fn format_basics() {
        let mut i = new();
        assert_eq!(i.eval("format %d 42").unwrap(), "42");
        assert_eq!(i.eval("format %5d 42").unwrap(), "   42");
        assert_eq!(i.eval("format %-5d| 42").unwrap(), "42   |");
        assert_eq!(i.eval("format %05d 42").unwrap(), "00042");
        assert_eq!(i.eval("format %05d -42").unwrap(), "-0042");
        assert_eq!(i.eval("format %x 255").unwrap(), "ff");
        assert_eq!(i.eval("format %#x 255").unwrap(), "0xff");
        assert_eq!(i.eval("format %o 8").unwrap(), "10");
        assert_eq!(i.eval("format %c 65").unwrap(), "A");
        assert_eq!(i.eval("format {%d%%} 7").unwrap(), "7%");
    }

    #[test]
    fn format_strings_and_floats() {
        let mut i = new();
        assert_eq!(i.eval("format %s hello").unwrap(), "hello");
        assert_eq!(i.eval("format %.3s hello").unwrap(), "hel");
        assert_eq!(i.eval("format %8.2f 3.14159").unwrap(), "    3.14");
        assert_eq!(i.eval("format %+d 5").unwrap(), "+5");
        assert_eq!(i.eval("format {%s is %d} age 30").unwrap(), "age is 30");
    }

    #[test]
    fn format_exponent() {
        let mut i = new();
        assert_eq!(i.eval("format %.2e 12345.0").unwrap(), "1.23e+04");
    }

    #[test]
    fn format_errors() {
        let mut i = new();
        assert!(i.eval("format %d").is_err());
        assert!(i.eval("format %d notanumber").is_err());
        assert!(i.eval("format %q 1").is_err());
    }

    #[test]
    fn scan_basics() {
        let mut i = new();
        assert_eq!(i.eval("scan {10 20 hello} {%d %d %s} a b c").unwrap(), "3");
        assert_eq!(i.get_var("a").unwrap(), "10");
        assert_eq!(i.get_var("b").unwrap(), "20");
        assert_eq!(i.get_var("c").unwrap(), "hello");
    }

    #[test]
    fn scan_partial_match() {
        let mut i = new();
        assert_eq!(i.eval("scan {12 abc} {%d %d} x y").unwrap(), "1");
        assert_eq!(i.get_var("x").unwrap(), "12");
    }

    #[test]
    fn scan_float_and_char() {
        let mut i = new();
        assert_eq!(i.eval("scan {3.5 x} {%f %c} f c").unwrap(), "2");
        assert_eq!(i.get_var("f").unwrap(), "3.5");
        assert_eq!(i.get_var("c").unwrap(), "x");
    }
}
