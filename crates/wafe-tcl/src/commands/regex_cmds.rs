//! The `regexp` and `regsub` commands (Henry Spencer dialect, as in the
//! Tcl 6.x Wafe embedded).

use crate::error::{wrong_num_args, TclError, TclResult};
use crate::interp::Interp;
use crate::regex::{expand_subspec, Regex};
use crate::value::Value;

pub(super) fn register(interp: &mut Interp) {
    interp.register("regexp", cmd_regexp);
    interp.register("regsub", cmd_regsub);
}

fn cmd_regexp(i: &mut Interp, argv: &[Value]) -> TclResult<Value> {
    let usage = "regexp ?-nocase? ?-indices? exp string ?matchVar? ?subVar subVar ...?";
    let mut a = 1usize;
    let mut nocase = false;
    let mut indices = false;
    while a < argv.len() && argv[a].starts_with('-') {
        match argv[a].as_str() {
            "-nocase" => nocase = true,
            "-indices" => indices = true,
            "--" => {
                a += 1;
                break;
            }
            other => {
                return Err(TclError::Error(format!(
                    "bad switch \"{other}\": must be -nocase, -indices, or --"
                )))
            }
        }
        a += 1;
    }
    if argv.len() < a + 2 {
        return Err(wrong_num_args(usage));
    }
    let re = Regex::compile(&argv[a], nocase).map_err(|e| {
        TclError::Error(format!("couldn't compile regular expression pattern: {e}"))
    })?;
    let string = &argv[a + 1];
    let vars = &argv[a + 2..];
    let m = match re.find(string) {
        Some(m) => m,
        None => {
            // Unset-like behaviour: Tcl sets the vars to "" on no match?
            // Tcl leaves them untouched and returns 0.
            return Ok("0".into());
        }
    };
    let chars: Vec<char> = string.chars().collect();
    for (k, var) in vars.iter().enumerate() {
        let span = m.spans.get(k).copied().flatten();
        let value = if indices {
            match span {
                Some((lo, hi)) => format!("{lo} {}", hi.max(lo + 1) - 1),
                None => "-1 -1".into(),
            }
        } else {
            match span {
                Some((lo, hi)) => chars[lo..hi].iter().collect(),
                None => String::new(),
            }
        };
        i.set_var(var, &value)?;
    }
    Ok("1".into())
}

fn cmd_regsub(i: &mut Interp, argv: &[Value]) -> TclResult<Value> {
    let usage = "regsub ?-all? ?-nocase? exp string subSpec varName";
    let mut a = 1usize;
    let mut nocase = false;
    let mut all = false;
    while a < argv.len() && argv[a].starts_with('-') {
        match argv[a].as_str() {
            "-nocase" => nocase = true,
            "-all" => all = true,
            "--" => {
                a += 1;
                break;
            }
            other => {
                return Err(TclError::Error(format!(
                    "bad switch \"{other}\": must be -all, -nocase, or --"
                )))
            }
        }
        a += 1;
    }
    if argv.len() != a + 4 {
        return Err(wrong_num_args(usage));
    }
    let re = Regex::compile(&argv[a], nocase).map_err(|e| {
        TclError::Error(format!("couldn't compile regular expression pattern: {e}"))
    })?;
    let string = &argv[a + 1];
    let subspec = &argv[a + 2];
    let var = &argv[a + 3];
    let chars: Vec<char> = string.chars().collect();
    let mut out = String::new();
    let mut pos = 0usize;
    let mut count = 0u64;
    loop {
        let rest: String = chars[pos..].iter().collect();
        let m = match re.find(&rest) {
            Some(m) => m,
            None => break,
        };
        let (lo, hi) = m.spans[0].unwrap();
        // Shift spans to absolute positions for expansion.
        let abs = crate::regex::Match {
            spans: m
                .spans
                .iter()
                .map(|s| s.map(|(a2, b2)| (a2 + pos, b2 + pos)))
                .collect(),
        };
        out.extend(&chars[pos..pos + lo]);
        out.push_str(&expand_subspec(subspec, &chars, &abs));
        count += 1;
        let advance = if hi > lo { pos + hi } else { pos + hi + 1 };
        if !all {
            pos += hi;
            break;
        }
        if advance > pos + hi {
            // Zero-width match: copy one char through to make progress.
            if pos + hi < chars.len() {
                out.push(chars[pos + hi]);
            }
        }
        pos = advance;
        if pos > chars.len() {
            break;
        }
    }
    out.extend(&chars[pos.min(chars.len())..]);
    i.set_var(var, out)?;
    Ok(Value::from_int(count as i64))
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    fn new() -> Interp {
        Interp::new()
    }

    #[test]
    fn regexp_basic_match() {
        let mut i = new();
        assert_eq!(i.eval("regexp {b+} abbbc").unwrap(), "1");
        assert_eq!(i.eval("regexp {z+} abbbc").unwrap(), "0");
    }

    #[test]
    fn regexp_capture_vars() {
        let mut i = new();
        assert_eq!(
            i.eval("regexp {([0-9]+)\\.([0-9]+)} {version 6.7 here} whole major minor")
                .unwrap(),
            "1"
        );
        assert_eq!(i.get_var("whole").unwrap(), "6.7");
        assert_eq!(i.get_var("major").unwrap(), "6");
        assert_eq!(i.get_var("minor").unwrap(), "7");
    }

    #[test]
    fn regexp_nocase_and_indices() {
        let mut i = new();
        assert_eq!(
            i.eval("regexp -nocase {WAFE} {the wafe frontend} m")
                .unwrap(),
            "1"
        );
        assert_eq!(i.get_var("m").unwrap(), "wafe");
        assert_eq!(
            i.eval("regexp -indices {fr..t} {the wafe frontend} ix")
                .unwrap(),
            "1"
        );
        assert_eq!(i.get_var("ix").unwrap(), "9 13");
    }

    #[test]
    fn regexp_no_match_leaves_vars() {
        let mut i = new();
        i.set_var("m", "untouched").unwrap();
        assert_eq!(i.eval("regexp {zz} {abc} m").unwrap(), "0");
        assert_eq!(i.get_var("m").unwrap(), "untouched");
    }

    #[test]
    fn regexp_bad_pattern_is_error() {
        let mut i = new();
        assert!(i.eval("regexp {(} x").is_err());
        assert!(i.eval("regexp -bogus {a} x").is_err());
    }

    #[test]
    fn regsub_single() {
        let mut i = new();
        assert_eq!(i.eval("regsub {o} {foo bog} {0} out").unwrap(), "1");
        assert_eq!(i.get_var("out").unwrap(), "f0o bog");
    }

    #[test]
    fn regsub_all_with_ampersand() {
        let mut i = new();
        assert_eq!(
            i.eval("regsub -all {[0-9]+} {a1 b22 c333} {<&>} out")
                .unwrap(),
            "3"
        );
        assert_eq!(i.get_var("out").unwrap(), "a<1> b<22> c<333>");
    }

    #[test]
    fn regsub_group_reference() {
        let mut i = new();
        assert_eq!(
            i.eval("regsub -all {([a-z])([0-9])} {a1 b2} {\\2\\1} out")
                .unwrap(),
            "2"
        );
        assert_eq!(i.get_var("out").unwrap(), "1a 2b");
    }

    #[test]
    fn regsub_no_match_copies_input() {
        let mut i = new();
        assert_eq!(i.eval("regsub {zz} {hello} {x} out").unwrap(), "0");
        assert_eq!(i.get_var("out").unwrap(), "hello");
    }

    #[test]
    fn regsub_nocase() {
        let mut i = new();
        assert_eq!(
            i.eval("regsub -nocase {WORLD} {hello world} {Wafe} out")
                .unwrap(),
            "1"
        );
        assert_eq!(i.get_var("out").unwrap(), "hello Wafe");
    }
}
