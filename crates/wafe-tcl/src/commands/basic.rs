//! Variable commands, evaluation commands and miscellany:
//! `set unset incr append expr eval catch error echo puts rename source
//! time info array`.

use std::time::Instant;

use crate::error::{wrong_num_args, TclError, TclResult};
use crate::glob::glob_match;
use crate::interp::Interp;
use crate::list::{list_join, parse_list};
use crate::value::Value;

/// Splits a variable specifier of the form `name` or `name(index)`.
pub fn split_varspec(spec: &str) -> (String, Option<String>) {
    let (name, idx) = split_varspec_ref(spec);
    (name.to_string(), idx.map(str::to_string))
}

/// Borrowing form of [`split_varspec`]: no allocation on the hot path.
fn split_varspec_ref(spec: &str) -> (&str, Option<&str>) {
    if let Some(open) = spec.find('(') {
        if spec.ends_with(')') {
            return (&spec[..open], Some(&spec[open + 1..spec.len() - 1]));
        }
    }
    (spec, None)
}

pub(crate) fn var_get(interp: &Interp, spec: &str) -> TclResult<Value> {
    var_get_ref(interp, spec).cloned()
}

pub(crate) fn var_get_ref<'a>(interp: &'a Interp, spec: &str) -> TclResult<&'a Value> {
    match split_varspec_ref(spec) {
        (name, None) => interp.get_var_ref(name),
        (name, Some(idx)) => interp.get_elem_ref(name, idx),
    }
}

pub(crate) fn var_set(interp: &mut Interp, spec: &str, value: Value) -> TclResult<()> {
    match split_varspec_ref(spec) {
        (name, None) => interp.set_var(name, value),
        (name, Some(idx)) => interp.set_elem(name, idx, value),
    }
}

pub(super) fn register(interp: &mut Interp) {
    interp.register("set", |i, argv| match argv.len() {
        2 => var_get(i, &argv[1]),
        3 => {
            var_set(i, &argv[1], argv[2].clone())?;
            Ok(argv[2].clone())
        }
        _ => Err(wrong_num_args("set varName ?newValue?")),
    });

    interp.register("unset", |i, argv| {
        if argv.len() < 2 {
            return Err(wrong_num_args("unset varName ?varName ...?"));
        }
        for spec in &argv[1..] {
            match split_varspec(spec) {
                (name, None) => i.unset_var(&name)?,
                (name, Some(idx)) => i.unset_elem(&name, &idx)?,
            }
        }
        Ok(Value::empty())
    });

    interp.register("incr", |i, argv| {
        if argv.len() != 2 && argv.len() != 3 {
            return Err(wrong_num_args("incr varName ?increment?"));
        }
        // `as_int` hits the cached Int rep when present (the loop-counter
        // hot path: no text parse at all) and only caches canonical
        // decimal spellings, so the strict-parse error cases below are
        // byte-identical to the string model.
        let cur: i64 = {
            let v = var_get_ref(i, &argv[1])?;
            v.as_int()
                .ok_or_else(|| TclError::Error(format!("expected integer but got \"{v}\"")))?
        };
        let amount: i64 = if argv.len() == 3 {
            argv[2].as_int().ok_or_else(|| {
                TclError::Error(format!("expected integer but got \"{}\"", argv[2]))
            })?
        } else {
            1
        };
        let new = Value::from_int(cur.wrapping_add(amount));
        var_set(i, &argv[1], new.clone())?;
        Ok(new)
    });

    interp.register("append", |i, argv| {
        if argv.len() < 2 {
            return Err(wrong_num_args("append varName ?value value ...?"));
        }
        let mut cur = match var_get_ref(i, &argv[1]) {
            Ok(v) => v.to_string(),
            Err(_) => String::new(),
        };
        for v in &argv[2..] {
            cur.push_str(v);
        }
        let new = Value::from(cur);
        var_set(i, &argv[1], new.clone())?;
        Ok(new)
    });

    interp.register("expr", |i, argv| {
        if argv.len() < 2 {
            return Err(wrong_num_args("expr arg ?arg ...?"));
        }
        if argv.len() == 2 {
            return crate::expr::eval_expr_value(i, &argv[1]);
        }
        let text = argv[1..].join(" ");
        crate::expr::eval_expr_value(i, &text)
    });

    interp.register("eval", |i, argv| {
        if argv.len() < 2 {
            return Err(wrong_num_args("eval arg ?arg ...?"));
        }
        if argv.len() == 2 {
            return i.eval_value(&argv[1]);
        }
        let script = argv[1..].join(" ");
        i.eval(&script)
    });

    interp.register("catch", |i, argv| {
        if argv.len() != 2 && argv.len() != 3 {
            return Err(wrong_num_args("catch command ?varName?"));
        }
        let (code, value) = match i.eval_value(&argv[1]) {
            Ok(v) => (0, v),
            Err(TclError::Error(m)) => (1, Value::from(m)),
            Err(TclError::Return(v)) => (2, Value::from(v)),
            Err(TclError::Break) => (3, Value::empty()),
            Err(TclError::Continue) => (4, Value::empty()),
        };
        if argv.len() == 3 {
            var_set(i, &argv[2], value)?;
        }
        Ok(Value::from_int(code))
    });

    interp.register("error", |_, argv| {
        if argv.len() < 2 || argv.len() > 4 {
            return Err(wrong_num_args("error message ?errorInfo? ?errorCode?"));
        }
        Err(TclError::Error(argv[1].to_string()))
    });

    let echo = |i: &mut Interp, argv: &[Value]| {
        let line = argv[1..].join(" ");
        i.write_output(&line);
        i.write_output("\n");
        Ok(Value::empty())
    };
    interp.register("echo", echo);
    interp.register("puts", move |i, argv| {
        // `puts ?-nonewline? string`; file channels are not supported.
        match argv.len() {
            2 => {
                i.write_output(&argv[1]);
                i.write_output("\n");
                Ok(Value::empty())
            }
            3 if argv[1] == "-nonewline" => {
                i.write_output(&argv[2]);
                Ok(Value::empty())
            }
            3 if argv[1] == "stdout" => {
                i.write_output(&argv[2]);
                i.write_output("\n");
                Ok(Value::empty())
            }
            _ => Err(wrong_num_args("puts ?-nonewline? string")),
        }
    });

    interp.register("rename", |i, argv| {
        if argv.len() != 3 {
            return Err(wrong_num_args("rename oldName newName"));
        }
        i.rename_command(&argv[1], &argv[2])?;
        Ok(Value::empty())
    });

    interp.register("source", |i, argv| {
        if argv.len() != 2 {
            return Err(wrong_num_args("source fileName"));
        }
        let text = std::fs::read_to_string(argv[1].as_str())
            .map_err(|e| TclError::Error(format!("couldn't read file \"{}\": {e}", argv[1])))?;
        // Strip a leading `#!` line so file-mode scripts can be sourced.
        i.eval(&text)
    });

    interp.register("time", |i, argv| {
        if argv.len() != 2 && argv.len() != 3 {
            return Err(wrong_num_args("time command ?count?"));
        }
        let count: u64 = if argv.len() == 3 {
            argv[2]
                .parse()
                .map_err(|_| TclError::Error(format!("expected integer but got \"{}\"", argv[2])))?
        } else {
            1
        };
        let start = Instant::now();
        for _ in 0..count.max(1) {
            i.eval_value(&argv[1])?;
        }
        let micros = start.elapsed().as_micros() as u64 / count.max(1);
        Ok(Value::from(format!("{micros} microseconds per iteration")))
    });

    interp.register("subst", |i, argv| {
        if argv.len() != 2 {
            return Err(wrong_num_args("subst string"));
        }
        i.substitute_all(&argv[1]).map(Value::from)
    });

    interp.register("info", cmd_info);
    interp.register("array", cmd_array);
    interp.register("trace", cmd_trace);
    interp.register("interp", cmd_interp);
}

/// `interp cachestats | cacheclear | cachelimit ?n? | shimmerstats |
/// bcstats | bcenable | bcdisable | profile on|off|report|reset` —
/// introspection for the parse-once caches, the dual-representation
/// value layer, the bytecode VM and the proc/opcode profiler.
fn cmd_interp(i: &mut Interp, argv: &[Value]) -> TclResult<Value> {
    if argv.len() < 2 {
        return Err(wrong_num_args("interp option ?arg?"));
    }
    match argv[1].as_str() {
        "cachestats" => {
            if argv.len() != 2 {
                return Err(wrong_num_args("interp cachestats"));
            }
            let s = i.cache_stats();
            let pairs = [
                ("hits", s.script_hits.to_string()),
                ("misses", s.script_misses.to_string()),
                ("entries", s.script_entries.to_string()),
                ("evictions", s.script_evictions.to_string()),
                ("exprHits", s.expr_hits.to_string()),
                ("exprMisses", s.expr_misses.to_string()),
                ("exprEntries", s.expr_entries.to_string()),
                ("exprEvictions", s.expr_evictions.to_string()),
                ("limit", s.limit.to_string()),
                // Bytecode-cache traffic, counted apart from the parse
                // cache above: a script can hit the parse cache yet still
                // compile (first run) or fall back (uncompilable).
                ("bcHits", s.bc_hits.to_string()),
                ("bcCompiles", s.bc_compiles.to_string()),
                ("bcFallbacks", s.bc_fallbacks.to_string()),
            ];
            let words: Vec<String> = pairs
                .iter()
                .flat_map(|(k, v)| [k.to_string(), v.clone()])
                .collect();
            Ok(Value::from(list_join(&words)))
        }
        "shimmerstats" => {
            if argv.len() != 2 {
                return Err(wrong_num_args("interp shimmerstats"));
            }
            let s = crate::value::shimmer_stats();
            let pairs = [
                ("intParses", s.int_parses),
                ("doubleParses", s.double_parses),
                ("listParses", s.list_parses),
                ("repHits", s.rep_hits),
                ("renders", s.renders),
                ("listCow", s.list_cow),
                ("cmdInternHits", s.cmd_intern_hits),
            ];
            let words: Vec<String> = pairs
                .iter()
                .flat_map(|(k, v)| [k.to_string(), v.to_string()])
                .collect();
            Ok(Value::from(list_join(&words)))
        }
        "bcstats" => {
            if argv.len() != 2 {
                return Err(wrong_num_args("interp bcstats"));
            }
            let s = i.bc_stats();
            let pairs = [
                ("compiles", s.compiles),
                ("hits", s.hits),
                ("fallbacks", s.fallbacks),
                ("instructions", s.instructions),
                ("enabled", i.bc_enabled() as u64),
            ];
            let words: Vec<String> = pairs
                .iter()
                .flat_map(|(k, v)| [k.to_string(), v.to_string()])
                .collect();
            Ok(Value::from(list_join(&words)))
        }
        "bcenable" | "bcdisable" => {
            if argv.len() != 2 {
                return Err(wrong_num_args(if argv[1].as_str() == "bcenable" {
                    "interp bcenable"
                } else {
                    "interp bcdisable"
                }));
            }
            let was = i.set_bc_enabled(argv[1].as_str() == "bcenable");
            Ok(Value::from_int(was as i64))
        }
        "cacheclear" => {
            if argv.len() != 2 {
                return Err(wrong_num_args("interp cacheclear"));
            }
            i.cache_clear();
            Ok(Value::empty())
        }
        "cachelimit" => match argv.len() {
            2 => Ok(Value::from_int(i.cache_limit() as i64)),
            3 => {
                let n: usize = argv[2].parse().map_err(|_| {
                    TclError::Error(format!("expected integer but got \"{}\"", argv[2]))
                })?;
                i.set_cache_limit(n);
                Ok(Value::empty())
            }
            _ => Err(wrong_num_args("interp cachelimit ?limit?")),
        },
        "profile" => {
            if argv.len() != 3 {
                return Err(wrong_num_args("interp profile on|off|report|reset"));
            }
            match argv[2].as_str() {
                "on" | "off" => {
                    let was = i.profiler.enabled();
                    i.profiler.set_enabled(argv[2].as_str() == "on");
                    Ok(Value::from_int(was as i64))
                }
                "report" => Ok(Value::from(i.profiler.report(&crate::bc::OPCODE_NAMES))),
                "reset" => {
                    i.profiler.reset();
                    Ok(Value::empty())
                }
                bad => Err(TclError::Error(format!(
                    "bad profile option \"{bad}\": must be on, off, report, or reset"
                ))),
            }
        }
        other => Err(TclError::Error(format!(
            "bad option \"{other}\": must be bcstats, bcenable, bcdisable, cachestats, cacheclear, cachelimit, profile, or shimmerstats"
        ))),
    }
}

fn cmd_trace(i: &mut Interp, argv: &[Value]) -> TclResult<Value> {
    // trace variable name ops script | trace vdelete name ops script |
    // trace vinfo name. Supported ops: w (write), u (unset).
    if argv.len() < 3 {
        return Err(wrong_num_args("trace option varName ?ops script?"));
    }
    match argv[1].as_str() {
        "variable" | "add" => {
            if argv.len() != 5 {
                return Err(wrong_num_args("trace variable varName ops script"));
            }
            if !argv[3].chars().all(|c| matches!(c, 'w' | 'u' | 'r')) {
                return Err(TclError::Error(format!(
                    "bad operations \"{}\": should be one or more of w or u",
                    argv[3]
                )));
            }
            i.add_trace(&argv[2], &argv[3], &argv[4]);
            Ok(Value::empty())
        }
        "vdelete" | "remove" => {
            if argv.len() != 5 {
                return Err(wrong_num_args("trace vdelete varName ops script"));
            }
            i.remove_trace(&argv[2], &argv[3], &argv[4]);
            Ok(Value::empty())
        }
        "vinfo" => {
            let items: Vec<String> = i
                .trace_info(&argv[2])
                .into_iter()
                .map(|(ops, script)| crate::list::list_join(&[ops, script]))
                .collect();
            Ok(Value::from(crate::list::list_join(&items)))
        }
        other => Err(TclError::Error(format!(
            "bad option \"{other}\": must be variable, vdelete, or vinfo"
        ))),
    }
}

fn cmd_info(i: &mut Interp, argv: &[Value]) -> TclResult<Value> {
    if argv.len() < 2 {
        return Err(wrong_num_args("info option ?arg arg ...?"));
    }
    let pattern = argv.get(2).map(|s| s.as_str());
    let filter = |mut names: Vec<String>| {
        if let Some(p) = pattern {
            names.retain(|n| glob_match(p, n));
        }
        names.sort();
        Value::from(list_join(&names))
    };
    match argv[1].as_str() {
        "exists" => {
            if argv.len() != 3 {
                return Err(wrong_num_args("info exists varName"));
            }
            let (name, idx) = split_varspec(&argv[2]);
            let exists = match idx {
                None => i.var_exists(&name),
                Some(ix) => i.get_elem(&name, &ix).is_ok(),
            };
            Ok(if exists { "1" } else { "0" }.into())
        }
        "commands" => Ok(filter(i.command_names())),
        "procs" => Ok(filter(i.proc_names())),
        "globals" => Ok(filter(i.global_names())),
        "vars" | "locals" => Ok(filter(i.var_names())),
        "level" => Ok(Value::from_int(i.level() as i64)),
        "body" => {
            if argv.len() != 3 {
                return Err(wrong_num_args("info body procName"));
            }
            i.get_proc(&argv[2])
                .map(|p| Value::from(p.body.clone()))
                .ok_or_else(|| TclError::Error(format!("\"{}\" isn't a procedure", argv[2])))
        }
        "args" => {
            if argv.len() != 3 {
                return Err(wrong_num_args("info args procName"));
            }
            let p = i
                .get_proc(&argv[2])
                .ok_or_else(|| TclError::Error(format!("\"{}\" isn't a procedure", argv[2])))?;
            let names: Vec<String> = p.args.iter().map(|(n, _)| n.clone()).collect();
            Ok(Value::from(list_join(&names)))
        }
        "tclversion" => Ok("6.7".into()),
        other => Err(TclError::Error(format!(
            "bad option \"{other}\": must be exists, commands, procs, globals, vars, locals, level, body, args, or tclversion"
        ))),
    }
}

fn cmd_array(i: &mut Interp, argv: &[Value]) -> TclResult<Value> {
    if argv.len() < 3 {
        return Err(wrong_num_args("array option arrayName ?arg ...?"));
    }
    let name = argv[2].as_str();
    match argv[1].as_str() {
        "exists" => Ok(if i.is_array(name) { "1" } else { "0" }.into()),
        "names" => {
            let mut names = i.array_names(name)?;
            if let Some(p) = argv.get(3) {
                names.retain(|n| glob_match(p, n));
            }
            names.sort();
            Ok(Value::from(list_join(&names)))
        }
        "size" => Ok(Value::from_int(i.array_names(name)?.len() as i64)),
        "get" => {
            let mut names = i.array_names(name)?;
            names.sort();
            let mut out: Vec<String> = Vec::new();
            for n in names {
                let v = i.get_elem(name, &n)?;
                out.push(n);
                out.push(v.to_string());
            }
            Ok(Value::from(list_join(&out)))
        }
        "set" => {
            if argv.len() != 4 {
                return Err(wrong_num_args("array set arrayName list"));
            }
            let items = parse_list(&argv[3])?;
            if items.len() % 2 != 0 {
                return Err(TclError::error("list must have an even number of elements"));
            }
            for pair in items.chunks(2) {
                i.set_elem(name, &pair[0], pair[1].as_str())?;
            }
            Ok(Value::empty())
        }
        other => Err(TclError::Error(format!(
            "bad option \"{other}\": must be exists, names, size, get, or set"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn new() -> Interp {
        Interp::new()
    }

    #[test]
    fn set_array_element_syntax() {
        let mut i = new();
        i.eval("set a(x) 1").unwrap();
        assert_eq!(i.eval("set a(x)").unwrap(), "1");
        assert_eq!(i.eval("incr a(x) 4").unwrap(), "5");
    }

    #[test]
    fn incr_defaults_and_amount() {
        let mut i = new();
        i.eval("set n 5").unwrap();
        assert_eq!(i.eval("incr n").unwrap(), "6");
        assert_eq!(i.eval("incr n -2").unwrap(), "4");
        i.eval("set s abc").unwrap();
        assert!(i.eval("incr s").is_err());
    }

    #[test]
    fn append_creates_var() {
        let mut i = new();
        assert_eq!(i.eval("append out a b c").unwrap(), "abc");
        assert_eq!(i.eval("append out d").unwrap(), "abcd");
    }

    #[test]
    fn expr_joins_args() {
        let mut i = new();
        assert_eq!(i.eval("expr 1 + 2").unwrap(), "3");
        assert_eq!(i.eval("expr {1 + 2}").unwrap(), "3");
    }

    #[test]
    fn catch_codes() {
        let mut i = new();
        assert_eq!(i.eval("catch {set x 1}").unwrap(), "0");
        assert_eq!(i.eval("catch {error boom} msg").unwrap(), "1");
        assert_eq!(i.get_var("msg").unwrap(), "boom");
        assert_eq!(i.eval("catch {break}").unwrap(), "3");
        assert_eq!(i.eval("catch {continue}").unwrap(), "4");
        assert_eq!(i.eval("catch {return val} r").unwrap(), "2");
        assert_eq!(i.get_var("r").unwrap(), "val");
    }

    #[test]
    fn eval_concatenates() {
        let mut i = new();
        assert_eq!(i.eval("eval set x 42").unwrap(), "42");
        assert_eq!(i.eval("eval {set y 1; set y}").unwrap(), "1");
    }

    #[test]
    fn info_exists_and_procs() {
        let mut i = new();
        assert_eq!(i.eval("info exists nope").unwrap(), "0");
        i.eval("set yes 1").unwrap();
        assert_eq!(i.eval("info exists yes").unwrap(), "1");
        i.eval("proc myproc {a b} {return $a$b}").unwrap();
        assert_eq!(i.eval("info procs my*").unwrap(), "myproc");
        assert_eq!(i.eval("info args myproc").unwrap(), "a b");
        assert_eq!(i.eval("info body myproc").unwrap(), "return $a$b");
        assert_eq!(i.eval("info tclversion").unwrap(), "6.7");
    }

    #[test]
    fn info_commands_includes_builtins() {
        let mut i = new();
        let cmds = i.eval("info commands se*").unwrap();
        assert!(cmds.contains("set"));
    }

    #[test]
    fn array_subcommands() {
        let mut i = new();
        i.eval("array set a {x 1 y 2}").unwrap();
        assert_eq!(i.eval("array exists a").unwrap(), "1");
        assert_eq!(i.eval("array size a").unwrap(), "2");
        assert_eq!(i.eval("array names a").unwrap(), "x y");
        assert_eq!(i.eval("array get a").unwrap(), "x 1 y 2");
        assert_eq!(i.eval("array exists nothere").unwrap(), "0");
        assert!(i.eval("array set a {odd}").is_err());
    }

    #[test]
    fn subst_command() {
        let mut i = new();
        i.eval("set x 5").unwrap();
        assert_eq!(i.eval("subst {$x [expr 1+1]}").unwrap(), "5 2");
    }

    #[test]
    fn time_command_reports_micros() {
        let mut i = new();
        let r = i.eval("time {set x 1} 10").unwrap();
        assert!(r.ends_with("microseconds per iteration"), "{r}");
    }

    #[test]
    fn error_command() {
        let mut i = new();
        let e = i.eval("error \"my message\"").unwrap_err();
        assert_eq!(e.message(), "my message");
    }

    #[test]
    fn unset_array_element() {
        let mut i = new();
        i.eval("set a(x) 1; set a(y) 2").unwrap();
        i.eval("unset a(x)").unwrap();
        assert_eq!(i.eval("info exists a(x)").unwrap(), "0");
        assert_eq!(i.eval("info exists a(y)").unwrap(), "1");
        i.eval("unset a").unwrap();
        assert_eq!(i.eval("array exists a").unwrap(), "0");
    }

    #[test]
    fn varspec_split() {
        assert_eq!(split_varspec("plain"), ("plain".into(), None));
        assert_eq!(split_varspec("a(b)"), ("a".into(), Some("b".into())));
        assert_eq!(split_varspec("a(b,c)"), ("a".into(), Some("b,c".into())));
        assert_eq!(split_varspec("weird("), ("weird(".into(), None));
    }
}

#[cfg(test)]
mod trace_tests {
    use crate::interp::Interp;

    #[test]
    fn write_trace_fires_with_arguments() {
        let mut i = Interp::new();
        i.eval("set log {}").unwrap();
        i.eval("trace variable x w {append log}").unwrap();
        i.eval("set x hello").unwrap();
        // The trace script receives "name element op" appended; the
        // element is empty for a scalar write.
        assert_eq!(i.get_var("log").unwrap(), "xw");
    }

    #[test]
    fn array_element_trace_carries_element() {
        let mut i = Interp::new();
        i.eval("proc record {name elem op} {global seen; set seen \"$name.$elem.$op\"}")
            .unwrap();
        i.eval("trace variable a w record").unwrap();
        i.eval("set a(key) 1").unwrap();
        assert_eq!(i.get_var("seen").unwrap(), "a.key.w");
    }

    #[test]
    fn unset_trace_fires() {
        let mut i = Interp::new();
        i.eval("set x 1").unwrap();
        i.eval("trace variable x u {set gone yes ;#}").unwrap();
        i.eval("unset x").unwrap();
        assert_eq!(i.get_var("gone").unwrap(), "yes");
    }

    #[test]
    fn vdelete_and_vinfo() {
        let mut i = Interp::new();
        i.eval("trace variable x w {noop}").unwrap();
        let info = i.eval("trace vinfo x").unwrap();
        assert!(info.contains("noop"), "{info}");
        i.eval("trace vdelete x w {noop}").unwrap();
        assert_eq!(i.eval("trace vinfo x").unwrap(), "");
        // Deleted trace no longer fires (and noop is undefined anyway).
        i.eval("set x 1").unwrap();
    }

    #[test]
    fn self_writing_trace_is_bounded() {
        let mut i = Interp::new();
        i.eval("set n 0").unwrap();
        // A trace that writes its own variable: recursion must be bounded.
        i.eval("trace variable x w {incr n ;#}").unwrap();
        i.eval("trace variable x w {set x again ;#}").unwrap();
        i.eval("set x 1").unwrap();
        let n: i64 = i.get_var("n").unwrap().parse().unwrap();
        assert!((1..100).contains(&n), "trace ran {n} times");
    }

    #[test]
    fn trace_on_global_fires_from_proc() {
        // Trace callbacks run in the writer's frame, so they reach
        // globals through a proc, exactly as in C Tcl.
        let mut i = Interp::new();
        i.eval("set hits 0").unwrap();
        i.eval("proc bump {n e o} {global hits; incr hits}")
            .unwrap();
        i.eval("trace variable g w bump").unwrap();
        i.eval("proc f {} {global g; set g 1}").unwrap();
        i.eval("f").unwrap();
        assert_eq!(i.get_var("hits").unwrap(), "1");
    }

    #[test]
    fn errors() {
        let mut i = Interp::new();
        assert!(i.eval("trace bogus x").is_err());
        assert!(i.eval("trace variable x q {s}").is_err());
        assert!(i.eval("trace variable x").is_err());
    }
}
