//! Control-flow commands: `if while for foreach break continue proc return
//! global upvar uplevel switch case`.

use crate::error::{wrong_num_args, TclError, TclResult};
use crate::expr::{eval_expr_bool, eval_prepared_bool, prepare_expr};
use crate::glob::glob_match;
use crate::interp::{Interp, ProcDef};
use crate::list::parse_list;
use crate::value::Value;

pub(super) fn register(interp: &mut Interp) {
    interp.register("if", cmd_if);
    interp.register("while", cmd_while);
    interp.register("for", cmd_for);
    interp.register("foreach", cmd_foreach);
    interp.register("break", |_, argv| {
        if argv.len() != 1 {
            return Err(wrong_num_args("break"));
        }
        Err(TclError::Break)
    });
    interp.register("continue", |_, argv| {
        if argv.len() != 1 {
            return Err(wrong_num_args("continue"));
        }
        Err(TclError::Continue)
    });
    interp.register("proc", cmd_proc);
    interp.register("return", |_, argv| match argv.len() {
        1 => Err(TclError::Return(String::new())),
        2 => Err(TclError::Return(argv[1].to_string())),
        _ => Err(wrong_num_args("return ?value?")),
    });
    interp.register("global", |i, argv| {
        if argv.len() < 2 {
            return Err(wrong_num_args("global varName ?varName ...?"));
        }
        if i.level() == 0 {
            return Ok(Value::empty()); // No-op at global level, like Tcl.
        }
        for name in &argv[1..] {
            i.link_var(name, 0, name)?;
        }
        Ok(Value::empty())
    });
    interp.register("upvar", cmd_upvar);
    interp.register("uplevel", cmd_uplevel);
    interp.register("switch", cmd_switch);
    interp.register("case", cmd_case);
}

fn cmd_if(i: &mut Interp, argv: &[Value]) -> TclResult<Value> {
    let usage = "if test ?then? body ?elseif test ?then? body ...? ?else? body";
    let mut a = 1usize;
    loop {
        if a >= argv.len() {
            return Err(wrong_num_args(usage));
        }
        let cond = eval_expr_bool(i, &argv[a])?;
        a += 1;
        if a < argv.len() && argv[a] == "then" {
            a += 1;
        }
        if a >= argv.len() {
            return Err(wrong_num_args(usage));
        }
        if cond {
            return i.eval_value(&argv[a]);
        }
        a += 1;
        if a >= argv.len() {
            return Ok(Value::empty());
        }
        match argv[a].as_str() {
            "elseif" => {
                a += 1;
                continue;
            }
            "else" => {
                a += 1;
                if a >= argv.len() {
                    return Err(wrong_num_args(usage));
                }
                return i.eval_value(&argv[a]);
            }
            _ => {
                // Bare else-body (Tcl 6 allowed omitting the keyword).
                return i.eval_value(&argv[a]);
            }
        }
    }
}

fn cmd_while(i: &mut Interp, argv: &[Value]) -> TclResult<Value> {
    if argv.len() != 3 {
        return Err(wrong_num_args("while test command"));
    }
    // Parse the guard and body once; every iteration only substitutes.
    let test = prepare_expr(i, &argv[1]);
    let body = i.prepare_value(&argv[2]);
    while eval_prepared_bool(i, &test)? {
        match i.run_prepared(&body) {
            Ok(_) | Err(TclError::Continue) => {}
            Err(TclError::Break) => break,
            Err(e) => return Err(e),
        }
    }
    Ok(Value::empty())
}

fn cmd_for(i: &mut Interp, argv: &[Value]) -> TclResult<Value> {
    if argv.len() != 5 {
        return Err(wrong_num_args("for start test next command"));
    }
    i.eval_value(&argv[1])?;
    let test = prepare_expr(i, &argv[2]);
    let next = i.prepare_value(&argv[3]);
    let body = i.prepare_value(&argv[4]);
    while eval_prepared_bool(i, &test)? {
        match i.run_prepared(&body) {
            Ok(_) | Err(TclError::Continue) => {}
            Err(TclError::Break) => break,
            Err(e) => return Err(e),
        }
        i.run_prepared(&next)?;
    }
    Ok(Value::empty())
}

fn cmd_foreach(i: &mut Interp, argv: &[Value]) -> TclResult<Value> {
    if argv.len() != 4 {
        return Err(wrong_num_args("foreach varName list command"));
    }
    let vars = parse_list(&argv[1])?;
    if vars.is_empty() {
        return Err(TclError::error("foreach varlist is empty"));
    }
    // Iterate the shared list rep: each element is a cheap `Value` clone,
    // so loop variables keep any cached numeric rep of the elements.
    let items = argv[2].as_list()?;
    let body = i.prepare_value(&argv[3]);
    let mut idx = 0usize;
    while idx < items.len() {
        for v in &vars {
            let value = items.get(idx).cloned().unwrap_or_default();
            i.set_var(v, value)?;
            idx += 1;
        }
        match i.run_prepared(&body) {
            Ok(_) | Err(TclError::Continue) => {}
            Err(TclError::Break) => break,
            Err(e) => return Err(e),
        }
    }
    Ok(Value::empty())
}

fn cmd_proc(i: &mut Interp, argv: &[Value]) -> TclResult<Value> {
    if argv.len() != 4 {
        return Err(wrong_num_args("proc name args body"));
    }
    let formals = parse_list(&argv[2])?;
    let mut args = Vec::with_capacity(formals.len());
    for f in &formals {
        let parts = parse_list(f)?;
        match parts.len() {
            1 => args.push((parts[0].clone(), None)),
            2 => args.push((parts[0].clone(), Some(parts[1].clone()))),
            _ => {
                return Err(TclError::Error(format!(
                    "too many fields in argument specifier \"{f}\""
                )))
            }
        }
    }
    i.define_proc(&argv[1], ProcDef::new(args, argv[3].to_string()));
    Ok(Value::empty())
}

fn cmd_upvar(i: &mut Interp, argv: &[Value]) -> TclResult<Value> {
    // upvar ?level? otherVar myVar ?otherVar myVar ...?
    if argv.len() < 3 {
        return Err(wrong_num_args(
            "upvar ?level? otherVar localVar ?otherVar localVar ...?",
        ));
    }
    let (level, _) = parse_level(i, &argv[1]);
    let mut a = if level.is_some() { 2 } else { 1 };
    let target = level.unwrap_or_else(|| i.level().saturating_sub(1));
    if !(argv.len() - a).is_multiple_of(2) || argv.len() - a == 0 {
        return Err(wrong_num_args(
            "upvar ?level? otherVar localVar ?otherVar localVar ...?",
        ));
    }
    while a + 1 < argv.len() {
        i.link_var(&argv[a + 1], target, &argv[a])?;
        a += 2;
    }
    Ok(Value::empty())
}

fn cmd_uplevel(i: &mut Interp, argv: &[Value]) -> TclResult<Value> {
    if argv.len() < 2 {
        return Err(wrong_num_args("uplevel ?level? command ?command ...?"));
    }
    let (level, a) = parse_level(i, &argv[1]);
    let target = level.unwrap_or_else(|| i.level().saturating_sub(1));
    let start = if level.is_some() { 2 } else { 1 };
    let _ = a;
    if start >= argv.len() {
        return Err(wrong_num_args("uplevel ?level? command ?command ...?"));
    }
    let script = argv[start..].join(" ");
    i.eval_at_level(target, &script)
}

/// Parses an optional `?level?` argument: `N` (absolute) or `#N` (absolute
/// from global) — Tcl uses `#N` for absolute and plain `N` for relative.
fn parse_level(i: &Interp, word: &str) -> (Option<usize>, usize) {
    if let Some(abs) = word.strip_prefix('#') {
        if let Ok(n) = abs.parse::<usize>() {
            return (Some(n), 2);
        }
    }
    if let Ok(n) = word.parse::<usize>() {
        if word.chars().all(|c| c.is_ascii_digit()) {
            return (Some(i.level().saturating_sub(n)), 2);
        }
    }
    (None, 1)
}

fn cmd_switch(i: &mut Interp, argv: &[Value]) -> TclResult<Value> {
    let usage = "switch ?options? string pattern body ?pattern body ...?";
    let mut a = 1usize;
    let mut exact = false;
    while a < argv.len() && argv[a].starts_with('-') {
        match argv[a].as_str() {
            "-exact" => exact = true,
            "-glob" => exact = false,
            "--" => {
                a += 1;
                break;
            }
            other => {
                return Err(TclError::Error(format!(
                    "bad option \"{other}\": must be -exact, -glob, or --"
                )))
            }
        }
        a += 1;
    }
    if a >= argv.len() {
        return Err(wrong_num_args(usage));
    }
    let string = argv[a].to_string();
    a += 1;
    // Either one brace-grouped list of pattern/body pairs, or inline pairs.
    let pairs: Vec<String> = if argv.len() - a == 1 {
        parse_list(&argv[a])?
    } else {
        argv[a..].iter().map(|v| v.to_string()).collect()
    };
    if pairs.is_empty() || !pairs.len().is_multiple_of(2) {
        return Err(TclError::error("extra switch pattern with no body"));
    }
    let mut matched: Option<usize> = None;
    for (idx, chunk) in pairs.chunks(2).enumerate() {
        let pat = &chunk[0];
        let is_match = if pat == "default" && idx == pairs.len() / 2 - 1 {
            true
        } else if exact {
            *pat == string
        } else {
            glob_match(pat, &string)
        };
        if is_match {
            matched = Some(idx);
            break;
        }
    }
    if let Some(mut idx) = matched {
        // `-` bodies fall through to the next body.
        while pairs[idx * 2 + 1] == "-" {
            idx += 1;
            if idx * 2 + 1 >= pairs.len() {
                return Err(TclError::error("no body specified for pattern"));
            }
        }
        return i.eval(&pairs[idx * 2 + 1]);
    }
    Ok(Value::empty())
}

fn cmd_case(i: &mut Interp, argv: &[Value]) -> TclResult<Value> {
    // Tcl 6 `case string ?in? {patList body patList body ...}`.
    let mut a = 1usize;
    if a >= argv.len() {
        return Err(wrong_num_args(
            "case string ?in? patList body ?patList body ...?",
        ));
    }
    let string = argv[a].to_string();
    a += 1;
    if a < argv.len() && argv[a] == "in" {
        a += 1;
    }
    let pairs: Vec<String> = if argv.len() - a == 1 {
        parse_list(&argv[a])?
    } else {
        argv[a..].iter().map(|v| v.to_string()).collect()
    };
    if !pairs.len().is_multiple_of(2) {
        return Err(TclError::error("extra case pattern with no body"));
    }
    let mut default_body: Option<&String> = None;
    for chunk in pairs.chunks(2) {
        let pats = parse_list(&chunk[0])?;
        for p in &pats {
            if p == "default" {
                default_body = Some(&chunk[1]);
            } else if glob_match(p, &string) {
                return i.eval(&chunk[1]);
            }
        }
    }
    if let Some(body) = default_body {
        return i.eval(body);
    }
    Ok(Value::empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn new() -> Interp {
        Interp::new()
    }

    #[test]
    fn if_forms() {
        let mut i = new();
        assert_eq!(i.eval("if 1 {set x yes}").unwrap(), "yes");
        assert_eq!(i.eval("if 0 {set x yes}").unwrap(), "");
        assert_eq!(i.eval("if 0 {set x a} else {set x b}").unwrap(), "b");
        assert_eq!(
            i.eval("if 0 {set x a} elseif 1 {set x b} else {set x c}")
                .unwrap(),
            "b"
        );
        assert_eq!(i.eval("if 1 then {set x t}").unwrap(), "t");
        // Bare else body (Tcl 6 style).
        assert_eq!(i.eval("if 0 {set x a} {set x bare}").unwrap(), "bare");
    }

    #[test]
    fn if_condition_substitutes_in_braces() {
        let mut i = new();
        i.eval("set x 5").unwrap();
        assert_eq!(i.eval("if {$x > 3} {set r big}").unwrap(), "big");
    }

    #[test]
    fn while_loop_with_break_continue() {
        let mut i = new();
        i.eval("set n 0; set sum 0").unwrap();
        i.eval("while {$n < 10} {incr n; if {$n == 3} continue; if {$n > 5} break; incr sum $n}")
            .unwrap();
        // 1+2+4+5 = 12
        assert_eq!(i.get_var("sum").unwrap(), "12");
    }

    #[test]
    fn for_loop() {
        let mut i = new();
        i.eval("set out {}").unwrap();
        i.eval("for {set j 0} {$j < 4} {incr j} {append out $j}")
            .unwrap();
        assert_eq!(i.get_var("out").unwrap(), "0123");
    }

    #[test]
    fn foreach_single_and_multi_var() {
        let mut i = new();
        i.eval("set out {}").unwrap();
        i.eval("foreach x {a b c} {append out $x}").unwrap();
        assert_eq!(i.get_var("out").unwrap(), "abc");
        i.eval("set out {}").unwrap();
        i.eval("foreach {k v} {x 1 y 2} {append out $k=$v,}")
            .unwrap();
        assert_eq!(i.get_var("out").unwrap(), "x=1,y=2,");
    }

    #[test]
    fn foreach_break() {
        let mut i = new();
        i.eval("set out {}").unwrap();
        i.eval("foreach x {1 2 3 4} {if {$x == 3} break; append out $x}")
            .unwrap();
        assert_eq!(i.get_var("out").unwrap(), "12");
    }

    #[test]
    fn return_value() {
        let mut i = new();
        i.eval("proc f {} {return early; set x never}").unwrap();
        assert_eq!(i.eval("f").unwrap(), "early");
        i.eval("proc g {} {return}").unwrap();
        assert_eq!(i.eval("g").unwrap(), "");
    }

    #[test]
    fn upvar_links_caller_variable() {
        let mut i = new();
        i.eval("proc setit {varname val} {upvar $varname v; set v $val}")
            .unwrap();
        i.eval("set mine old").unwrap();
        i.eval("setit mine new").unwrap();
        assert_eq!(i.get_var("mine").unwrap(), "new");
    }

    #[test]
    fn uplevel_evaluates_in_caller() {
        let mut i = new();
        i.eval("proc f {} {uplevel {set fromf 99}}").unwrap();
        i.eval("f").unwrap();
        assert_eq!(i.get_var("fromf").unwrap(), "99");
    }

    #[test]
    fn uplevel_absolute_level() {
        let mut i = new();
        i.eval("proc inner {} {uplevel #0 {set g inner}}").unwrap();
        i.eval("proc outer {} {inner}").unwrap();
        i.eval("outer").unwrap();
        assert_eq!(i.get_var("g").unwrap(), "inner");
    }

    #[test]
    fn switch_glob_and_default() {
        let mut i = new();
        assert_eq!(
            i.eval("switch abc {a* {set r glob} default {set r def}}")
                .unwrap(),
            "glob"
        );
        assert_eq!(
            i.eval("switch xyz {a* {set r glob} default {set r def}}")
                .unwrap(),
            "def"
        );
        assert_eq!(
            i.eval("switch -exact a* {a* {set r exact} default {set r def}}")
                .unwrap(),
            "exact"
        );
    }

    #[test]
    fn switch_fallthrough() {
        let mut i = new();
        assert_eq!(
            i.eval("switch b {a - b - c {set r abc} default {set r no}}")
                .unwrap(),
            "abc"
        );
    }

    #[test]
    fn switch_no_match_returns_empty() {
        let mut i = new();
        assert_eq!(i.eval("switch -exact zzz {a {set r 1}}").unwrap(), "");
    }

    #[test]
    fn case_command() {
        let mut i = new();
        assert_eq!(
            i.eval("case blue in {{red green} {set r warm} {blue} {set r cool}}")
                .unwrap(),
            "cool"
        );
        assert_eq!(
            i.eval("case mauve in {{red} {set r warm} default {set r other}}")
                .unwrap(),
            "other"
        );
    }

    #[test]
    fn break_outside_loop_is_error() {
        let mut i = new();
        let e = i.eval("proc f {} {break}; f").unwrap_err();
        assert!(e.message().contains("break"));
    }
}
