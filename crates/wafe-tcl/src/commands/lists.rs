//! List commands: `list lindex llength lappend linsert lrange lreplace
//! lsearch lsort concat split join`.

use super::parse_index;
use crate::error::{wrong_num_args, TclError};
use crate::glob::glob_match;
use crate::interp::Interp;
use crate::list::{list_join, parse_list};
use crate::value::Value;
use std::rc::Rc;

pub(super) fn register(interp: &mut Interp) {
    // `list` builds the shared rep directly; the string form is rendered
    // lazily only if someone asks for it.
    interp.register("list", |_, argv| Ok(Value::from_list(argv[1..].to_vec())));

    interp.register("llength", |_, argv| {
        if argv.len() != 2 {
            return Err(wrong_num_args("llength list"));
        }
        Ok(Value::from_int(argv[1].as_list()?.len() as i64))
    });

    interp.register("lindex", |_, argv| {
        if argv.len() != 3 {
            return Err(wrong_num_args("lindex list index"));
        }
        let items = argv[1].as_list()?;
        let idx = parse_index(&argv[2], items.len())?;
        if idx < 0 || idx as usize >= items.len() {
            return Ok(Value::empty());
        }
        // Element values are shared: this keeps any cached numeric rep.
        Ok(items[idx as usize].clone())
    });

    interp.register("lappend", |i, argv| {
        if argv.len() < 2 {
            return Err(wrong_num_args("lappend varName ?value value ...?"));
        }
        let (name, idx) = super::split_varspec(&argv[1]);
        let cur = match &idx {
            None => i.get_var(&name).unwrap_or_default(),
            Some(ix) => i.get_elem(&name, ix).unwrap_or_default(),
        };
        // Amortized O(1): when the slot's list rep is unshared it is moved
        // out and extended in place; otherwise fall back to one counted
        // copy-on-write clone.
        let mut items = match cur.list_rep_for_update() {
            Some(rc) => rc,
            None => cur.as_list()?,
        };
        drop(cur);
        if Rc::get_mut(&mut items).is_none() {
            crate::value::note_list_cow();
        }
        Rc::make_mut(&mut items).extend(argv[2..].iter().cloned());
        let new = Value::from_list_rc(items);
        match idx {
            None => i.set_var(&name, new.clone())?,
            Some(ix) => i.set_elem(&name, &ix, new.clone())?,
        }
        Ok(new)
    });

    interp.register("linsert", |_, argv| {
        if argv.len() < 4 {
            return Err(wrong_num_args("linsert list index element ?element ...?"));
        }
        let mut items = argv[1].as_list()?;
        let idx = parse_index(&argv[2], items.len())?.max(0) as usize;
        let at = idx.min(items.len());
        if Rc::get_mut(&mut items).is_none() {
            crate::value::note_list_cow();
        }
        let vec = Rc::make_mut(&mut items);
        for (k, e) in argv[3..].iter().enumerate() {
            vec.insert(at + k, e.clone());
        }
        Ok(Value::from_list_rc(items))
    });

    interp.register("lrange", |_, argv| {
        if argv.len() != 4 {
            return Err(wrong_num_args("lrange list first last"));
        }
        let items = argv[1].as_list()?;
        let first = parse_index(&argv[2], items.len())?.max(0) as usize;
        let last = parse_index(&argv[3], items.len())?;
        if last < 0 || first as i64 > last || first >= items.len() {
            return Ok(Value::empty());
        }
        let last = (last as usize).min(items.len() - 1);
        Ok(Value::from_list(items[first..=last].to_vec()))
    });

    interp.register("lreplace", |_, argv| {
        if argv.len() < 4 {
            return Err(wrong_num_args(
                "lreplace list first last ?element element ...?",
            ));
        }
        let mut items = argv[1].as_list()?;
        let first = parse_index(&argv[2], items.len())?.max(0) as usize;
        let last = parse_index(&argv[3], items.len())?;
        if first >= items.len() {
            return Err(TclError::error(
                "list doesn't contain element given by first index",
            ));
        }
        let last = if last < 0 {
            None
        } else {
            Some((last as usize).min(items.len() - 1))
        };
        if Rc::get_mut(&mut items).is_none() {
            crate::value::note_list_cow();
        }
        let vec = Rc::make_mut(&mut items);
        match last {
            Some(l) if l >= first => {
                vec.splice(first..=l, argv[4..].iter().cloned());
            }
            _ => {
                vec.splice(first..first, argv[4..].iter().cloned());
            }
        }
        Ok(Value::from_list_rc(items))
    });

    interp.register("lsearch", |_, argv| {
        let usage = "lsearch ?-exact|-glob? list pattern";
        let (mode_exact, list_arg, pat_arg) = match argv.len() {
            3 => (false, 1, 2),
            4 => match argv[1].as_str() {
                "-exact" => (true, 2, 3),
                "-glob" => (false, 2, 3),
                other => {
                    return Err(TclError::Error(format!(
                        "bad search mode \"{other}\": must be -exact or -glob"
                    )))
                }
            },
            _ => return Err(wrong_num_args(usage)),
        };
        let items = argv[list_arg].as_list()?;
        for (k, item) in items.iter().enumerate() {
            let hit = if mode_exact {
                item == &argv[pat_arg]
            } else {
                glob_match(&argv[pat_arg], item)
            };
            if hit {
                return Ok(Value::from_int(k as i64));
            }
        }
        Ok("-1".into())
    });

    interp.register("lsort", |_, argv| {
        let usage = "lsort ?-ascii|-integer|-real? ?-increasing|-decreasing? list";
        if argv.len() < 2 {
            return Err(wrong_num_args(usage));
        }
        let mut mode = "ascii";
        let mut decreasing = false;
        for opt in &argv[1..argv.len() - 1] {
            match opt.as_str() {
                "-ascii" => mode = "ascii",
                "-integer" => mode = "integer",
                "-real" => mode = "real",
                "-increasing" => decreasing = false,
                "-decreasing" => decreasing = true,
                other => return Err(TclError::Error(format!("bad option \"{other}\": {usage}"))),
            }
        }
        let mut items = argv[argv.len() - 1].as_list()?;
        if Rc::get_mut(&mut items).is_none() {
            crate::value::note_list_cow();
        }
        let vec = Rc::make_mut(&mut items);
        let mut err: Option<TclError> = None;
        match mode {
            // Numeric modes compare through the cached int/double reps, so
            // each element is parsed at most once instead of O(n log n)
            // times during the sort.
            "integer" => vec.sort_by(|a, b| match (a.as_int(), b.as_int()) {
                (Some(x), Some(y)) => x.cmp(&y),
                _ => {
                    err.get_or_insert_with(|| TclError::error("expected integer in list to sort"));
                    std::cmp::Ordering::Equal
                }
            }),
            "real" => vec.sort_by(|a, b| match (a.as_double(), b.as_double()) {
                (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
                _ => {
                    err.get_or_insert_with(|| {
                        TclError::error("expected floating-point number in list to sort")
                    });
                    std::cmp::Ordering::Equal
                }
            }),
            _ => vec.sort_by(|a, b| a.as_str().cmp(b.as_str())),
        }
        if let Some(e) = err {
            return Err(e);
        }
        if decreasing {
            vec.reverse();
        }
        Ok(Value::from_list_rc(items))
    });

    interp.register("concat", |_, argv| {
        let parts: Vec<&str> = argv[1..]
            .iter()
            .map(|s| s.trim())
            .filter(|s| !s.is_empty())
            .collect();
        Ok(Value::from(parts.join(" ")))
    });

    interp.register("split", |_, argv| {
        if argv.len() != 2 && argv.len() != 3 {
            return Err(wrong_num_args("split string ?splitChars?"));
        }
        let seps: Vec<char> = argv
            .get(2)
            .map(|s| s.chars().collect())
            .unwrap_or_else(|| vec![' ', '\t', '\n', '\r']);
        if seps.is_empty() {
            let each: Vec<String> = argv[1].chars().map(|c| c.to_string()).collect();
            return Ok(Value::from(list_join(&each)));
        }
        let mut parts: Vec<String> = Vec::new();
        let mut cur = String::new();
        for c in argv[1].chars() {
            if seps.contains(&c) {
                parts.push(std::mem::take(&mut cur));
            } else {
                cur.push(c);
            }
        }
        parts.push(cur);
        Ok(Value::from(list_join(&parts)))
    });

    interp.register("join", |_, argv| {
        if argv.len() != 2 && argv.len() != 3 {
            return Err(wrong_num_args("join list ?joinString?"));
        }
        let sep = argv.get(2).map(|s| s.as_str()).unwrap_or(" ");
        Ok(Value::from(parse_list(&argv[1])?.join(sep)))
    });
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    fn new() -> Interp {
        Interp::new()
    }

    #[test]
    fn list_quotes_elements() {
        let mut i = new();
        assert_eq!(i.eval("list a {b c} d").unwrap(), "a {b c} d");
        assert_eq!(i.eval("list").unwrap(), "");
        assert_eq!(i.eval("list {}").unwrap(), "{}");
    }

    #[test]
    fn llength_and_lindex() {
        let mut i = new();
        assert_eq!(i.eval("llength {a b {c d}}").unwrap(), "3");
        assert_eq!(i.eval("lindex {a b c} 1").unwrap(), "b");
        assert_eq!(i.eval("lindex {a b c} end").unwrap(), "c");
        assert_eq!(i.eval("lindex {a b c} 99").unwrap(), "");
    }

    #[test]
    fn lappend_variable() {
        let mut i = new();
        i.eval("lappend l a").unwrap();
        i.eval("lappend l {b c}").unwrap();
        assert_eq!(i.get_var("l").unwrap(), "a {b c}");
        assert_eq!(i.eval("llength $l").unwrap(), "2");
    }

    #[test]
    fn linsert_positions() {
        let mut i = new();
        assert_eq!(i.eval("linsert {a c} 1 b").unwrap(), "a b c");
        assert_eq!(i.eval("linsert {a b} 0 z").unwrap(), "z a b");
        assert_eq!(i.eval("linsert {a b} 99 z").unwrap(), "a b z");
    }

    #[test]
    fn lrange_and_lreplace() {
        let mut i = new();
        assert_eq!(i.eval("lrange {a b c d} 1 2").unwrap(), "b c");
        assert_eq!(i.eval("lrange {a b c d} 2 end").unwrap(), "c d");
        assert_eq!(i.eval("lrange {a b c} 5 7").unwrap(), "");
        assert_eq!(i.eval("lreplace {a b c} 1 1 X Y").unwrap(), "a X Y c");
        assert_eq!(i.eval("lreplace {a b c} 0 end").unwrap(), "");
    }

    #[test]
    fn lsearch_modes() {
        let mut i = new();
        assert_eq!(i.eval("lsearch {apple banana} b*").unwrap(), "1");
        assert_eq!(i.eval("lsearch -exact {a* b} a*").unwrap(), "0");
        assert_eq!(i.eval("lsearch {a b} z").unwrap(), "-1");
    }

    #[test]
    fn lsort_modes() {
        let mut i = new();
        assert_eq!(
            i.eval("lsort {pear apple orange}").unwrap(),
            "apple orange pear"
        );
        assert_eq!(i.eval("lsort -integer {10 2 33}").unwrap(), "2 10 33");
        assert_eq!(
            i.eval("lsort -real {1.5 0.2 10.0}").unwrap(),
            "0.2 1.5 10.0"
        );
        assert_eq!(i.eval("lsort -decreasing {a c b}").unwrap(), "c b a");
        assert!(i.eval("lsort -integer {1 x}").is_err());
    }

    #[test]
    fn concat_trims_and_joins() {
        let mut i = new();
        assert_eq!(i.eval("concat a {b c} {} d").unwrap(), "a b c d");
    }

    #[test]
    fn split_and_join() {
        let mut i = new();
        assert_eq!(i.eval("split a:b:c :").unwrap(), "a b c");
        assert_eq!(i.eval("split {a b}").unwrap(), "a b");
        assert_eq!(i.eval("split ab {}").unwrap(), "a b");
        assert_eq!(i.eval("join {a b c} -").unwrap(), "a-b-c");
        assert_eq!(i.eval("join {a b c}").unwrap(), "a b c");
        // split of consecutive separators yields empty elements
        assert_eq!(i.eval("llength [split a::b :]").unwrap(), "3");
    }

    #[test]
    fn join_split_roundtrip_prime_example() {
        // The paper's Perl example does join("*", @result); verify the
        // Tcl analogue.
        let mut i = new();
        assert_eq!(i.eval("join {2 2 3} *").unwrap(), "2*2*3");
    }
}
