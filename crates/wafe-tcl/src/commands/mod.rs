//! The built-in Tcl command set.
//!
//! Commands are grouped the way the Tcl book groups them: variable and
//! basic commands, control flow, list commands, string commands, and
//! introspection. [`register_all`] installs every group into an
//! interpreter; [`crate::Interp::new`] calls it automatically.

mod basic;
mod control;
mod lists;
mod regex_cmds;
mod strings;

pub use basic::split_varspec;

use crate::interp::Interp;

/// Registers every built-in command into `interp`.
pub fn register_all(interp: &mut Interp) {
    basic::register(interp);
    control::register(interp);
    lists::register(interp);
    regex_cmds::register(interp);
    strings::register(interp);
}

/// Parses a Tcl list index which may be `end` or `end-N`.
pub(crate) fn parse_index(s: &str, len: usize) -> Result<i64, crate::TclError> {
    let t = s.trim();
    if t == "end" {
        return Ok(len as i64 - 1);
    }
    if let Some(rest) = t.strip_prefix("end-") {
        let n: i64 = rest
            .parse()
            .map_err(|_| crate::TclError::Error(format!("bad index \"{s}\"")))?;
        return Ok(len as i64 - 1 - n);
    }
    t.parse::<i64>()
        .map_err(|_| crate::TclError::Error(format!("bad index \"{s}\"")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_parsing() {
        assert_eq!(parse_index("0", 5).unwrap(), 0);
        assert_eq!(parse_index("end", 5).unwrap(), 4);
        assert_eq!(parse_index("end-2", 5).unwrap(), 2);
        assert_eq!(parse_index("-1", 5).unwrap(), -1);
        assert!(parse_index("x", 5).is_err());
    }
}
