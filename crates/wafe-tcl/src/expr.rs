//! The `expr` expression evaluator.
//!
//! Tcl expressions have C-like syntax and semantics over integers, doubles
//! and strings. `expr` performs its own round of `$var` and `[command]`
//! substitution, which is what makes the `if {$x < 3} ...` idiom work:
//! the braces defer substitution to expression-evaluation time.
//!
//! Evaluation builds a small AST first so that `&&`, `||` and `?:` can
//! short-circuit: their unevaluated operand's variables are never read and
//! its command substitutions never run.

use std::rc::Rc;

use crate::error::{TclError, TclResult};
use crate::interp::Interp;
use crate::parser::{find_matching_brace, find_matching_bracket, parse_backslash, scan_varname};
use crate::value::Value as TclValue;

/// A value inside the expression evaluator.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An integer operand.
    Int(i64),
    /// A floating-point operand.
    Dbl(f64),
    /// A string operand (only comparisons apply).
    Str(String),
}

impl Value {
    /// Renders the value the way `expr` returns it.
    pub fn render(&self) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Dbl(d) => format_double(*d),
            Value::Str(s) => s.clone(),
        }
    }

    pub(crate) fn truthy(&self) -> TclResult<bool> {
        match self {
            Value::Int(i) => Ok(*i != 0),
            Value::Dbl(d) => Ok(*d != 0.0),
            Value::Str(s) => match s.as_str() {
                "1" | "true" | "yes" | "on" => Ok(true),
                "0" | "false" | "no" | "off" => Ok(false),
                _ => Err(TclError::Error(format!(
                    "expected boolean value but got \"{s}\""
                ))),
            },
        }
    }
}

/// Formats a double like Tcl does: always with a decimal point or
/// exponent so the value reads back as a double.
pub fn format_double(d: f64) -> String {
    if d.is_nan() {
        return "NaN".into();
    }
    if d.is_infinite() {
        return if d > 0.0 { "Inf".into() } else { "-Inf".into() };
    }
    if d == d.trunc() && d.abs() < 1e16 {
        format!("{d:.1}")
    } else {
        format!("{d}")
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Node {
    Lit(Value),
    /// `$name` or `$name(indexText)`; resolved lazily.
    Var(String, Option<String>),
    /// `[script]`; run lazily.
    Cmd(String),
    Unary(UnOp, Box<Node>),
    Binary(BinOp, Box<Node>, Box<Node>),
    Ternary(Box<Node>, Box<Node>, Box<Node>),
    Call(String, Vec<Node>),
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum UnOp {
    Neg,
    Pos,
    Not,
    BitNot,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum BinOp {
    Mul,
    Div,
    Mod,
    Add,
    Sub,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    And,
    Or,
}

/// An expression parsed once into its AST; evaluation only performs the
/// variable/command substitution, never re-lexing the text. Parsing is
/// pure — the AST is valid for any interpreter state.
#[derive(Debug, Clone)]
pub struct CompiledExpr {
    node: Node,
}

impl CompiledExpr {
    /// The parsed expression tree (for the bytecode lowering).
    pub(crate) fn node(&self) -> &Node {
        &self.node
    }
}

/// Parses an expression without evaluating it.
pub fn compile_expr(text: &str) -> TclResult<CompiledExpr> {
    Ok(CompiledExpr {
        node: parse_text(text)?,
    })
}

/// An expression readied for repeated evaluation (`while`/`for` guards):
/// compiled when the text parses, raw source otherwise so that the error
/// surfaces at evaluation time exactly as Tcl reports it.
#[derive(Clone)]
pub enum PreparedExpr {
    /// Parsed once; evaluation substitutes only.
    Compiled(Rc<CompiledExpr>),
    /// Did not parse (or caching disabled): re-parse at each evaluation.
    Source(String),
}

/// Readies an expression for repeated evaluation, consulting the
/// interpreter's expression cache. With caching disabled this always
/// yields the re-parsing form (the Tcl 6.x baseline).
pub fn prepare_expr(interp: &mut Interp, text: &str) -> PreparedExpr {
    if !interp.cache_enabled() {
        return PreparedExpr::Source(text.to_string());
    }
    if let Some(c) = interp.expr_cache_get(text) {
        return PreparedExpr::Compiled(c);
    }
    match compile_expr(text) {
        Ok(c) => {
            let rc = Rc::new(c);
            interp.expr_cache_put(text, rc.clone());
            PreparedExpr::Compiled(rc)
        }
        Err(_) => PreparedExpr::Source(text.to_string()),
    }
}

/// Evaluates a [`PreparedExpr`].
pub fn eval_prepared(interp: &mut Interp, prepared: &PreparedExpr) -> TclResult<Value> {
    match prepared {
        PreparedExpr::Compiled(c) => eval_node(interp, &c.node),
        PreparedExpr::Source(s) => eval_expr(interp, s),
    }
}

/// Evaluates a [`PreparedExpr`] as a boolean.
pub fn eval_prepared_bool(interp: &mut Interp, prepared: &PreparedExpr) -> TclResult<bool> {
    eval_prepared(interp, prepared)?.truthy()
}

fn parse_text(text: &str) -> TclResult<Node> {
    let chars: Vec<char> = text.chars().collect();
    let mut p = Parser {
        chars: &chars,
        pos: 0,
    };
    let node = p.parse_ternary()?;
    p.skip_ws();
    if p.pos < p.chars.len() {
        return Err(TclError::Error(format!(
            "syntax error in expression \"{text}\""
        )));
    }
    Ok(node)
}

/// Evaluates an expression string in the context of an interpreter.
/// Already-seen expression texts hit the interpreter's parse cache.
pub fn eval_expr(interp: &mut Interp, text: &str) -> TclResult<Value> {
    if let Some(c) = interp.expr_cache_get(text) {
        return eval_node(interp, &c.node);
    }
    let node = parse_text(text)?;
    if interp.cache_enabled() {
        let rc = Rc::new(CompiledExpr { node });
        interp.expr_cache_put(text, rc.clone());
        return eval_node(interp, &rc.node);
    }
    eval_node(interp, &node)
}

/// Evaluates an expression and renders the result as a string.
pub fn eval_expr_str(interp: &mut Interp, text: &str) -> TclResult<String> {
    Ok(eval_expr(interp, text)?.render())
}

/// Evaluates an expression into a dual-representation [`TclValue`]: a
/// numeric result carries its Int/Double rep, so `set x [expr ...]`
/// followed by `incr x` or another `expr $x` never re-parses text.
pub fn eval_expr_value(interp: &mut Interp, text: &str) -> TclResult<TclValue> {
    Ok(into_tcl_value(eval_expr(interp, text)?))
}

/// Converts an expression result into a [`TclValue`], preserving the
/// numeric representation (rendered lazily, in exactly `render()`'s form).
pub fn into_tcl_value(v: Value) -> TclValue {
    match v {
        Value::Int(i) => TclValue::from_int(i),
        Value::Dbl(d) => TclValue::from_double(d),
        Value::Str(s) => TclValue::from(s),
    }
}

/// Evaluates an expression as a boolean (for `if`, `while`, `for`).
pub fn eval_expr_bool(interp: &mut Interp, text: &str) -> TclResult<bool> {
    eval_expr(interp, text)?.truthy()
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn parse_ternary(&mut self) -> TclResult<Node> {
        let cond = self.parse_binary(0)?;
        self.skip_ws();
        if self.peek() == Some('?') {
            self.pos += 1;
            let then = self.parse_ternary()?;
            self.skip_ws();
            if self.peek() != Some(':') {
                return Err(TclError::error("missing \":\" in ternary expression"));
            }
            self.pos += 1;
            let els = self.parse_ternary()?;
            return Ok(Node::Ternary(Box::new(cond), Box::new(then), Box::new(els)));
        }
        Ok(cond)
    }

    /// Precedence-climbing binary parser. Levels, loosest first:
    /// `||`, `&&`, `|`, `^`, `&`, `== !=`, `< > <= >=`, `<< >>`, `+ -`, `* / %`.
    fn parse_binary(&mut self, min_level: u8) -> TclResult<Node> {
        let mut lhs = if min_level >= 10 {
            self.parse_unary()?
        } else {
            self.parse_binary(min_level + 1)?
        };
        loop {
            self.skip_ws();
            let op = match self.match_op(min_level) {
                Some(op) => op,
                None => return Ok(lhs),
            };
            let rhs = if min_level >= 10 {
                self.parse_unary()?
            } else {
                self.parse_binary(min_level + 1)?
            };
            lhs = Node::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn match_op(&mut self, level: u8) -> Option<BinOp> {
        let c = self.peek()?;
        let c2 = self.peek2();
        let (op, len) = match level {
            0 => {
                if c == '|' && c2 == Some('|') {
                    (BinOp::Or, 2)
                } else {
                    return None;
                }
            }
            1 => {
                if c == '&' && c2 == Some('&') {
                    (BinOp::And, 2)
                } else {
                    return None;
                }
            }
            2 => {
                if c == '|' && c2 != Some('|') {
                    (BinOp::BitOr, 1)
                } else {
                    return None;
                }
            }
            3 => {
                if c == '^' {
                    (BinOp::BitXor, 1)
                } else {
                    return None;
                }
            }
            4 => {
                if c == '&' && c2 != Some('&') {
                    (BinOp::BitAnd, 1)
                } else {
                    return None;
                }
            }
            5 => match (c, c2) {
                ('=', Some('=')) => (BinOp::Eq, 2),
                ('!', Some('=')) => (BinOp::Ne, 2),
                _ => return None,
            },
            6 => match (c, c2) {
                ('<', Some('=')) => (BinOp::Le, 2),
                ('>', Some('=')) => (BinOp::Ge, 2),
                ('<', Some('<')) | ('>', Some('>')) => return None,
                ('<', _) => (BinOp::Lt, 1),
                ('>', _) => (BinOp::Gt, 1),
                _ => return None,
            },
            7 => match (c, c2) {
                ('<', Some('<')) => (BinOp::Shl, 2),
                ('>', Some('>')) => (BinOp::Shr, 2),
                _ => return None,
            },
            8 => match c {
                '+' => (BinOp::Add, 1),
                '-' => (BinOp::Sub, 1),
                _ => return None,
            },
            _ => match c {
                '*' => (BinOp::Mul, 1),
                '/' => (BinOp::Div, 1),
                '%' => (BinOp::Mod, 1),
                _ => return None,
            },
        };
        self.pos += len;
        Some(op)
    }

    fn parse_unary(&mut self) -> TclResult<Node> {
        self.skip_ws();
        match self.peek() {
            Some('-') => {
                self.pos += 1;
                Ok(Node::Unary(UnOp::Neg, Box::new(self.parse_unary()?)))
            }
            Some('+') => {
                self.pos += 1;
                Ok(Node::Unary(UnOp::Pos, Box::new(self.parse_unary()?)))
            }
            Some('!') if self.peek2() != Some('=') => {
                self.pos += 1;
                Ok(Node::Unary(UnOp::Not, Box::new(self.parse_unary()?)))
            }
            Some('~') => {
                self.pos += 1;
                Ok(Node::Unary(UnOp::BitNot, Box::new(self.parse_unary()?)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> TclResult<Node> {
        self.skip_ws();
        let c = match self.peek() {
            Some(c) => c,
            None => return Err(TclError::error("empty expression")),
        };
        match c {
            '(' => {
                self.pos += 1;
                let inner = self.parse_ternary()?;
                self.skip_ws();
                if self.peek() != Some(')') {
                    return Err(TclError::error("unbalanced parentheses in expression"));
                }
                self.pos += 1;
                Ok(inner)
            }
            '$' => {
                let (name, index, next) = scan_varname(self.chars, self.pos + 1);
                if name.is_empty() {
                    return Err(TclError::error("\"$\" without variable name in expression"));
                }
                self.pos = next;
                Ok(Node::Var(name, index))
            }
            '[' => {
                let end = find_matching_bracket(self.chars, self.pos)?;
                let script: String = self.chars[self.pos + 1..end].iter().collect();
                self.pos = end + 1;
                Ok(Node::Cmd(script))
            }
            '"' => {
                let mut s = String::new();
                let mut i = self.pos + 1;
                while i < self.chars.len() && self.chars[i] != '"' {
                    if self.chars[i] == '\\' {
                        let (t, next) = parse_backslash(self.chars, i);
                        s.push_str(&t);
                        i = next;
                    } else {
                        s.push(self.chars[i]);
                        i += 1;
                    }
                }
                if i >= self.chars.len() {
                    return Err(TclError::error("missing \" in expression"));
                }
                self.pos = i + 1;
                Ok(Node::Lit(Value::Str(s)))
            }
            '{' => {
                let end = find_matching_brace(self.chars, self.pos)?;
                let s: String = self.chars[self.pos + 1..end].iter().collect();
                self.pos = end + 1;
                Ok(Node::Lit(Value::Str(s)))
            }
            c if c.is_ascii_digit() || c == '.' => self.parse_number(),
            c if c.is_alphabetic() || c == '_' => self.parse_func_or_word(),
            other => Err(TclError::Error(format!(
                "syntax error in expression near \"{other}\""
            ))),
        }
    }

    fn parse_number(&mut self) -> TclResult<Node> {
        let start = self.pos;
        let chars = self.chars;
        let mut i = self.pos;
        // Hex?
        if chars[i] == '0' && i + 1 < chars.len() && (chars[i + 1] == 'x' || chars[i + 1] == 'X') {
            i += 2;
            let hstart = i;
            while i < chars.len() && chars[i].is_ascii_hexdigit() {
                i += 1;
            }
            if i == hstart {
                return Err(TclError::error("malformed hexadecimal constant"));
            }
            let text: String = chars[hstart..i].iter().collect();
            self.pos = i;
            let v = i64::from_str_radix(&text, 16)
                .map_err(|_| TclError::error("integer constant too large"))?;
            return Ok(Node::Lit(Value::Int(v)));
        }
        let mut is_float = false;
        while i < chars.len() && chars[i].is_ascii_digit() {
            i += 1;
        }
        if i < chars.len() && chars[i] == '.' {
            is_float = true;
            i += 1;
            while i < chars.len() && chars[i].is_ascii_digit() {
                i += 1;
            }
        }
        if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
            let mut j = i + 1;
            if j < chars.len() && (chars[j] == '+' || chars[j] == '-') {
                j += 1;
            }
            if j < chars.len() && chars[j].is_ascii_digit() {
                is_float = true;
                i = j;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
            }
        }
        let text: String = chars[start..i].iter().collect();
        self.pos = i;
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| TclError::Error(format!("malformed number \"{text}\"")))?;
            Ok(Node::Lit(Value::Dbl(v)))
        } else if text.len() > 1 && text.starts_with('0') {
            // Leading zero: octal, like C.
            let v = i64::from_str_radix(&text[1..], 8)
                .map_err(|_| TclError::Error(format!("malformed octal number \"{text}\"")))?;
            Ok(Node::Lit(Value::Int(v)))
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| TclError::Error(format!("malformed number \"{text}\"")))?;
            Ok(Node::Lit(Value::Int(v)))
        }
    }

    fn parse_func_or_word(&mut self) -> TclResult<Node> {
        let start = self.pos;
        let mut i = self.pos;
        while i < self.chars.len() && (self.chars[i].is_alphanumeric() || self.chars[i] == '_') {
            i += 1;
        }
        let word: String = self.chars[start..i].iter().collect();
        self.pos = i;
        self.skip_ws();
        if self.peek() == Some('(') {
            self.pos += 1;
            let mut args = Vec::new();
            self.skip_ws();
            if self.peek() == Some(')') {
                self.pos += 1;
            } else {
                loop {
                    args.push(self.parse_ternary()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => {
                            self.pos += 1;
                        }
                        Some(')') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(TclError::error("missing close paren in function call")),
                    }
                }
            }
            return Ok(Node::Call(word, args));
        }
        // Bare words: boolean literals only.
        match word.as_str() {
            "true" | "yes" | "on" => Ok(Node::Lit(Value::Int(1))),
            "false" | "no" | "off" => Ok(Node::Lit(Value::Int(0))),
            _ => Err(TclError::Error(format!(
                "syntax error in expression: unexpected word \"{word}\""
            ))),
        }
    }
}

/// Coerces a raw string operand (from `$var`/`[cmd]`) into a numeric value
/// when it looks like one, else keeps it a string.
pub(crate) fn coerce(s: &str) -> Value {
    let t = s.trim();
    if t.is_empty() {
        return Value::Str(s.to_string());
    }
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        if let Ok(v) = i64::from_str_radix(hex, 16) {
            return Value::Int(v);
        }
    }
    if let Ok(v) = t.parse::<i64>() {
        return Value::Int(v);
    }
    if let Ok(v) = t.parse::<f64>() {
        if t.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        {
            return Value::Dbl(v);
        }
    }
    Value::Str(s.to_string())
}

/// Coerces a shared [`TclValue`] operand, consulting its cached numeric
/// rep first (the hot path for loop counters: no text parse at all) and
/// populating the cache for canonical spellings on a miss.
pub(crate) fn coerce_value(v: &TclValue) -> Value {
    if let Some(n) = v.cached_int() {
        return Value::Int(n);
    }
    if let Some(d) = v.cached_double() {
        return Value::Dbl(d);
    }
    let r = coerce(v.as_str());
    match &r {
        Value::Int(n) => v.cache_int_canonical(*n),
        Value::Dbl(d) => v.cache_double_canonical(*d),
        Value::Str(_) => {}
    }
    r
}

fn eval_node(interp: &mut Interp, node: &Node) -> TclResult<Value> {
    match node {
        Node::Lit(v) => Ok(v.clone()),
        Node::Var(name, None) => Ok(coerce_value(interp.get_var_ref(name)?)),
        Node::Var(name, Some(raw)) => {
            let idx = interp.substitute_all(raw)?;
            Ok(coerce_value(interp.get_elem_ref(name, &idx)?))
        }
        Node::Cmd(script) => Ok(coerce_value(&interp.eval(script)?)),
        Node::Unary(op, a) => {
            let v = eval_node(interp, a)?;
            eval_unop(*op, v)
        }
        Node::Binary(BinOp::And, a, b) => {
            if !eval_node(interp, a)?.truthy()? {
                return Ok(Value::Int(0));
            }
            Ok(Value::Int(if eval_node(interp, b)?.truthy()? {
                1
            } else {
                0
            }))
        }
        Node::Binary(BinOp::Or, a, b) => {
            if eval_node(interp, a)?.truthy()? {
                return Ok(Value::Int(1));
            }
            Ok(Value::Int(if eval_node(interp, b)?.truthy()? {
                1
            } else {
                0
            }))
        }
        Node::Binary(op, a, b) => {
            let va = eval_node(interp, a)?;
            let vb = eval_node(interp, b)?;
            eval_binop(*op, va, vb)
        }
        Node::Ternary(c, t, e) => {
            if eval_node(interp, c)?.truthy()? {
                eval_node(interp, t)
            } else {
                eval_node(interp, e)
            }
        }
        Node::Call(name, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_node(interp, a)?);
            }
            eval_func(interp, name, &vals)
        }
    }
}

fn as_f64(v: &Value) -> TclResult<f64> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Dbl(d) => Ok(*d),
        Value::Str(s) => Err(TclError::Error(format!(
            "can't use non-numeric string \"{s}\" as operand of arithmetic operator"
        ))),
    }
}

fn as_i64(v: &Value) -> TclResult<i64> {
    match v {
        Value::Int(i) => Ok(*i),
        Value::Dbl(_) => Err(TclError::error(
            "can't use floating-point value as operand of integer operator",
        )),
        Value::Str(s) => Err(TclError::Error(format!(
            "can't use non-numeric string \"{s}\" as operand of arithmetic operator"
        ))),
    }
}

pub(crate) fn eval_unop(op: UnOp, v: Value) -> TclResult<Value> {
    match (op, v) {
        (UnOp::Neg, Value::Int(i)) => Ok(Value::Int(i.wrapping_neg())),
        (UnOp::Neg, Value::Dbl(d)) => Ok(Value::Dbl(-d)),
        (UnOp::Pos, v @ (Value::Int(_) | Value::Dbl(_))) => Ok(v),
        (UnOp::Not, v) => Ok(Value::Int(if v.truthy()? { 0 } else { 1 })),
        (UnOp::BitNot, Value::Int(i)) => Ok(Value::Int(!i)),
        _ => Err(TclError::error(
            "can't use non-numeric string as operand of unary operator",
        )),
    }
}

pub(crate) fn eval_binop(op: BinOp, a: Value, b: Value) -> TclResult<Value> {
    use BinOp::*;
    let both_int = matches!((&a, &b), (Value::Int(_), Value::Int(_)));
    let any_str = matches!(&a, Value::Str(_)) || matches!(&b, Value::Str(_));
    match op {
        Add | Sub | Mul => {
            if both_int {
                let (x, y) = (as_i64(&a)?, as_i64(&b)?);
                let r = match op {
                    Add => x.checked_add(y),
                    Sub => x.checked_sub(y),
                    _ => x.checked_mul(y),
                };
                r.map(Value::Int)
                    .ok_or_else(|| TclError::error("integer overflow"))
            } else {
                let (x, y) = (as_f64(&a)?, as_f64(&b)?);
                Ok(Value::Dbl(match op {
                    Add => x + y,
                    Sub => x - y,
                    _ => x * y,
                }))
            }
        }
        Div => {
            if both_int {
                let (x, y) = (as_i64(&a)?, as_i64(&b)?);
                if y == 0 {
                    return Err(TclError::error("divide by zero"));
                }
                Ok(Value::Int(x.wrapping_div(y)))
            } else {
                let (x, y) = (as_f64(&a)?, as_f64(&b)?);
                if y == 0.0 {
                    return Err(TclError::error("divide by zero"));
                }
                Ok(Value::Dbl(x / y))
            }
        }
        Mod => {
            let (x, y) = (as_i64(&a)?, as_i64(&b)?);
            if y == 0 {
                return Err(TclError::error("divide by zero"));
            }
            Ok(Value::Int(x.wrapping_rem(y)))
        }
        Shl => Ok(Value::Int(as_i64(&a)?.wrapping_shl(as_i64(&b)? as u32))),
        Shr => Ok(Value::Int(as_i64(&a)?.wrapping_shr(as_i64(&b)? as u32))),
        BitAnd => Ok(Value::Int(as_i64(&a)? & as_i64(&b)?)),
        BitOr => Ok(Value::Int(as_i64(&a)? | as_i64(&b)?)),
        BitXor => Ok(Value::Int(as_i64(&a)? ^ as_i64(&b)?)),
        Lt | Gt | Le | Ge | Eq | Ne => {
            let ord = if any_str {
                a.render().cmp(&b.render())
            } else {
                let (x, y) = (as_f64(&a)?, as_f64(&b)?);
                x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal)
            };
            use std::cmp::Ordering::*;
            let r = match op {
                Lt => ord == Less,
                Gt => ord == Greater,
                Le => ord != Greater,
                Ge => ord != Less,
                Eq => ord == Equal,
                Ne => ord != Equal,
                _ => unreachable!(),
            };
            Ok(Value::Int(if r { 1 } else { 0 }))
        }
        And | Or => unreachable!("handled with short-circuit"),
    }
}

pub(crate) fn eval_func(interp: &mut Interp, name: &str, args: &[Value]) -> TclResult<Value> {
    let need = |n: usize| -> TclResult<()> {
        if args.len() != n {
            Err(TclError::Error(format!(
                "wrong number of arguments for math function \"{name}\""
            )))
        } else {
            Ok(())
        }
    };
    let f1 = |f: fn(f64) -> f64| -> TclResult<Value> {
        need(1)?;
        Ok(Value::Dbl(f(as_f64(&args[0])?)))
    };
    match name {
        "abs" => {
            need(1)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
                v => Ok(Value::Dbl(as_f64(v)?.abs())),
            }
        }
        "acos" => f1(f64::acos),
        "asin" => f1(f64::asin),
        "atan" => f1(f64::atan),
        "atan2" => {
            need(2)?;
            Ok(Value::Dbl(as_f64(&args[0])?.atan2(as_f64(&args[1])?)))
        }
        "ceil" => f1(f64::ceil),
        "cos" => f1(f64::cos),
        "cosh" => f1(f64::cosh),
        "double" => {
            need(1)?;
            Ok(Value::Dbl(as_f64(&args[0])?))
        }
        "exp" => f1(f64::exp),
        "floor" => f1(f64::floor),
        "fmod" => {
            need(2)?;
            Ok(Value::Dbl(as_f64(&args[0])? % as_f64(&args[1])?))
        }
        "hypot" => {
            need(2)?;
            Ok(Value::Dbl(as_f64(&args[0])?.hypot(as_f64(&args[1])?)))
        }
        "int" => {
            need(1)?;
            Ok(Value::Int(as_f64(&args[0])? as i64))
        }
        "log" => f1(f64::ln),
        "log10" => f1(f64::log10),
        "pow" => {
            need(2)?;
            Ok(Value::Dbl(as_f64(&args[0])?.powf(as_f64(&args[1])?)))
        }
        "round" => {
            need(1)?;
            Ok(Value::Int(as_f64(&args[0])?.round() as i64))
        }
        "sin" => f1(f64::sin),
        "sinh" => f1(f64::sinh),
        "sqrt" => f1(f64::sqrt),
        "tan" => f1(f64::tan),
        "tanh" => f1(f64::tanh),
        "rand" => {
            need(0)?;
            // xorshift64*: deterministic, seedable with srand().
            let mut x = interp.rand_state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            interp.rand_state = x;
            let v = (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
            Ok(Value::Dbl(v))
        }
        "srand" => {
            need(1)?;
            interp.rand_state = (as_i64(&args[0])? as u64) | 1;
            Ok(Value::Dbl(0.0))
        }
        _ => Err(TclError::Error(format!("unknown math function \"{name}\""))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(s: &str) -> String {
        let mut i = Interp::new();
        eval_expr_str(&mut i, s).unwrap()
    }

    fn ev_err(s: &str) -> TclError {
        let mut i = Interp::new();
        eval_expr_str(&mut i, s).unwrap_err()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ev("1+2"), "3");
        assert_eq!(ev("2*3+4"), "10");
        assert_eq!(ev("2+3*4"), "14");
        assert_eq!(ev("(2+3)*4"), "20");
        assert_eq!(ev("7/2"), "3");
        assert_eq!(ev("7%3"), "1");
        assert_eq!(ev("7.0/2"), "3.5");
        assert_eq!(ev("-3"), "-3");
        assert_eq!(ev("- -3"), "3");
    }

    #[test]
    fn precedence_and_bitops() {
        assert_eq!(ev("1<<4"), "16");
        assert_eq!(ev("255>>4"), "15");
        assert_eq!(ev("6&3"), "2");
        assert_eq!(ev("6|3"), "7");
        assert_eq!(ev("6^3"), "5");
        assert_eq!(ev("~0"), "-1");
        assert_eq!(ev("1|2==2"), "1"); // == binds tighter than |
    }

    #[test]
    fn comparisons() {
        assert_eq!(ev("1 < 2"), "1");
        assert_eq!(ev("2 <= 2"), "1");
        assert_eq!(ev("3 > 4"), "0");
        assert_eq!(ev("1 == 1.0"), "1");
        assert_eq!(ev("\"abc\" == \"abc\""), "1");
        assert_eq!(ev("\"abc\" < \"abd\""), "1");
    }

    #[test]
    fn logical_short_circuit() {
        let mut i = Interp::new();
        // The rhs references an unset variable; && must not evaluate it.
        assert_eq!(eval_expr_str(&mut i, "0 && $nosuch").unwrap(), "0");
        assert_eq!(eval_expr_str(&mut i, "1 || $nosuch").unwrap(), "1");
        assert!(eval_expr_str(&mut i, "1 && $nosuch").is_err());
    }

    #[test]
    fn ternary_lazy() {
        let mut i = Interp::new();
        assert_eq!(eval_expr_str(&mut i, "1 ? 5 : $nosuch").unwrap(), "5");
        assert_eq!(eval_expr_str(&mut i, "0 ? $nosuch : 7").unwrap(), "7");
    }

    #[test]
    fn variables_and_commands() {
        let mut i = Interp::new();
        i.set_var("x", "10").unwrap();
        assert_eq!(eval_expr_str(&mut i, "$x * 2").unwrap(), "20");
        assert_eq!(eval_expr_str(&mut i, "[set x] + 1").unwrap(), "11");
        i.set_elem("a", "k", "3").unwrap();
        assert_eq!(eval_expr_str(&mut i, "$a(k)+1").unwrap(), "4");
    }

    #[test]
    fn math_functions() {
        assert_eq!(ev("sqrt(16)"), "4.0");
        assert_eq!(ev("int(3.9)"), "3");
        assert_eq!(ev("round(3.5)"), "4");
        assert_eq!(ev("abs(-4)"), "4");
        assert_eq!(ev("pow(2,10)"), "1024.0");
        assert_eq!(ev("double(2)"), "2.0");
        assert_eq!(ev("fmod(7.5, 2)"), "1.5");
    }

    #[test]
    fn hex_and_octal_constants() {
        assert_eq!(ev("0x10"), "16");
        assert_eq!(ev("010"), "8");
        assert_eq!(ev("0"), "0");
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(ev("1e3"), "1000.0");
        assert_eq!(ev("1.5e2 + 0.0"), "150.0");
    }

    #[test]
    fn errors() {
        assert!(ev_err("1/0").message().contains("divide by zero"));
        assert!(ev_err("1+").is_error());
        assert!(ev_err("(1").is_error());
        assert!(ev_err("nonsuchfunc(1)").is_error());
        assert!(ev_err("\"a\" + 1").is_error());
    }

    #[test]
    fn rand_is_deterministic_after_srand() {
        let mut i = Interp::new();
        eval_expr_str(&mut i, "srand(42)").unwrap();
        let a = eval_expr_str(&mut i, "rand()").unwrap();
        eval_expr_str(&mut i, "srand(42)").unwrap();
        let b = eval_expr_str(&mut i, "rand()").unwrap();
        assert_eq!(a, b);
        let v: f64 = a.parse().unwrap();
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn boolean_words() {
        assert_eq!(ev("true && on"), "1");
        assert_eq!(ev("false || off"), "0");
    }

    #[test]
    fn double_formatting() {
        assert_eq!(format_double(1.0), "1.0");
        assert_eq!(format_double(0.5), "0.5");
        assert_eq!(format_double(-2.0), "-2.0");
    }
}
