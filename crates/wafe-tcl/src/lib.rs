//! An embeddable Tcl command language interpreter.
//!
//! This crate reimplements the Tcl language of the era Wafe embedded
//! (Tcl 6.x, 1992): one data type — the string — and a command syntax in
//! which every command is simply a list of words. It provides the same
//! embedding contract the C library gave Wafe:
//!
//! * a host program creates an [`Interp`],
//! * registers additional commands with [`Interp::register`] (the analogue
//!   of `Tcl_CreateCommand`), each command receiving its arguments as a
//!   slice of [`Value`]s — shared, dual-representation strings (see
//!   [`value`]) — and returning a `Value` result, and
//! * evaluates scripts with [`Interp::eval`].
//!
//! Substitution rules follow the Tcl book: `$var` and `$arr(elem)` variable
//! substitution, `[command]` command substitution, backslash escapes,
//! `"..."` quoting (substitution, no word splitting) and `{...}` bracing
//! (no substitution at all). Control flow (`break`, `continue`, `return`)
//! is modelled as the non-`Ok` variants of [`TclError`], exactly as Tcl's
//! `TCL_BREAK`/`TCL_CONTINUE`/`TCL_RETURN` completion codes.
//!
//! # Examples
//!
//! ```
//! use wafe_tcl::Interp;
//!
//! let mut interp = Interp::new();
//! let r = interp.eval("set x 17; expr {$x * 2 + 8}").unwrap();
//! assert_eq!(r, "42");
//! ```

pub mod bc;
pub mod commands;
pub mod compile;
pub mod error;
pub mod expr;
pub mod glob;
pub mod hash;
pub mod interp;
pub mod list;
pub mod parser;
pub(crate) mod profile;
pub mod regex;
pub mod snapshot;
pub mod value;

pub use compile::{compile, CompiledScript};
pub use error::{TclError, TclResult};
pub use interp::{BcStats, CacheStats, CmdFn, Interp, OutputSink, Prepared};
pub use list::{list_append, list_join, list_quote, parse_list};
pub use snapshot::InterpSnapshot;
pub use value::{
    reset_shimmer_stats, set_reps_enabled, shimmer_stats, IntRep, ShimmerStats, Value,
};
pub use wafe_trace::Telemetry;

/// Convenience alias for the result type returned by Tcl commands.
pub type CmdResult = TclResult<Value>;
