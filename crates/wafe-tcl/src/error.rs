//! Completion codes of the Tcl evaluator.
//!
//! Tcl models non-local control flow (`break`, `continue`, `return`) as
//! special completion codes returned alongside `TCL_ERROR`. We mirror that
//! with an error enum: only [`TclError::Error`] is a genuine error; the
//! other variants are intercepted by the enclosing looping or procedure
//! construct.

use std::fmt;

/// Result alias used throughout the interpreter.
pub type TclResult<T> = Result<T, TclError>;

/// A non-`TCL_OK` completion code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TclError {
    /// A genuine Tcl error (`TCL_ERROR`) with its message.
    Error(String),
    /// `return` was invoked with the given result value (`TCL_RETURN`).
    Return(String),
    /// `break` was invoked inside a loop (`TCL_BREAK`).
    Break,
    /// `continue` was invoked inside a loop (`TCL_CONTINUE`).
    Continue,
}

impl TclError {
    /// Creates an ordinary error with the given message.
    pub fn error(msg: impl Into<String>) -> Self {
        TclError::Error(msg.into())
    }

    /// Returns the message of an [`TclError::Error`], or a rendering of
    /// the flow-control code when it escaped its construct.
    pub fn message(&self) -> String {
        match self {
            TclError::Error(m) => m.clone(),
            TclError::Return(_) => "invoked \"return\" outside of a procedure".into(),
            TclError::Break => "invoked \"break\" outside of a loop".into(),
            TclError::Continue => "invoked \"continue\" outside of a loop".into(),
        }
    }

    /// True if this is an ordinary error rather than flow control.
    pub fn is_error(&self) -> bool {
        matches!(self, TclError::Error(_))
    }
}

impl fmt::Display for TclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message())
    }
}

impl std::error::Error for TclError {}

/// Builds the canonical `wrong # args` error message.
pub fn wrong_num_args(usage: &str) -> TclError {
    TclError::Error(format!("wrong # args: should be \"{usage}\""))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_message_roundtrip() {
        let e = TclError::error("boom");
        assert!(e.is_error());
        assert_eq!(e.message(), "boom");
        assert_eq!(e.to_string(), "boom");
    }

    #[test]
    fn flow_control_messages() {
        assert_eq!(
            TclError::Break.message(),
            "invoked \"break\" outside of a loop"
        );
        assert_eq!(
            TclError::Continue.message(),
            "invoked \"continue\" outside of a loop"
        );
        assert!(TclError::Return("x".into()).message().contains("return"));
        assert!(!TclError::Break.is_error());
    }

    #[test]
    fn wrong_num_args_format() {
        let e = wrong_num_args("set varName ?newValue?");
        assert_eq!(
            e.message(),
            "wrong # args: should be \"set varName ?newValue?\""
        );
    }
}
