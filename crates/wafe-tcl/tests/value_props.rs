//! Property tests for dual-representation values: the cached internal
//! rep must be semantically invisible — every operation agrees with the
//! pure-string list codec in `wafe_tcl::list` and round-trips exactly.

use wafe_prop::cases;
use wafe_tcl::value::join_values;
use wafe_tcl::{list_join, parse_list, Interp, Value};

fn chars(s: &str) -> Vec<char> {
    s.chars().collect()
}

/// String → Value → string is the identity for arbitrary text.
#[test]
fn string_roundtrip_identity() {
    cases(256, |rng| {
        let s = rng.unicode_string(0, 65);
        let v = Value::from(s.as_str());
        assert_eq!(v.as_str(), s);
        assert_eq!(String::from(v.clone()), s);
        assert_eq!(v, Value::from(s.clone()));
    });
}

/// Int-born and double-born values render exactly as the string model
/// would, and re-parse to the same number.
#[test]
fn numeric_roundtrip_identity() {
    cases(256, |rng| {
        let n = rng.range_i64(-1_000_000, 1_000_000);
        let v = Value::from_int(n);
        assert_eq!(v.as_str(), n.to_string());
        assert_eq!(v.as_int(), Some(n));
        let d = (rng.range_i64(-100_000, 100_000) as f64) / 64.0;
        let w = Value::from_double(d);
        assert_eq!(w.as_double(), Some(d));
        // Rendering then re-wrapping is stable.
        assert_eq!(Value::from(w.as_str()).as_double(), Some(d));
    });
}

/// `Value::from_list(...)` renders exactly what `list_join` produces
/// for the same element texts, and `as_list` inverts it.
#[test]
fn list_rep_agrees_with_string_codec() {
    let alphabet = chars("abcdefghijklmnopqrstuvwxyz0123456789 {}$[]\"\\;");
    cases(256, |rng| {
        let elems: Vec<String> = rng.vec(0, 8, |r| {
            let len = r.range(0, 9);
            r.string_from(&alphabet, len)
        });
        let joined = list_join(&elems);
        let v = Value::from_list(elems.iter().map(Value::from).collect());
        // Lazy render must be byte-identical to the string-model join.
        assert_eq!(v.as_str(), joined);
        assert_eq!(join_values(&v.as_list().unwrap()), joined);
        // Parsing the rendered string recovers the elements, exactly as
        // the pure-string codec does.
        let reparsed = parse_list(&joined).unwrap();
        assert_eq!(reparsed, elems);
        let via_rep: Vec<String> = v.as_list().unwrap().iter().map(|e| e.to_string()).collect();
        assert_eq!(via_rep, elems);
    });
}

/// List commands running on the cached rep agree with the same command
/// sequence forced through fresh string parses.
#[test]
fn list_commands_agree_with_string_model() {
    let alphabet = chars("abcdefghijklmnopqrstuvwxyz0123456789 {}");
    cases(128, |rng| {
        let elems: Vec<String> = rng.vec(1, 7, |r| {
            let len = r.range(0, 7);
            r.string_from(&alphabet, len)
        });
        let joined = list_join(&elems);
        let mut i = Interp::new();
        i.set_var("l", joined.as_str()).unwrap();

        // llength/lindex against the codec's ground truth.
        assert_eq!(
            i.eval("llength $l").unwrap(),
            elems.len().to_string(),
            "llength on {joined:?}"
        );
        let k = rng.range(0, elems.len());
        assert_eq!(i.eval(&format!("lindex $l {k}")).unwrap(), elems[k]);

        // lrange re-renders exactly the codec's join of the slice.
        let lo = rng.range(0, elems.len());
        let hi = rng.range(lo, elems.len());
        assert_eq!(
            i.eval(&format!("lrange $l {lo} {hi}")).unwrap(),
            list_join(&elems[lo..=hi])
        );

        // lappend agrees with appending at the string level.
        let extra_len = rng.range(0, 7);
        let extra = rng.string_from(&alphabet, extra_len);
        let mut grown = elems.clone();
        grown.push(extra.clone());
        i.set_var("x", extra.as_str()).unwrap();
        assert_eq!(i.eval("lappend l $x").unwrap(), list_join(&grown));
        assert_eq!(i.eval("set l").unwrap(), list_join(&grown));
    });
}

/// lsort on the cached rep is a permutation that matches Rust's sort of
/// the same strings.
#[test]
fn lsort_agrees_with_rust_sort() {
    let alphabet = chars("abcdefghijklmnopqrstuvwxyz");
    cases(128, |rng| {
        let elems: Vec<String> = rng.vec(0, 9, |r| {
            let len = r.range(1, 6);
            r.string_from(&alphabet, len)
        });
        let mut i = Interp::new();
        i.set_var("l", list_join(&elems).as_str()).unwrap();
        let mut expect = elems.clone();
        expect.sort();
        assert_eq!(i.eval("lsort $l").unwrap(), list_join(&expect));

        let nums: Vec<String> = rng
            .vec(0, 9, |r| r.range_i64(-500, 500))
            .iter()
            .map(|n| n.to_string())
            .collect();
        i.set_var("n", list_join(&nums).as_str()).unwrap();
        let mut expect_n: Vec<i64> = nums.iter().map(|s| s.parse().unwrap()).collect();
        expect_n.sort_unstable();
        let expect_n: Vec<String> = expect_n.iter().map(|n| n.to_string()).collect();
        assert_eq!(i.eval("lsort -integer $n").unwrap(), list_join(&expect_n));
    });
}
