//! Robustness: the interpreter must never panic, whatever script text it
//! is fed — errors are Tcl errors, not crashes.

use wafe_prop::cases;
use wafe_tcl::Interp;

/// Arbitrary byte-soup scripts produce Ok or Err, never a panic.
#[test]
fn eval_never_panics() {
    cases(256, |rng| {
        let script = rng.unicode_string(0, 81);
        let mut i = Interp::new();
        let _ = i.eval(&script);
    });
}

/// Arbitrary scripts built from Tcl metacharacters.
#[test]
fn metachar_soup_never_panics() {
    let alphabet: Vec<char> = "[]{}$\"\\; \n abcdefghijklmnopqrstuvwxyz0123456789%"
        .chars()
        .collect();
    cases(256, |rng| {
        let len = rng.range(0, 61);
        let script = rng.string_from(&alphabet, len);
        let mut i = Interp::new();
        let _ = i.eval(&script);
    });
}

/// Arbitrary expressions produce Ok or Err, never a panic.
#[test]
fn expr_never_panics() {
    let alphabet: Vec<char> = "0123456789abcdefghijklmnopqrstuvwxyz+*/()<>=!&|^ .\"-"
        .chars()
        .collect();
    cases(256, |rng| {
        let len = rng.range(0, 41);
        let text = rng.string_from(&alphabet, len);
        let mut i = Interp::new();
        let _ = i.eval(&format!("expr {{{text}}}"));
    });
}

/// format with arbitrary format strings never panics.
#[test]
fn format_never_panics() {
    let alphabet: Vec<char> = "%abcdefghijklmnopqrstuvwxyz0123456789 .#+-"
        .chars()
        .collect();
    cases(256, |rng| {
        let len = rng.range(0, 31);
        let fmt = rng.string_from(&alphabet, len);
        let mut i = Interp::new();
        let _ = i.invoke(&["format".into(), fmt.into(), "42".into(), "x".into()]);
    });
}

/// Deep but bounded nesting is handled (no stack overflow).
#[test]
fn nested_brackets_bounded() {
    cases(32, |rng| {
        let depth = rng.range(1, 60);
        let mut i = Interp::new();
        let script = format!("{}set x 1{}", "[".repeat(depth), "]".repeat(depth));
        let _ = i.eval(&script);
    });
}

#[test]
fn pathological_inputs() {
    let mut i = Interp::new();
    for s in [
        "{",
        "}",
        "[",
        "]",
        "\"",
        "$",
        "\\",
        "${",
        "$()",
        "a{b}c",
        "set",
        "set {",
        "proc p",
        "if",
        "while",
        "foreach x",
        "expr",
        "expr (",
        "expr 1+",
        "string",
        "array",
        "format %",
        "\u{0}",
        "\u{7f}\u{1b}",
        "%% % %w",
        "# only a comment",
        ";;;;",
        "\n\n\n",
        "set \u{fffd} 1",
    ] {
        let _ = i.eval(s); // Must not panic.
    }
}

#[test]
fn recursion_is_bounded_not_fatal() {
    let mut i = Interp::new();
    i.eval("proc f {} {f}").unwrap();
    let e = i.eval("f").unwrap_err();
    assert!(e.message().contains("too many nested calls"));
    // The interpreter is still usable afterwards.
    assert_eq!(i.eval("expr 1+1").unwrap(), "2");
}

#[test]
fn long_flat_scripts() {
    let mut i = Interp::new();
    let script: String = (0..2000).map(|k| format!("set v{k} {k}\n")).collect();
    i.eval(&script).unwrap();
    assert_eq!(i.get_var("v1999").unwrap(), "1999");
}

mod regex_props {
    use wafe_prop::cases;
    use wafe_tcl::regex::Regex;

    fn quote(s: &str) -> String {
        s.chars()
            .flat_map(|c| {
                if "\\^$.[]()*+?|".contains(c) {
                    vec!['\\', c]
                } else {
                    vec![c]
                }
            })
            .collect()
    }

    /// A quoted literal always matches itself, exactly.
    #[test]
    fn quoted_literal_matches_itself() {
        cases(256, |rng| {
            let s = rng.ascii_string(21);
            let re = Regex::compile(&format!("^{}$", quote(&s)), false).unwrap();
            assert!(re.is_match(&s));
        });
    }

    /// A quoted literal embedded in noise is found at the right span.
    #[test]
    fn literal_found_in_noise() {
        let low: Vec<char> = ('a'..='m').collect();
        let high: Vec<char> = ('n'..='z').collect();
        cases(256, |rng| {
            let pre_len = rng.range(0, 9);
            let pre = rng.string_from(&low, pre_len);
            let needle_len = rng.range(1, 9);
            let needle = rng.string_from(&high, needle_len);
            let post_len = rng.range(0, 9);
            let post = rng.string_from(&low, post_len);
            let hay = format!("{pre}{needle}{post}");
            let re = Regex::compile(&quote(&needle), false).unwrap();
            let m = re.find(&hay).expect("must match");
            let (lo, hi) = m.spans[0].unwrap();
            assert_eq!(hi - lo, needle.chars().count());
            let got: String = hay.chars().skip(lo).take(hi - lo).collect();
            assert_eq!(got, needle);
        });
    }

    /// Compiling arbitrary pattern text never panics.
    #[test]
    fn compile_never_panics() {
        cases(256, |rng| {
            let pattern = rng.unicode_string(0, 25);
            let _ = Regex::compile(&pattern, false);
        });
    }

    /// Matching never panics, whatever the compiled pattern and text.
    #[test]
    fn find_never_panics() {
        let pat_alphabet: Vec<char> = "abc.*+?()|[]^$".chars().collect();
        let text_alphabet: Vec<char> = "abc".chars().collect();
        cases(256, |rng| {
            let pat_len = rng.range(0, 11);
            let pattern = rng.string_from(&pat_alphabet, pat_len);
            let text_len = rng.range(0, 13);
            let text = rng.string_from(&text_alphabet, text_len);
            if let Ok(re) = Regex::compile(&pattern, false) {
                let _ = re.find(&text);
            }
        });
    }

    /// `x*` matches every string of x's entirely.
    #[test]
    fn star_matches_runs() {
        cases(32, |rng| {
            let n = rng.range(0, 20);
            let s = "x".repeat(n);
            let re = Regex::compile("^x*$", false).unwrap();
            assert!(re.is_match(&s));
        });
    }

    /// regexp agrees with string match for prefix patterns.
    #[test]
    fn agrees_with_glob_prefix() {
        let alphabet: Vec<char> = ('a'..='z').collect();
        cases(256, |rng| {
            let s_len = rng.range(1, 11);
            let s = rng.string_from(&alphabet, s_len);
            let t_len = rng.range(1, 11);
            let t = rng.string_from(&alphabet, t_len);
            let mut i = wafe_tcl::Interp::new();
            let glob = i
                .invoke(&[
                    "string".into(),
                    "match".into(),
                    format!("{s}*").into(),
                    t.clone().into(),
                ])
                .unwrap();
            let re = i
                .invoke(&["regexp".into(), format!("^{s}").into(), t.clone().into()])
                .unwrap();
            assert_eq!(glob, re);
        });
    }
}
