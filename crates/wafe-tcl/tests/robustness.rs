//! Robustness: the interpreter must never panic, whatever script text it
//! is fed — errors are Tcl errors, not crashes.

use proptest::prelude::*;
use wafe_tcl::Interp;

proptest! {
    /// Arbitrary byte-soup scripts produce Ok or Err, never a panic.
    #[test]
    fn eval_never_panics(script in ".{0,80}") {
        let mut i = Interp::new();
        let _ = i.eval(&script);
    }

    /// Arbitrary scripts built from Tcl metacharacters.
    #[test]
    fn metachar_soup_never_panics(script in "[\\[\\]{}$\"\\\\; \\n a-z0-9%]{0,60}") {
        let mut i = Interp::new();
        let _ = i.eval(&script);
    }

    /// Arbitrary expressions produce Ok or Err, never a panic.
    #[test]
    fn expr_never_panics(text in "[0-9a-z+*/()<>=!&|^ .\"-]{0,40}") {
        let mut i = Interp::new();
        let _ = i.eval(&format!("expr {{{text}}}"));
    }

    /// format with arbitrary format strings never panics.
    #[test]
    fn format_never_panics(fmt in "[%a-z0-9 .#+-]{0,30}") {
        let mut i = Interp::new();
        let _ = i.invoke(&["format".into(), fmt, "42".into(), "x".into()]);
    }

    /// Deep but bounded nesting is handled (no stack overflow).
    #[test]
    fn nested_brackets_bounded(depth in 1usize..60) {
        let mut i = Interp::new();
        let script = format!("{}set x 1{}", "[".repeat(depth), "]".repeat(depth));
        let _ = i.eval(&script);
    }
}

#[test]
fn pathological_inputs() {
    let mut i = Interp::new();
    for s in [
        "{", "}", "[", "]", "\"", "$", "\\", "${", "$()", "a{b}c",
        "set", "set {", "proc p", "if", "while", "foreach x",
        "expr", "expr (", "expr 1+", "string", "array", "format %",
        "\u{0}", "\u{7f}\u{1b}", "%% % %w", "# only a comment",
        ";;;;", "\n\n\n", "set \u{fffd} 1",
    ] {
        let _ = i.eval(s); // Must not panic.
    }
}

#[test]
fn recursion_is_bounded_not_fatal() {
    let mut i = Interp::new();
    i.eval("proc f {} {f}").unwrap();
    let e = i.eval("f").unwrap_err();
    assert!(e.message().contains("too many nested calls"));
    // The interpreter is still usable afterwards.
    assert_eq!(i.eval("expr 1+1").unwrap(), "2");
}

#[test]
fn long_flat_scripts() {
    let mut i = Interp::new();
    let script: String = (0..2000).map(|k| format!("set v{k} {k}\n")).collect();
    i.eval(&script).unwrap();
    assert_eq!(i.get_var("v1999").unwrap(), "1999");
}

mod regex_props {
    use proptest::prelude::*;
    use wafe_tcl::regex::Regex;

    fn quote(s: &str) -> String {
        s.chars()
            .flat_map(|c| {
                if "\\^$.[]()*+?|".contains(c) {
                    vec!['\\', c]
                } else {
                    vec![c]
                }
            })
            .collect()
    }

    proptest! {
        /// A quoted literal always matches itself, exactly.
        #[test]
        fn quoted_literal_matches_itself(s in "[ -~]{0,20}") {
            let re = Regex::compile(&format!("^{}$", quote(&s)), false).unwrap();
            prop_assert!(re.is_match(&s));
        }

        /// A quoted literal embedded in noise is found at the right span.
        #[test]
        fn literal_found_in_noise(pre in "[a-m]{0,8}", needle in "[n-z]{1,8}", post in "[a-m]{0,8}") {
            let hay = format!("{pre}{needle}{post}");
            let re = Regex::compile(&quote(&needle), false).unwrap();
            let m = re.find(&hay).expect("must match");
            let (lo, hi) = m.spans[0].unwrap();
            prop_assert_eq!(hi - lo, needle.chars().count());
            let got: String = hay.chars().skip(lo).take(hi - lo).collect();
            prop_assert_eq!(got, needle);
        }

        /// Compiling arbitrary pattern text never panics.
        #[test]
        fn compile_never_panics(pattern in ".{0,24}") {
            let _ = Regex::compile(&pattern, false);
        }

        /// Matching never panics, whatever the compiled pattern and text.
        #[test]
        fn find_never_panics(pattern in "[a-c.*+?()|\\[\\]^$]{0,10}", text in "[a-c]{0,12}") {
            if let Ok(re) = Regex::compile(&pattern, false) {
                let _ = re.find(&text);
            }
        }

        /// `x*` matches every string of x's entirely.
        #[test]
        fn star_matches_runs(n in 0usize..20) {
            let s = "x".repeat(n);
            let re = Regex::compile("^x*$", false).unwrap();
            prop_assert!(re.is_match(&s));
        }

        /// regexp agrees with string match for prefix patterns.
        #[test]
        fn agrees_with_glob_prefix(s in "[a-z]{1,10}", t in "[a-z]{1,10}") {
            let mut i = wafe_tcl::Interp::new();
            let glob = i
                .invoke(&["string".into(), "match".into(), format!("{s}*"), t.clone()])
                .unwrap();
            let re = i
                .invoke(&["regexp".into(), format!("^{s}"), t.clone()])
                .unwrap();
            prop_assert_eq!(glob, re);
        }
    }
}
