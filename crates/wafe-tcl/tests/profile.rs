//! The `interp profile` profiler surface: per-proc call counts with an
//! inclusive/exclusive time split, and per-opcode hit counters from
//! the bytecode VM — all driven through Tcl, the way an operator would.

use wafe_tcl::Interp;

fn run(i: &mut Interp, script: &str) -> String {
    i.eval(script).unwrap().to_string()
}

#[test]
fn profile_counts_proc_calls_and_opcode_hits() {
    let mut i = Interp::new();
    run(&mut i, "proc leaf {x} {expr {$x + 1}}");
    run(
        &mut i,
        "proc outer {n} {set s 0; for {set k 0} {$k < $n} {incr k} {set s [leaf $s]}; set s}",
    );
    // on/off report the previous state, so toggles compose in scripts.
    assert_eq!(run(&mut i, "interp profile on"), "0");
    assert_eq!(run(&mut i, "outer 10"), "10");
    assert_eq!(run(&mut i, "interp profile off"), "1");

    let report = run(&mut i, "interp profile report");
    assert!(report.contains("proc outer calls 1 "), "{report}");
    assert!(report.contains("proc leaf calls 10 "), "{report}");
    // The VM loop ran while enabled, so opcode counters are non-zero.
    assert!(report.lines().any(|l| l.starts_with("op ")), "{report}");

    // leaf calls no procs: inclusive == exclusive. outer's exclusive
    // time excludes the ten leaf calls it contains.
    for line in report.lines() {
        let w: Vec<&str> = line.split_whitespace().collect();
        if w[0] == "proc" {
            let incl: u64 = w[5].parse().unwrap();
            let excl: u64 = w[7].parse().unwrap();
            assert!(incl >= excl, "{line}");
            if w[1] == "leaf" {
                assert_eq!(incl, excl, "{line}");
            }
        }
    }

    // Nothing recorded while off; reset wipes what was.
    run(&mut i, "outer 3");
    assert!(run(&mut i, "interp profile report").contains("calls 10 "));
    run(&mut i, "interp profile reset");
    assert_eq!(run(&mut i, "interp profile report"), "");
}

#[test]
fn profile_is_off_by_default_and_records_nothing() {
    let mut i = Interp::new();
    run(&mut i, "proc p {} {return x}");
    run(&mut i, "p");
    assert_eq!(run(&mut i, "interp profile report"), "");
}
