//! Dual-representation `Value` behaviour observable from Tcl scripts:
//! the amortized-O(1) `lappend` guarantee and the `interp shimmerstats`
//! introspection command.

use std::collections::HashMap;

use wafe_tcl::{parse_list, reset_shimmer_stats, Interp};

fn stats(i: &mut Interp) -> HashMap<String, u64> {
    let out = i.eval("interp shimmerstats").unwrap();
    let words = parse_list(&out).unwrap();
    words
        .chunks(2)
        .map(|p| (p[0].clone(), p[1].parse().unwrap()))
        .collect()
}

/// Growing a list with `lappend` must not re-parse or re-render the
/// list per append: the sole-owner rep steal keeps the parsed vector
/// shared between the variable slot and the command, so 500 appends
/// cost O(1) list parses and renders — not O(n).
#[test]
fn lappend_is_amortized_o1() {
    let mut i = Interp::new();
    reset_shimmer_stats();
    i.eval("set l {}; for {set k 0} {$k < 500} {incr k} {lappend l $k}")
        .unwrap();
    let s = stats(&mut i);
    // One parse of the initial "{}" at most; growth itself never re-parses.
    assert!(
        s["listParses"] <= 3,
        "lappend growth re-parsed the list {} times (expected O(1))",
        s["listParses"]
    );
    // The list is never rendered to a string during growth.
    assert!(
        s["renders"] <= 3,
        "lappend growth rendered the list {} times (expected O(1))",
        s["renders"]
    );
    // At most a bounded number of copy-on-write clones (the first append
    // copies once because the compiled script's literal shares the rep).
    assert!(
        s["listCow"] <= 3,
        "lappend growth forced {} copy-on-write clones (expected O(1))",
        s["listCow"]
    );
    assert_eq!(i.eval("llength $l").unwrap(), "500");
    assert_eq!(i.eval("lindex $l 499").unwrap(), "499");
}

/// Sharing the list (`set b $l`) must fail the sole-owner check and
/// fall back to copy-on-write — the sibling keeps its old elements.
#[test]
fn lappend_shared_list_copies_on_write() {
    let mut i = Interp::new();
    i.eval("set l {a b}; set saved $l; lappend l c").unwrap();
    assert_eq!(i.eval("set saved").unwrap(), "a b");
    assert_eq!(i.eval("set l").unwrap(), "a b c");
    reset_shimmer_stats();
    i.eval("set m {x y}; set keep $m; lappend m z").unwrap();
    let s = stats(&mut i);
    assert!(s["listCow"] >= 1, "shared lappend must count a COW clone");
    assert_eq!(i.eval("set keep").unwrap(), "x y");
}

/// Self-referential append (`lappend l $l`) is the classic aliasing
/// trap for in-place mutation; the value snapshot must win.
#[test]
fn lappend_self_reference_is_safe() {
    let mut i = Interp::new();
    i.eval("set l {a b}").unwrap();
    assert_eq!(i.eval("lappend l $l").unwrap(), "a b {a b}");
    assert_eq!(i.eval("llength $l").unwrap(), "3");
}

/// Repeated numeric use of the same variable parses its text once.
#[test]
fn numeric_reuse_hits_cached_rep() {
    let mut i = Interp::new();
    i.eval("set n 7777").unwrap();
    reset_shimmer_stats();
    i.eval("for {set k 0} {$k < 100} {incr k} {expr {$n + $k}}")
        .unwrap();
    let s = stats(&mut i);
    assert!(
        s["intParses"] <= 110,
        "expected ~1 parse per distinct value, got {} int parses",
        s["intParses"]
    );
    assert!(s["repHits"] >= 100, "cached int rep was not reused");
}

/// `interp shimmerstats` reports all seven counters as a flat pair list.
#[test]
fn shimmerstats_reports_all_counters() {
    let mut i = Interp::new();
    let s = stats(&mut i);
    for key in [
        "intParses",
        "doubleParses",
        "listParses",
        "repHits",
        "renders",
        "listCow",
        "cmdInternHits",
    ] {
        assert!(s.contains_key(key), "missing counter {key}");
    }
    assert!(i.eval("interp bogus").is_err());
}
