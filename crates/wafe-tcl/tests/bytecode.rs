//! Bytecode VM parity: scripts must evaluate identically — result,
//! error message, variable state — whether the flat-instruction VM or
//! the tree-walker runs them, and `interp bcstats`/`cachestats` must
//! account the bytecode layer distinctly from the parse cache.

use std::collections::BTreeMap;

use wafe_tcl::{parse_list, Interp, Value};

/// Evaluates `script` on a VM interpreter and a tree-walking
/// interpreter, asserting identical outcomes and identical values for
/// `vars` afterwards.
fn assert_parity(script: &str, vars: &[&str]) {
    let mut vm = Interp::new();
    let mut tw = Interp::new();
    assert!(tw.set_bc_enabled(false));
    let a = vm
        .eval(script)
        .map(|v| v.to_string())
        .map_err(|e| e.message().to_string());
    let b = tw
        .eval(script)
        .map(|v| v.to_string())
        .map_err(|e| e.message().to_string());
    assert_eq!(a, b, "result diverged for script: {script}");
    for v in vars {
        let a = vm.get_var(v).map(|x| x.to_string()).ok();
        let b = tw.get_var(v).map(|x| x.to_string()).ok();
        assert_eq!(a, b, "variable {v} diverged for script: {script}");
    }
}

#[test]
fn straight_line_parity() {
    assert_parity("set a 1; set b $a; set c [set a 2]$b", &["a", "b", "c"]);
    assert_parity("set a hello; set b ${a}world", &["a", "b"]);
    assert_parity("set arr(k) 10; set b $arr(k)", &["b"]);
    assert_parity("set i k; set arr($i) 7; set b $arr($i)", &["b"]);
    assert_parity("set missing", &[]);
    assert_parity("unknown_command 1 2", &[]);
}

#[test]
fn expr_parity() {
    for s in [
        "expr {1 + 2 * 3}",
        "expr {7 / 2}",
        "expr {7 % 3}",
        "expr {-7 / 2}",
        "expr {1.5 + 2}",
        "expr {10 > 3 && 2 < 1}",
        "expr {0 || 3}",
        "expr {!0}",
        "expr {~5}",
        "expr {1 << 4 | 3}",
        "expr {2 ** 10}",
        "expr {1 ? 10 : 20}",
        "expr {\"abc\" < \"abd\"}",
        "expr {\"5\" + 1}",
        "expr {4 == 4.0}",
        "expr {1/0}",
        "expr {1.0/0}",
        "expr {int(3.7) + round(2.5)}",
        "expr {abs(-4) + max(1, 2) - min(0, 5)}",
        "expr {srand(42); int(rand()*100)}",
        "expr {1e308 * 10}",
        "expr {1e308 * 10 - 1e308 * 10}",
        "set x 4; expr {$x * $x}",
        "set x 4; expr {[set x 6] + $x}",
        "set a(i) 3; set i i; expr {$a($i) + 1}",
        "expr {nosuchfunc(1)}",
        "expr {$undefined + 1}",
    ] {
        assert_parity(s, &["x"]);
    }
}

#[test]
fn control_flow_parity() {
    for s in [
        "if {1 < 2} {set r yes} else {set r no}",
        "if {1 > 2} {set r yes} elseif {3 > 2} {set r mid} else {set r no}",
        "if 0 {set r a} {set r bare-else}",
        "set r {}; set i 0; while {$i < 5} {incr i; set r $r$i}",
        "set r {}; for {set i 0} {$i < 4} {incr i} {set r $r$i}",
        "set r {}; foreach x {1 2 3} {set r $r$x}",
        "set r {}; foreach {a b} {1 2 3} {set r $r$a-$b.}",
        "set r {}; foreach x {1 2 3 4 5} {if {$x == 3} break; set r $r$x}",
        "set r {}; foreach x {1 2 3 4 5} {if {$x == 3} continue; set r $r$x}",
        "set r {}; set i 0; while {$i < 8} {incr i; if {$i % 2} continue; \
         if {$i > 5} break; set r $r$i}",
        "set r {}; for {set i 0} {$i < 9} {incr i} {if {$i == 4} continue; \
         if {$i == 7} break; set r $r$i}",
        "set r {}; foreach x {1 2} {foreach y {a b} {if {$y == \"b\"} continue; \
         set r $r$x$y}; if {$x == 2} break}",
        "break",
        "continue",
        "while {[incr g] < 3} {}; set g",
        "foreach x {} {set never 1}",
        "set r 0; while {$r} {set never 1}",
        "if {} {set r 1}",
        "while {bogus expr} {set never 1}",
        "foreach x {bad {list} {set never 1}",
    ] {
        assert_parity(s, &["r", "i", "g", "x", "a", "b"]);
    }
}

#[test]
fn proc_and_recursion_parity() {
    assert_parity(
        "proc fib {n} {if {$n < 2} {return $n}; \
         expr {[fib [expr {$n-1}]] + [fib [expr {$n-2}]]}}; fib 15",
        &[],
    );
    assert_parity(
        "proc down {n} {while {$n > 0} {incr n -1}; return done}; down 100",
        &[],
    );
}

#[test]
fn break_inside_substitution_unwinds_cleanly() {
    // `break` fires mid-word, while operands for the outer `set` are
    // already on the VM stack; the unwinder must discard them.
    assert_parity(
        "set out {}; foreach x {1 2 3} {set out $x[if {$x > 1} break]}",
        &["out"],
    );
    assert_parity(
        "set out {}; foreach x {1 2 3} {catch {break} out}; set out",
        &["out", "x"],
    );
}

#[test]
fn string_and_list_commands_flow_through_generic_invoke() {
    assert_parity(
        "set l {}; foreach w {the quick brown fox} {lappend l [string length $w]}; \
         set s [join $l +]; expr $s",
        &["l", "s"],
    );
    assert_parity(
        "set l [list a b c]; set n [llength $l]; set e [lindex $l 1]",
        &["l", "n", "e"],
    );
}

#[test]
fn bcstats_counts_compile_then_hits() {
    let mut i = Interp::new();
    i.eval("set n 0; while {$n < 10} {incr n}").unwrap();
    let s1 = i.bc_stats();
    assert!(s1.compiles >= 1);
    assert!(s1.instructions > 30);
    i.eval("set n 0; while {$n < 10} {incr n}").unwrap();
    let s2 = i.bc_stats();
    assert_eq!(s2.compiles, s1.compiles, "second run must reuse bytecode");
    assert!(s2.hits > s1.hits);
}

#[test]
fn interp_bcstats_subcommand_verbatim() {
    let mut i = Interp::new();
    i.eval("set x 1").unwrap();
    // `set x 1` is PushConst + StoreVar; the `interp bcstats` script
    // below compiles (second compile) before its own invoke runs, and
    // its two instructions have not yet been counted at snapshot time.
    assert_eq!(
        i.eval("interp bcstats").unwrap(),
        "compiles 2 hits 0 fallbacks 0 instructions 2 enabled 1"
    );
}

#[test]
fn cachestats_separates_bytecode_from_parse_cache() {
    let mut i = Interp::new();
    i.eval("set x 1").unwrap();
    i.eval("set x 1").unwrap();
    let stats: BTreeMap<String, String> = parse_list(&i.eval("interp cachestats").unwrap())
        .unwrap()
        .chunks(2)
        .map(|kv| (kv[0].clone(), kv[1].clone()))
        .collect();
    // The second `set x 1` hits both the parse cache and the bytecode
    // cache; they are reported under distinct keys.
    assert!(stats["hits"].parse::<u64>().unwrap() >= 1, "{stats:?}");
    assert!(stats["bcHits"].parse::<u64>().unwrap() >= 1, "{stats:?}");
    assert_eq!(stats["bcFallbacks"], "0");
    assert!(stats["bcCompiles"].parse::<u64>().unwrap() >= 2);
}

#[test]
fn bcdisable_and_bcenable_round_trip() {
    let mut i = Interp::new();
    // The `interp bcdisable` script itself compiles before the switch
    // flips, so compare against the count after it ran.
    assert_eq!(i.eval("interp bcdisable").unwrap(), "1");
    let base = i.bc_stats().compiles;
    i.eval("set n 0; while {$n < 5} {incr n}").unwrap();
    assert_eq!(i.get_var("n").unwrap(), "5");
    assert_eq!(
        i.bc_stats().compiles,
        base,
        "VM must stay cold while disabled"
    );
    assert_eq!(i.eval("interp bcenable").unwrap(), "0");
    i.eval("set n 0; while {$n < 5} {incr n}").unwrap();
    assert!(i.bc_stats().compiles > base);
}

#[test]
fn bad_interp_option_lists_bc_subcommands() {
    let mut i = Interp::new();
    let e = i.eval("interp bogus").unwrap_err();
    assert!(e.message().contains("bcstats"), "{}", e.message());
}

#[test]
fn redefined_loop_command_is_honored_by_compiled_scripts() {
    let mut i = Interp::new();
    i.eval("set r {}").unwrap();
    let script = "foreach x {1 2 3} {set r $r$x}";
    assert_eq!(i.eval(script).unwrap(), "");
    assert_eq!(i.get_var("r").unwrap(), "123");
    // Shadow `foreach` with a proc: the cached bytecode was compiled
    // against the builtin and must not keep using it.
    i.eval("proc foreach {a b c} {return shadowed-$a}").unwrap();
    assert_eq!(i.eval(script).unwrap(), "shadowed-x");
}

#[test]
fn cachelimit_zero_disables_vm_with_caches() {
    let mut i = Interp::new();
    i.eval("interp cachelimit 0").unwrap();
    let base = i.bc_stats().compiles;
    i.eval("set n 0; while {$n < 5} {incr n}").unwrap();
    assert_eq!(i.get_var("n").unwrap(), "5");
    assert_eq!(
        i.bc_stats().compiles,
        base,
        "the Tcl 6.x baseline must not engage the VM"
    );
}

#[test]
fn vm_does_not_add_shimmer_parses() {
    // The VM must not parse strings the tree-walker would keep as reps:
    // run the same loop on both engines and compare int-parse counts.
    let script = "set sum 0; for {set i 0} {$i < 100} {incr i} {set sum [expr {$sum + $i}]}";
    let parses = |bc: bool| {
        let mut i = Interp::new();
        i.set_bc_enabled(bc);
        wafe_tcl::reset_shimmer_stats();
        i.eval(script).unwrap();
        wafe_tcl::shimmer_stats().int_parses
    };
    let vm = parses(true);
    let tw = parses(false);
    assert!(
        vm <= tw,
        "VM must not shimmer more than the tree-walker: vm={vm} tw={tw}"
    );
}

#[test]
fn values_keep_reps_across_vm_boundary() {
    let mut i = Interp::new();
    i.eval("set big [expr {1 << 40}]").unwrap();
    let v: Value = i.get_var("big").unwrap();
    assert_eq!(v.as_int(), Some(1 << 40), "int rep must survive the VM");
}
