//! Property test: generated scripts from the bytecode-compilable subset
//! (`set`/`incr`/`expr`/`if`/`while`/`foreach`/`break`/`continue` over
//! small integers) evaluate identically under the VM and the
//! tree-walker — same result value or error message, same variable
//! state afterwards.

use wafe_prop::{cases, Rng};
use wafe_tcl::Interp;

const VARS: [&str; 4] = ["v0", "v1", "v2", "v3"];

/// A random integer-valued expression over the variable pool. Division
/// and modulo are included: a zero divisor must error identically on
/// both engines.
fn gen_expr(rng: &mut Rng, depth: usize) -> String {
    if depth == 0 || rng.below(3) == 0 {
        return if rng.chance() {
            format!("${}", rng.pick(&VARS))
        } else {
            rng.range_i64(-20, 100).to_string()
        };
    }
    let a = gen_expr(rng, depth - 1);
    let b = gen_expr(rng, depth - 1);
    match rng.below(12) {
        0 => format!("({a} + {b})"),
        1 => format!("({a} - {b})"),
        2 => format!("({a} * {b})"),
        3 => format!("({a} / {b})"),
        4 => format!("({a} % {b})"),
        5 => format!("({a} < {b})"),
        6 => format!("({a} == {b})"),
        7 => format!("({a} && {b})"),
        8 => format!("({a} || {b})"),
        9 => format!("(-{a})"),
        10 => format!("({a} ? {b} : -1)"),
        _ => format!("(abs({a}) + min({a}, {b}))"),
    }
}

/// One statement; `loops` limits nesting and `in_loop` gates the bare
/// break/continue forms (outside a loop they abort the script on both
/// engines, which is also fine, but mostly we want running bodies).
fn gen_stmt(rng: &mut Rng, loops: usize, in_loop: bool, uniq: &mut u32) -> String {
    let v = rng.pick(&VARS);
    match rng.below(if loops > 0 { 8 } else { 5 }) {
        0 => format!("set {v} {}", rng.range_i64(-50, 50)),
        1 => format!("set {v} [expr {{{}}}]", gen_expr(rng, 2)),
        2 => format!("incr {v} {}", rng.range_i64(-3, 4)),
        3 => {
            let cond = gen_expr(rng, 1);
            let then = gen_stmt(rng, loops.saturating_sub(1), in_loop, uniq);
            if rng.chance() {
                let els = gen_stmt(rng, loops.saturating_sub(1), in_loop, uniq);
                format!("if {{{cond}}} {{{then}}} else {{{els}}}")
            } else {
                format!("if {{{cond}}} {{{then}}}")
            }
        }
        4 => {
            if in_loop && rng.below(4) == 0 {
                if rng.chance() {
                    "break".into()
                } else {
                    "continue".into()
                }
            } else {
                format!("set {v} done{}", rng.below(10))
            }
        }
        5 => {
            // A guaranteed-terminating while: a dedicated guard counter,
            // incremented first, that the body never reassigns.
            *uniq += 1;
            let g = format!("g{uniq}");
            let n = rng.range(1, 6);
            let body = gen_stmt(rng, loops - 1, true, uniq);
            format!("set {g} 0; while {{${g} < {n}}} {{incr {g}; {body}}}")
        }
        6 => {
            let items: Vec<String> = (0..rng.range(0, 5))
                .map(|_| rng.range_i64(0, 30).to_string())
                .collect();
            let body = gen_stmt(rng, loops - 1, true, uniq);
            format!("foreach {v} {{{}}} {{{body}}}", items.join(" "))
        }
        _ => {
            let cond = gen_expr(rng, 1);
            let body = gen_stmt(rng, loops - 1, in_loop, uniq);
            format!(
                "if {{{cond}}} {{{body}}} elseif {{{}}} {{{}}} else {{set {v} e}}",
                gen_expr(rng, 1),
                gen_stmt(rng, loops.saturating_sub(1), in_loop, uniq)
            )
        }
    }
}

fn gen_script(rng: &mut Rng) -> String {
    let mut uniq = 0;
    let mut stmts: Vec<String> = VARS
        .iter()
        .map(|v| format!("set {v} {}", rng.range_i64(0, 10)))
        .collect();
    for _ in 0..rng.range(1, 8) {
        stmts.push(gen_stmt(rng, 2, false, &mut uniq));
    }
    stmts.join("\n")
}

#[test]
fn generated_scripts_agree_with_tree_walker() {
    let vm_compiles = std::cell::Cell::new(0u64);
    cases(400, |rng| {
        let script = gen_script(rng);
        let mut vm = Interp::new();
        let mut tw = Interp::new();
        tw.set_bc_enabled(false);
        let a = vm
            .eval(&script)
            .map(|v| v.to_string())
            .map_err(|e| e.message().to_string());
        let b = tw
            .eval(&script)
            .map(|v| v.to_string())
            .map_err(|e| e.message().to_string());
        assert_eq!(a, b, "result diverged for script:\n{script}");
        for v in VARS {
            let a = vm.get_var(v).map(|x| x.to_string()).ok();
            let b = tw.get_var(v).map(|x| x.to_string()).ok();
            assert_eq!(a, b, "variable {v} diverged for script:\n{script}");
        }
        vm_compiles.set(vm_compiles.get() + vm.bc_stats().compiles);
    });
    // Sanity: the generator must actually exercise the VM, not fall
    // back everywhere.
    assert!(
        vm_compiles.get() >= 400,
        "expected the VM to compile on nearly every case, got {}",
        vm_compiles.get()
    );
}
