//! Behaviour of the parse-once script cache: hit/miss accounting through
//! the `interp` introspection command, LRU eviction under a bound, proc
//! redefinition, and interaction with `uplevel`/`catch`.

use wafe_tcl::{parse_list, Interp};

/// Reads `interp cachestats` into (key, value) pairs.
fn stats(i: &mut Interp) -> Vec<(String, i64)> {
    let raw = i.eval("interp cachestats").unwrap();
    let words = parse_list(&raw).unwrap();
    words
        .chunks(2)
        .map(|kv| (kv[0].clone(), kv[1].parse().unwrap()))
        .collect()
}

fn stat(i: &mut Interp, key: &str) -> i64 {
    stats(i)
        .into_iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("no stat {key}"))
        .1
}

#[test]
fn repeated_eval_hits_the_cache() {
    let mut i = Interp::new();
    i.eval("interp cacheclear").unwrap();
    let base_hits = stat(&mut i, "hits");
    let base_misses = stat(&mut i, "misses");

    // First evaluation of a fresh script text is a miss, later ones hits.
    i.eval("set a 1; set b 2").unwrap();
    let miss_delta = stat(&mut i, "misses") - base_misses;
    assert!(miss_delta >= 1, "first eval must miss");
    let after_first_hits = stat(&mut i, "hits");
    for _ in 0..5 {
        i.eval("set a 1; set b 2").unwrap();
    }
    assert!(
        stat(&mut i, "hits") >= after_first_hits + 5,
        "verbatim re-eval must hit the script cache"
    );
    assert!(stat(&mut i, "hits") > base_hits);
}

#[test]
fn while_loop_caches_body_and_test() {
    let mut i = Interp::new();
    i.eval("interp cacheclear").unwrap();
    i.eval("set n 0; while {$n < 100} {incr n}").unwrap();
    assert_eq!(i.get_var("n").unwrap(), "100");
    // The loop body is compiled once, not once per iteration: the whole
    // run needs only a handful of cache entries.
    let entries = stat(&mut i, "entries");
    assert!(
        (1..20).contains(&entries),
        "expected a few cached scripts, got {entries}"
    );
}

#[test]
fn cachestats_reports_expr_side_too() {
    let mut i = Interp::new();
    i.eval("interp cacheclear").unwrap();
    for _ in 0..4 {
        i.eval("expr {3 * 7}").unwrap();
    }
    assert!(stat(&mut i, "exprHits") + stat(&mut i, "exprMisses") > 0);
}

#[test]
fn cachelimit_get_and_set() {
    let mut i = Interp::new();
    let default_limit = i.eval("interp cachelimit").unwrap();
    assert_eq!(
        default_limit,
        wafe_tcl::interp::DEFAULT_CACHE_LIMIT.to_string()
    );
    i.eval("interp cachelimit 3").unwrap();
    assert_eq!(i.eval("interp cachelimit").unwrap(), "3");
    assert_eq!(stat(&mut i, "limit"), 3);
}

#[test]
fn lru_eviction_respects_bound() {
    let mut i = Interp::new();
    i.eval("interp cachelimit 4").unwrap();
    i.eval("interp cacheclear").unwrap();
    // Evaluate many distinct script texts; the cache must stay bounded
    // and must evict.
    for k in 0..20 {
        i.eval(&format!("set v{k} {k}")).unwrap();
    }
    assert!(stat(&mut i, "entries") <= 4, "cache exceeded its bound");
    assert!(stat(&mut i, "evictions") > 0, "no evictions recorded");
    // The interpreter still computes correctly after heavy eviction.
    assert_eq!(i.eval("expr {$v0 + $v19}").unwrap(), "19");
}

#[test]
fn lru_keeps_the_hot_entry() {
    let mut i = Interp::new();
    i.eval("interp cachelimit 2").unwrap();
    i.eval("interp cacheclear").unwrap();
    i.eval("set hot 1").unwrap();
    for k in 0..10 {
        // Touch the hot script between cold ones: it must stay cached.
        i.eval("set hot 1").unwrap();
        i.eval(&format!("set cold{k} {k}")).unwrap();
    }
    let hits_before = stat(&mut i, "hits");
    i.eval("set hot 1").unwrap();
    assert_eq!(
        stat(&mut i, "hits"),
        hits_before + 1,
        "recently-used script was evicted"
    );
}

#[test]
fn cachelimit_zero_disables_caching() {
    let mut i = Interp::new();
    i.eval("interp cachelimit 0").unwrap();
    i.eval("interp cacheclear").unwrap();
    for _ in 0..5 {
        assert_eq!(i.eval("expr 1+1").unwrap(), "2");
    }
    assert_eq!(stat(&mut i, "entries"), 0);
    // Re-enabling restores caching.
    i.eval("interp cachelimit 16").unwrap();
    i.eval("set x 9").unwrap();
    i.eval("set x 9").unwrap();
    assert!(stat(&mut i, "hits") > 0);
}

#[test]
fn proc_redefinition_replaces_compiled_body() {
    let mut i = Interp::new();
    i.eval("proc greet {} {return hello}").unwrap();
    // Warm the proc body through several calls.
    for _ in 0..3 {
        assert_eq!(i.eval("greet").unwrap(), "hello");
    }
    // Redefining must invalidate the previously compiled body.
    i.eval("proc greet {} {return goodbye}").unwrap();
    assert_eq!(i.eval("greet").unwrap(), "goodbye");
    // And again, with a different arity.
    i.eval("proc greet {who} {return \"hi $who\"}").unwrap();
    assert_eq!(i.eval("greet world").unwrap(), "hi world");
}

#[test]
fn cached_proc_body_sees_current_variables() {
    let mut i = Interp::new();
    i.eval("proc read_g {} {global g; return $g}").unwrap();
    i.eval("set g first").unwrap();
    assert_eq!(i.eval("read_g").unwrap(), "first");
    // The compiled body must re-substitute on every call.
    i.eval("set g second").unwrap();
    assert_eq!(i.eval("read_g").unwrap(), "second");
}

#[test]
fn uplevel_through_cached_bodies() {
    let mut i = Interp::new();
    i.eval("proc setter {} {uplevel {set from_below 42}}")
        .unwrap();
    i.eval("proc caller {} {setter; return $from_below}")
        .unwrap();
    // Run twice so the second pass executes fully from cache.
    assert_eq!(i.eval("caller").unwrap(), "42");
    assert_eq!(i.eval("caller").unwrap(), "42");
    // uplevel #0 from a cached body writes the true global frame.
    i.eval("proc gset {} {uplevel #0 {set topvar 7}}").unwrap();
    i.eval("gset").unwrap();
    i.eval("gset").unwrap();
    assert_eq!(i.get_var("topvar").unwrap(), "7");
}

#[test]
fn catch_inside_cached_loop_body() {
    let mut i = Interp::new();
    let script = r#"
        set errs 0
        set n 0
        while {$n < 10} {
            incr n
            if {[catch {error boom} msg]} {
                incr errs
            }
        }
        list $n $errs $msg
    "#;
    // Same text twice: second run is fully cache-served and must agree.
    let first = i.eval(script).unwrap();
    let second = i.eval(script).unwrap();
    assert_eq!(first, "10 10 boom");
    assert_eq!(second, first);
}

#[test]
fn break_and_continue_from_cached_bodies() {
    let mut i = Interp::new();
    let script = r#"
        set sum 0
        for {set k 0} {$k < 20} {incr k} {
            if {$k == 5} continue
            if {$k == 9} break
            set sum [expr {$sum + $k}]
        }
        set sum
    "#;
    // 0+1+2+3+4+6+7+8 = 31
    assert_eq!(i.eval(script).unwrap(), "31");
    assert_eq!(i.eval(script).unwrap(), "31");
}

#[test]
fn cacheclear_resets_entries_but_keeps_correctness() {
    let mut i = Interp::new();
    i.eval("set y 5").unwrap();
    assert!(stat(&mut i, "entries") > 0);
    i.eval("interp cacheclear").unwrap();
    // `interp cacheclear` itself may repopulate one entry at most.
    assert!(stat(&mut i, "entries") <= 2);
    assert_eq!(i.eval("expr {$y * 2}").unwrap(), "10");
}

#[test]
fn bad_interp_subcommand_is_an_error() {
    let mut i = Interp::new();
    let e = i.eval("interp bogus").unwrap_err();
    assert!(e.message().contains("bad option"));
    let e = i.eval("interp cachelimit nope").unwrap_err();
    assert!(e.message().contains("expected integer"));
}
