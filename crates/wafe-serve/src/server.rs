//! The socket transport. Two I/O models share the admission, scheduling
//! and shed/drain/park semantics:
//!
//! * [`IoModel::Poll`] (default) — the readiness-driven event loop: one
//!   accept thread polling every listener, plus `workers` worker
//!   threads each running an [`EventLoop`] over nonblocking sockets.
//!   Thread count is fixed at `workers + 1` no matter how many
//!   connections are live, which is what lets wafe-serve hold 10k
//!   concurrent clients.
//! * [`IoModel::Threads`] — the original thread-per-connection model
//!   (one reader and one writer thread per accepted socket), kept as
//!   the comparison baseline for the E24 bench.
//!
//! Connections are pinned: in the poll model a session's slot picks its
//! worker (`slot % workers`), which is also its registry shard, so a
//! worker only ever touches its own shard's lock. Teardown is a single
//! one-way flag: [`Registry::begin_drain`] (set by `Server::drain` or a
//! client's `%serve drain`). The acceptor observes it and stops
//! accepting; schedulers observe it, close every mailbox, flush what
//! was queued and release the sessions; released sinks close the
//! connections.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use wafe_core::Flavor;
use wafe_ipc::{LineCodec, SysPoller, DEFAULT_MAX_LINE};

use crate::event_loop::{AcceptLoop, Acceptor, ConnAssign, EventLoop, TcpAcceptor, UnixAcceptor};
use crate::mailbox::{Mailbox, SessionSink};
use crate::registry::{Limits, Registry, SessionId};
use crate::scheduler::Scheduler;

/// Which transport drives the sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoModel {
    /// Readiness-driven event loop (`poll(2)`), fixed thread count.
    Poll,
    /// Thread-per-connection baseline.
    Threads,
}

/// How a [`Server`] is stood up.
pub struct ServerConfig {
    /// TCP listen address (`None` = no TCP listener). `:0` picks a free
    /// port, reported by [`Server::local_addr`].
    pub tcp: Option<String>,
    /// Unix-socket path (`None` = no Unix listener). A stale socket
    /// file at the path is replaced.
    pub unix: Option<PathBuf>,
    /// Widget-set flavour of every session.
    pub flavor: Flavor,
    /// Scheduler threads in the bounded pool (== registry shards in the
    /// poll model).
    pub workers: usize,
    /// Pre-enable telemetry on every session.
    pub telemetry: bool,
    /// Admission and fairness limits.
    pub limits: Limits,
    /// Log passthrough lines (non-command output of the sessions) to
    /// the server's stdout, tagged `[slot:generation]`.
    pub log_passthrough: bool,
    /// Persist parked session snapshots here (`waferd --park-dir`).
    /// Existing snapshots are loaded at startup (surviving a restart),
    /// and a graceful drain parks every live session instead of
    /// dropping it.
    pub park_dir: Option<PathBuf>,
    /// Transport model ([`IoModel::Poll`] unless benchmarking the
    /// baseline).
    pub io: IoModel,
    /// How long the accept loop sits out after an accept failure
    /// (`EMFILE`/`ENFILE` back-off tick).
    pub accept_backoff_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
            flavor: Flavor::Athena,
            workers: 4,
            telemetry: false,
            limits: Limits::default(),
            log_passthrough: false,
            park_dir: None,
            io: IoModel::Poll,
            accept_backoff_ms: 50,
        }
    }
}

/// A session hand-off from an acceptor to a worker in the
/// thread-per-connection model. Everything in it is `Send`; the `!Send`
/// session itself is built on the worker thread.
struct Assign {
    id: SessionId,
    mailbox: Arc<Mailbox>,
    sink: SessionSink,
}

/// A running multi-session server.
pub struct Server {
    registry: Arc<Registry>,
    local_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    acceptors: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listeners and spawns the pool. Returns as soon as the
    /// server is accepting.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        match config.io {
            IoModel::Poll => Server::start_poll(config),
            IoModel::Threads => Server::start_threads(config),
        }
    }

    /// The event-loop transport: one accept thread, `workers` event
    /// loops, one registry shard per worker.
    fn start_poll(config: ServerConfig) -> std::io::Result<Server> {
        let nworkers = config.workers.max(1);
        let registry = Arc::new(Registry::with_shards(config.limits.clone(), nworkers));
        if let Some(dir) = &config.park_dir {
            registry
                .set_park_dir(dir.clone())
                .map_err(std::io::Error::other)?;
        }
        let mut txs: Vec<Sender<ConnAssign>> = Vec::new();
        let mut workers = Vec::new();
        for w in 0..nworkers {
            let (tx, rx) = mpsc::channel();
            txs.push(tx);
            let registry = registry.clone();
            let (flavor, telemetry, log) =
                (config.flavor, config.telemetry, config.log_passthrough);
            workers.push(
                thread::Builder::new()
                    .name(format!("wafe-serve-worker-{w}"))
                    .spawn(move || worker_event_loop(registry, rx, w, flavor, telemetry, log))?,
            );
        }
        let mut acceptors: Vec<Box<dyn Acceptor>> = Vec::new();
        let mut local_addr = None;
        if let Some(addr) = &config.tcp {
            let listener = TcpListener::bind(addr.as_str())?;
            listener.set_nonblocking(true)?;
            local_addr = Some(listener.local_addr()?);
            acceptors.push(Box::new(TcpAcceptor(listener)));
        }
        let mut unix_path = None;
        if let Some(path) = &config.unix {
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            unix_path = Some(path.clone());
            acceptors.push(Box::new(UnixAcceptor::new(listener)));
        }
        let mut accept_threads = Vec::new();
        if !acceptors.is_empty() {
            let mut accept_loop =
                AcceptLoop::new(registry.clone(), acceptors, txs, Box::new(SysPoller::new()));
            let registry2 = registry.clone();
            let backoff = config.accept_backoff_ms.max(1) as i32;
            accept_threads.push(
                thread::Builder::new()
                    .name("wafe-serve-accept".into())
                    .spawn(move || {
                        while !registry2.draining() {
                            let timeout = if accept_loop.backing_off() {
                                backoff
                            } else {
                                10
                            };
                            accept_loop.poll_once(timeout);
                        }
                        // Dropping the loop drops the txs: workers see
                        // the disconnect and exit once drained.
                    })?,
            );
        }
        Ok(Server {
            registry,
            local_addr,
            unix_path,
            acceptors: accept_threads,
            workers,
        })
    }

    /// The thread-per-connection baseline transport.
    fn start_threads(config: ServerConfig) -> std::io::Result<Server> {
        let registry = Arc::new(Registry::new(config.limits.clone()));
        registry.set_poller_backend("threads");
        if let Some(dir) = &config.park_dir {
            registry
                .set_park_dir(dir.clone())
                .map_err(std::io::Error::other)?;
        }
        let mut txs: Vec<Sender<Assign>> = Vec::new();
        let mut workers = Vec::new();
        for w in 0..config.workers.max(1) {
            let (tx, rx) = mpsc::channel();
            txs.push(tx);
            let registry = registry.clone();
            let (flavor, telemetry, log) =
                (config.flavor, config.telemetry, config.log_passthrough);
            workers.push(
                thread::Builder::new()
                    .name(format!("wafe-serve-worker-{w}"))
                    .spawn(move || worker_loop(registry, rx, flavor, telemetry, log))?,
            );
        }
        let next = Arc::new(AtomicUsize::new(0));
        let mut acceptors = Vec::new();
        let mut local_addr = None;
        if let Some(addr) = &config.tcp {
            let listener = TcpListener::bind(addr.as_str())?;
            listener.set_nonblocking(true)?;
            local_addr = Some(listener.local_addr()?);
            let (registry, txs, next) = (registry.clone(), txs.clone(), next.clone());
            acceptors.push(
                thread::Builder::new()
                    .name("wafe-serve-accept-tcp".into())
                    .spawn(move || tcp_accept_loop(listener, registry, txs, next))?,
            );
        }
        let mut unix_path = None;
        if let Some(path) = &config.unix {
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            unix_path = Some(path.clone());
            let (registry, txs, next) = (registry.clone(), txs.clone(), next.clone());
            acceptors.push(
                thread::Builder::new()
                    .name("wafe-serve-accept-unix".into())
                    .spawn(move || unix_accept_loop(listener, registry, txs, next))?,
            );
        }
        Ok(Server {
            registry,
            local_addr,
            unix_path,
            acceptors,
            workers,
        })
    }

    /// The shared registry (`serve status` data, drain flag, limits).
    pub fn registry(&self) -> Arc<Registry> {
        self.registry.clone()
    }

    /// The bound TCP address, when a TCP listener was configured.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Blocks until the server has drained (a client's `%serve drain`,
    /// or [`drain`](Server::drain) from another thread via the
    /// registry) and every thread has exited.
    pub fn wait(mut self) {
        for h in self.acceptors.drain(..) {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Starts the graceful drain and blocks until it completes: stop
    /// accepting, flush every mailbox, release every session, exit.
    pub fn drain(self) {
        self.registry.begin_drain();
        self.wait();
    }
}

/// One poll-model worker: attach assignments, poll the sockets, sweep
/// the mailboxes, run the scheduler, flush the replies — forever, until
/// the drain empties the loop.
fn worker_event_loop(
    registry: Arc<Registry>,
    rx: Receiver<ConnAssign>,
    shard: usize,
    flavor: Flavor,
    telemetry: bool,
    log_passthrough: bool,
) {
    let sched = Scheduler::new(registry, flavor, telemetry);
    let mut el = EventLoop::new(sched, shard, Box::new(SysPoller::new()));
    let mut disconnected = false;
    let mut last = Instant::now();
    loop {
        loop {
            match rx.try_recv() {
                Ok(a) => el.attach(a),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        // With work queued, check readiness without blocking; idle,
        // sleep a tick in poll.
        let timeout = if el.has_pending_work() { 0 } else { 1 };
        el.poll_io(timeout);
        el.run_turn();
        el.flush_and_reap();
        for (id, line) in el.take_passthrough() {
            if log_passthrough {
                println!("[{id}] {line}");
            }
        }
        // Virtual time follows the wall here; tests drive advance()
        // directly instead.
        let elapsed = last.elapsed().as_millis() as u64;
        if elapsed > 0 {
            el.advance(elapsed);
            last = Instant::now();
        }
        if disconnected && el.is_drained() {
            return;
        }
    }
}

fn worker_loop(
    registry: Arc<Registry>,
    rx: Receiver<Assign>,
    flavor: Flavor,
    telemetry: bool,
    log_passthrough: bool,
) {
    let mut sched = Scheduler::new(registry, flavor, telemetry);
    let mut disconnected = false;
    let mut last = Instant::now();
    loop {
        loop {
            match rx.try_recv() {
                Ok(a) => sched.attach(a.id, a.mailbox, a.sink),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        let dispatched = sched.run_turn();
        for (id, line) in sched.take_passthrough() {
            if log_passthrough {
                println!("[{id}] {line}");
            }
        }
        // Virtual time follows the wall here; tests drive advance()
        // directly instead.
        let elapsed = last.elapsed().as_millis() as u64;
        if elapsed > 0 {
            sched.advance(elapsed);
            last = Instant::now();
        }
        if disconnected && sched.is_drained() {
            return;
        }
        if dispatched == 0 {
            thread::sleep(Duration::from_millis(1));
        }
    }
}

fn tcp_accept_loop(
    listener: TcpListener,
    registry: Arc<Registry>,
    txs: Vec<Sender<Assign>>,
    next: Arc<AtomicUsize>,
) {
    while !registry.draining() {
        match listener.accept() {
            Ok((stream, peer)) => {
                let _ = stream.set_nonblocking(false);
                let reader = match stream.try_clone() {
                    Ok(r) => r,
                    Err(_) => continue,
                };
                let closer = match stream.try_clone() {
                    Ok(c) => c,
                    Err(_) => continue,
                };
                launch_session(
                    &registry,
                    &txs,
                    &next,
                    reader,
                    stream,
                    move || {
                        let _ = closer.shutdown(Shutdown::Both);
                    },
                    format!("tcp/{peer}"),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => {
                // Fd exhaustion or a transient failure: count and back
                // off, exactly like the poll model's accept loop.
                registry.note_accept_error();
                thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn unix_accept_loop(
    listener: UnixListener,
    registry: Arc<Registry>,
    txs: Vec<Sender<Assign>>,
    next: Arc<AtomicUsize>,
) {
    let mut serial = 0u64;
    while !registry.draining() {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                serial += 1;
                let reader = match stream.try_clone() {
                    Ok(r) => r,
                    Err(_) => continue,
                };
                let closer = match stream.try_clone() {
                    Ok(c) => c,
                    Err(_) => continue,
                };
                launch_session(
                    &registry,
                    &txs,
                    &next,
                    reader,
                    stream,
                    move || {
                        let _ = closer.shutdown(Shutdown::Both);
                    },
                    format!("unix/{serial}"),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => {
                registry.note_accept_error();
                thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Admission plus the two transport threads of one connection. The
/// streams were accepted non-blocking (inherited); switch them back so
/// the reader blocks in `read` and the writer in `write`.
fn launch_session<R, W>(
    registry: &Arc<Registry>,
    txs: &[Sender<Assign>],
    next: &Arc<AtomicUsize>,
    reader: R,
    mut writer: W,
    shutdown: impl FnOnce() + Send + 'static,
    peer: String,
) where
    R: Read + Send + 'static,
    W: Write + Send + 'static,
{
    let id = match registry.admit(&peer, 0) {
        Ok(id) => id,
        Err(reason) => {
            // Explicit load shedding, never a silent close.
            let _ = writer.write_all(&LineCodec::encode(&format!("!shed {reason}")));
            let _ = writer.flush();
            shutdown();
            return;
        }
    };
    let mailbox = Mailbox::new(registry.limits().queue_depth);
    let (out_tx, out_rx) = mpsc::channel::<String>();
    let worker = next.fetch_add(1, Ordering::Relaxed) % txs.len().max(1);
    if txs[worker]
        .send(Assign {
            id,
            mailbox: mailbox.clone(),
            sink: SessionSink::Channel(out_tx),
        })
        .is_err()
    {
        // Drain raced the accept; the worker is gone.
        registry.release(id);
        shutdown();
        return;
    }
    let _ = thread::Builder::new()
        .name(format!("wafe-serve-write-{id}"))
        .spawn(move || {
            while let Ok(line) = out_rx.recv() {
                if writer.write_all(&LineCodec::encode(&line)).is_err() || writer.flush().is_err() {
                    break;
                }
            }
            // The sink closed (session released) or the client broke:
            // shut the socket down, which also unblocks the reader.
            shutdown();
        });
    let mb = mailbox;
    let _ = thread::Builder::new()
        .name(format!("wafe-serve-read-{id}"))
        .spawn(move || {
            let mut codec = LineCodec::new(DEFAULT_MAX_LINE);
            let mut reader = reader;
            let mut buf = [0u8; 8192];
            'outer: loop {
                match reader.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => {
                        for line in codec.push(&buf[..n]) {
                            // A refused push is either queue-full (the
                            // scheduler counts it and replies `!shed
                            // queue-full`) or a closed mailbox.
                            let _ = mb.push(line);
                            if mb.is_closed() {
                                break 'outer;
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        // Inherited non-blocking state from the listener.
                        thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
            mb.close();
        });
}
