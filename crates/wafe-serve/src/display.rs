//! The remote display channel: `display` control surface plus the
//! per-session frame pump the scheduler drives.
//!
//! A client opts in with `%display attach`; from then on every
//! scheduler sweep flushes the session's display and — when damage is
//! pending and the connection's frame slot is free — ships one
//! `!display frame <hex>` notice carrying an encoded
//! [`wafe_display::Frame`]. Input comes back as `%display event <hex>`
//! lines decoded into the display's synthetic injection API, so the
//! remote user's clicks and keys run the same translation machinery as
//! the paper's local ones.
//!
//! Backpressure is *coalesce-to-latest*: when the outbound frame slot
//! is occupied, no frame is built — the damage keeps accumulating in
//! the display's pending-frame tracker and collapses into one bigger
//! (at worst full-screen) frame when the slot frees. A slow client
//! falls behind in time, never in content, and memory stays bounded.

use std::cell::Cell;
use std::rc::Rc;

use wafe_core::WafeSession;
use wafe_display::{from_hex, modifiers_from_mask, to_hex, Frame, InputEvent};
use wafe_ipc::fault::truncate_line;
use wafe_ipc::{FaultAction, FaultPlan};

use crate::mailbox::SessionSink;

/// Per-connection display-channel state, shared between the control
/// handler (which runs inside the interpreter) and the scheduler
/// (which pumps frames after the quantum). Survives a park/restore
/// engine swap the same way [`crate::SessionCtl`] does.
#[derive(Default)]
pub struct DisplayCtl {
    attached: Cell<bool>,
}

impl DisplayCtl {
    /// Whether a display client is attached to this connection.
    pub fn attached(&self) -> bool {
        self.attached.get()
    }
}

/// Installs the `display` control handler (registered as a command by
/// wafe-core) into one session's dispatch table.
pub fn install_display_control(ctl: &Rc<DisplayCtl>, session: &mut WafeSession) {
    let c = ctl.clone();
    let app = session.app.clone();
    let tel = session.telemetry.clone();
    session.controls.borrow_mut().insert(
        "display".into(),
        Box::new(move |argv| display_control(&c, &app, &tel, argv)),
    );
}

fn display_control(
    ctl: &Rc<DisplayCtl>,
    app: &Rc<std::cell::RefCell<wafe_xt::XtApp>>,
    tel: &wafe_trace::Telemetry,
    argv: &[String],
) -> Result<String, String> {
    const USAGE: &str = "display attach|detach|frame|status|event hexbytes";
    let mut app = app.borrow_mut();
    let d = app
        .displays
        .get_mut(0)
        .ok_or_else(|| "no display open".to_string())?;
    match argv.get(1).map(String::as_str) {
        Some("attach") if argv.len() == 2 => {
            // Attach turns compositing on and schedules a full first
            // frame; the scheduler ships it on the next sweep.
            d.set_compositing(true);
            ctl.attached.set(true);
            tel.count("display.attach");
            Ok(String::new())
        }
        Some("detach") if argv.len() == 2 => {
            d.set_compositing(false);
            ctl.attached.set(false);
            tel.count("display.detach");
            Ok(String::new())
        }
        Some("frame") if argv.len() == 2 => {
            // Client-requested resync: the next shipped frame covers
            // the whole screen (the recovery path after it rejected a
            // corrupt frame).
            d.request_full_frame();
            tel.count("display.resync");
            Ok(String::new())
        }
        Some("status") if argv.len() == 2 => Ok(wafe_tcl::list_join(&[
            "attached".into(),
            (ctl.attached() as u8).to_string(),
            "seq".into(),
            d.frame_seq().to_string(),
            "pending".into(),
            (d.has_pending_frame() as u8).to_string(),
        ])),
        Some("event") if argv.len() == 3 => {
            let ev = from_hex(&argv[2])
                .and_then(|bytes| InputEvent::decode(&bytes))
                .map_err(|e| {
                    // Loud rejection: counted, and the command errors
                    // (which the engine tallies as a protocol error) —
                    // never a silent best-effort injection.
                    tel.count("display.event.rejected");
                    format!("display event rejected: {e}")
                })?;
            tel.count("display.event");
            match ev {
                InputEvent::Key { name, modifiers } => {
                    d.inject_key_named(&name, modifiers_from_mask(modifiers));
                }
                InputEvent::Text { text } => d.inject_key_text(&text),
                InputEvent::Button {
                    button,
                    press,
                    x,
                    y,
                } => {
                    d.inject_pointer_move(x, y);
                    d.inject_button(button, press);
                }
                InputEvent::Motion { x, y } => d.inject_pointer_move(x, y),
                InputEvent::Resize { .. } => {
                    // The simulated screen is fixed-size; a viewport
                    // change just asks for a repaint at full coverage.
                    d.request_full_frame();
                }
            }
            Ok(String::new())
        }
        _ => Err(format!("wrong # args: should be \"{USAGE}\"")),
    }
}

/// Ships at most one frame for a session: flush the display, and if
/// damage is pending and the sink's frame slot is free, encode and
/// send it (consulting the `display` fault point on the way out).
/// Returns `false` when the client side is gone.
pub fn pump_frame(
    session: &WafeSession,
    ctl: &DisplayCtl,
    sink: &SessionSink,
    faults: &mut Option<FaultPlan>,
) -> bool {
    if !ctl.attached() {
        return true;
    }
    let tel = session.telemetry.clone();
    let line = {
        let mut app = session.app.borrow_mut();
        let Some(d) = app.displays.get_mut(0) else {
            return true;
        };
        d.flush();
        if !d.has_pending_frame() {
            return true;
        }
        if !sink.can_send_frame() {
            // Backpressure: a frame is still unsent. Leave the damage
            // accumulating — it coalesces into the next frame.
            tel.count("display.frame.deferred");
            return true;
        }
        let damage = d.take_frame_damage();
        let seq = d.next_frame_seq();
        let frame = Frame::build(d.framebuffer(), &damage, seq);
        let bytes = frame.encode();
        tel.count("display.frame");
        if frame.full {
            tel.count("display.frame.full");
        }
        tel.add("display.frame.rects", frame.rects.len() as u64);
        // Byte sizes recorded as histogram samples: `telemetry
        // histogram display.frame.bytes` answers "how big are frames".
        tel.observe_ns("display.frame.bytes", bytes.len() as u64);
        format!("!display frame {}", to_hex(&bytes))
    };
    let mut line = line;
    if let Some(plan) = faults {
        for action in plan.fire("display") {
            match action {
                FaultAction::Drop | FaultAction::Wedge => {
                    tel.count("display.fault.drop");
                    return true;
                }
                FaultAction::Garble => {
                    tel.count("display.fault.garble");
                    line = plan.garble_line(&line);
                }
                FaultAction::Truncate(n) => {
                    tel.count("display.fault.truncate");
                    line = truncate_line(&line, n);
                }
                _ => {}
            }
        }
    }
    sink.send_frame(&line)
}
