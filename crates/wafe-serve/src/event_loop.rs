//! The readiness-driven transport: one poll(2) wakeup drains every
//! readable connection into its mailbox, then the quantum scheduler
//! runs, then replies are flushed — no per-connection threads.
//!
//! Each worker owns one [`EventLoop`]: its [`Scheduler`], its registry
//! shard, and the connections routed to it (`slot % workers`). The
//! loop is written as separate steps — [`poll_io`](EventLoop::poll_io),
//! [`run_turn`](EventLoop::run_turn),
//! [`flush_and_reap`](EventLoop::flush_and_reap),
//! [`advance`](EventLoop::advance) — so the deterministic tests can
//! interleave them with scripted I/O exactly like the scheduler tests
//! script virtual time. The production driver in `server.rs` just calls
//! them in order.
//!
//! The accept path is its own small loop ([`AcceptLoop`]): it polls the
//! listeners, admits or sheds, and hands each admitted connection to
//! its worker as a [`ConnAssign`]. `accept(2)` failures (`EMFILE`,
//! `ENFILE`, transient aborts) are counted in `serve.accept.errors` and
//! back the loop off for one tick — never a hot spin, never a dead
//! acceptor.

use std::io;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::mpsc::Sender;
use std::sync::Arc;

use wafe_ipc::{set_nonblocking, Interest, LineCodec, PollSet, Poller, DEFAULT_MAX_LINE};

use crate::mailbox::{Mailbox, OutQueue, SessionSink};
use crate::registry::Registry;
use crate::scheduler::Scheduler;

/// Most bytes one connection may feed into its mailbox per sweep.
/// Batching stays bounded: a flooding client cannot monopolise the
/// sweep any more than it can monopolise the scheduler's quantum.
const READ_SWEEP_CAP: usize = 64 * 1024;

/// A nonblocking byte stream the event loop can poll. Implemented for
/// TCP and Unix sockets and by the simulated net in tests.
pub trait ConnIo: Send {
    fn fd(&self) -> RawFd;
    /// Nonblocking read; `WouldBlock` when drained, `Ok(0)` at EOF.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Nonblocking write; may be partial.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;
    /// Closes both directions.
    fn shutdown(&mut self);
}

impl ConnIo for TcpStream {
    fn fd(&self) -> RawFd {
        self.as_raw_fd()
    }
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::Write::write(self, buf)
    }
    fn shutdown(&mut self) {
        let _ = TcpStream::shutdown(self, Shutdown::Both);
    }
}

impl ConnIo for UnixStream {
    fn fd(&self) -> RawFd {
        self.as_raw_fd()
    }
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::Write::write(self, buf)
    }
    fn shutdown(&mut self) {
        let _ = UnixStream::shutdown(self, Shutdown::Both);
    }
}

/// A listener the accept loop can poll. `accept` returns `Ok(None)`
/// when there is nothing pending (`WouldBlock`); accepted streams come
/// back already nonblocking.
pub trait Acceptor: Send {
    fn fd(&self) -> RawFd;
    fn accept(&mut self) -> io::Result<Option<(Box<dyn ConnIo>, String)>>;
}

/// TCP listener acceptor (`tcp/<peer>` session names).
pub struct TcpAcceptor(pub TcpListener);

impl Acceptor for TcpAcceptor {
    fn fd(&self) -> RawFd {
        self.0.as_raw_fd()
    }
    fn accept(&mut self) -> io::Result<Option<(Box<dyn ConnIo>, String)>> {
        match self.0.accept() {
            Ok((stream, peer)) => {
                set_nonblocking(stream.as_raw_fd())?;
                Ok(Some((Box::new(stream), format!("tcp/{peer}"))))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Unix-socket acceptor (`unix/<serial>` session names).
pub struct UnixAcceptor {
    pub listener: UnixListener,
    serial: u64,
}

impl UnixAcceptor {
    pub fn new(listener: UnixListener) -> UnixAcceptor {
        UnixAcceptor {
            listener,
            serial: 0,
        }
    }
}

impl Acceptor for UnixAcceptor {
    fn fd(&self) -> RawFd {
        self.listener.as_raw_fd()
    }
    fn accept(&mut self) -> io::Result<Option<(Box<dyn ConnIo>, String)>> {
        match self.listener.accept() {
            Ok((stream, _)) => {
                set_nonblocking(stream.as_raw_fd())?;
                self.serial += 1;
                Ok(Some((Box::new(stream), format!("unix/{}", self.serial))))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// One admitted connection, handed from the accept loop to the worker
/// that owns its session. Everything in it is `Send`; the `!Send`
/// session is built on the worker.
pub struct ConnAssign {
    pub id: crate::registry::SessionId,
    pub io: Box<dyn ConnIo>,
    pub mailbox: Arc<Mailbox>,
    pub out: Arc<OutQueue>,
}

struct Conn {
    io: Box<dyn ConnIo>,
    codec: LineCodec,
    mailbox: Arc<Mailbox>,
    out: Arc<OutQueue>,
    /// Encoded-but-unwritten bytes (partial write under backpressure).
    wbuf: Vec<u8>,
    wpos: usize,
    read_eof: bool,
    gone: bool,
}

impl Conn {
    fn want_read(&self) -> bool {
        !self.read_eof && !self.mailbox.is_closed()
    }
    fn want_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

/// One worker's readiness-driven I/O multiplexer around its
/// [`Scheduler`].
pub struct EventLoop {
    sched: Scheduler,
    shard: usize,
    poll: PollSet,
    conns: Vec<Option<Conn>>,
}

impl EventLoop {
    /// Wraps a scheduler (shard `shard` of the registry) around a
    /// poller backend. Records the backend name in the registry for
    /// `serve status`.
    pub fn new(sched: Scheduler, shard: usize, poller: Box<dyn Poller>) -> EventLoop {
        sched.registry().set_poller_backend(poller.name());
        EventLoop {
            sched,
            shard,
            poll: PollSet::new(poller),
            conns: Vec::new(),
        }
    }

    /// The scheduler (virtual clock, registry access) — tests drive it
    /// directly.
    pub fn scheduler(&mut self) -> &mut Scheduler {
        &mut self.sched
    }

    /// Live connections on this loop.
    pub fn conn_count(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    /// Takes ownership of an admitted connection: the session joins the
    /// scheduler ring, the socket joins the poll set.
    pub fn attach(&mut self, assign: ConnAssign) {
        self.sched.attach(
            assign.id,
            assign.mailbox.clone(),
            SessionSink::Queue(assign.out.clone()),
        );
        let conn = Conn {
            io: assign.io,
            codec: LineCodec::new(DEFAULT_MAX_LINE),
            mailbox: assign.mailbox,
            out: assign.out,
            wbuf: Vec::new(),
            wpos: 0,
            read_eof: false,
            gone: false,
        };
        let token = match self.conns.iter().position(|c| c.is_none()) {
            Some(i) => {
                self.conns[i] = Some(conn);
                i
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        let c = self.conns[token].as_ref().expect("just inserted");
        self.poll.register(Interest::read(token, c.io.fd()));
    }

    /// One poll wakeup: waits up to `timeout_ms`, then drains *every*
    /// readable connection into its mailbox (the batched sweep) before
    /// returning. Returns how many protocol lines were enqueued.
    pub fn poll_io(&mut self, timeout_ms: i32) -> usize {
        let ready: Vec<(usize, bool)> = match self.poll.wait(timeout_ms) {
            Ok(r) => r.iter().map(|r| (r.token, r.writable)).collect(),
            Err(_) => return 0,
        };
        let mut enqueued = 0;
        for (token, writable) in ready {
            if writable {
                self.flush_conn(token);
            }
            enqueued += self.sweep_read(token);
            self.update_interest(token);
        }
        enqueued
    }

    /// Reads one connection until `WouldBlock`, EOF or the sweep cap;
    /// decoded lines land in the session's mailbox (an over-capacity
    /// push is counted there and answered `!shed queue-full` by the
    /// scheduler). Returns lines enqueued.
    fn sweep_read(&mut self, token: usize) -> usize {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return 0;
        };
        if !conn.want_read() {
            return 0;
        }
        let mut buf = [0u8; 8192];
        let mut taken = 0usize;
        let mut lines = 0usize;
        loop {
            if taken >= READ_SWEEP_CAP {
                break; // level-triggered: the rest waits for the next wakeup
            }
            match conn.io.read(&mut buf) {
                Ok(0) => {
                    conn.read_eof = true;
                    conn.mailbox.close();
                    break;
                }
                Ok(n) => {
                    taken += n;
                    for line in conn.codec.push(&buf[..n]) {
                        let _ = conn.mailbox.push(line);
                        lines += 1;
                    }
                    if conn.mailbox.is_closed() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.gone = true;
                    conn.mailbox.close();
                    break;
                }
            }
        }
        lines
    }

    /// One scheduler sweep over the mailboxes just filled.
    pub fn run_turn(&mut self) -> usize {
        self.sched.run_turn()
    }

    /// Advances the scheduler's virtual clock.
    pub fn advance(&mut self, ms: u64) {
        self.sched.advance(ms);
    }

    /// Writes every session's queued replies to its socket, closes
    /// connections whose sessions finished, reaps dead ones, and
    /// updates the shard's queue-depth gauge. Call after
    /// [`run_turn`](EventLoop::run_turn).
    pub fn flush_and_reap(&mut self) {
        for token in 0..self.conns.len() {
            if self.conns[token].is_some() {
                self.flush_conn(token);
                self.reap(token);
            }
        }
        let registry = self.sched.registry().clone();
        registry.set_shard_queued(self.shard, self.sched.queued_lines());
    }

    /// Moves lines from the out queue into the write buffer and pushes
    /// the buffer into the socket until it would block.
    fn flush_conn(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return;
        };
        if conn.gone {
            return;
        }
        loop {
            if conn.wpos >= conn.wbuf.len() {
                conn.wbuf.clear();
                conn.wpos = 0;
                // Coalesce: one write call per flush, not per line.
                while let Some(line) = conn.out.pop() {
                    conn.wbuf.extend_from_slice(&LineCodec::encode(&line));
                    if conn.wbuf.len() >= READ_SWEEP_CAP {
                        break;
                    }
                }
                if conn.wbuf.is_empty() {
                    break;
                }
            }
            match conn.io.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => {
                    conn.gone = true;
                    break;
                }
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.gone = true;
                    break;
                }
            }
        }
    }

    /// Retires a connection that is finished (session released and tail
    /// flushed) or dead.
    fn reap(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return;
        };
        if conn.gone {
            // The client vanished: stop the session's output, let the
            // scheduler notice on its next send and release the slot.
            conn.out.mark_receiver_gone();
            conn.mailbox.close();
            conn.io.shutdown();
            self.conns[token] = None;
            self.poll.deregister(token);
            return;
        }
        if conn.out.is_finished() && !conn.want_write() {
            // Session released (sink dropped) and every reply written.
            conn.io.shutdown();
            self.conns[token] = None;
            self.poll.deregister(token);
            return;
        }
        self.update_interest(token);
    }

    fn update_interest(&mut self, token: usize) {
        let Some(conn) = self.conns.get(token).and_then(Option::as_ref) else {
            return;
        };
        let (read, write) = (conn.want_read(), conn.want_write());
        if read || write {
            self.poll.register(Interest {
                token,
                fd: conn.io.fd(),
                read,
                write,
            });
        } else {
            self.poll.deregister(token);
        }
    }

    /// Whether the loop has anything to do right now (skip the poll
    /// timeout when true).
    pub fn has_pending_work(&mut self) -> bool {
        self.conns.iter().flatten().any(|c| {
            !c.mailbox.is_empty() || !c.out.is_empty() || c.want_write() || c.out.is_finished()
        })
    }

    /// Drained and every connection retired — the worker may exit.
    pub fn is_drained(&mut self) -> bool {
        self.sched.is_drained() && self.conn_count() == 0
    }

    /// Passthrough lines collected by the scheduler since last call.
    pub fn take_passthrough(&mut self) -> Vec<(crate::registry::SessionId, String)> {
        self.sched.take_passthrough()
    }
}

/// The accept half of the poll transport: polls the listeners, admits
/// or sheds, routes [`ConnAssign`]s to workers by `slot % workers`.
pub struct AcceptLoop {
    registry: Arc<Registry>,
    acceptors: Vec<Box<dyn Acceptor>>,
    txs: Vec<Sender<ConnAssign>>,
    poller: Box<dyn Poller>,
    ready: Vec<wafe_ipc::Readiness>,
    /// Ticks left to sit out after an accept failure.
    backoff_ticks: u32,
}

impl AcceptLoop {
    pub fn new(
        registry: Arc<Registry>,
        acceptors: Vec<Box<dyn Acceptor>>,
        txs: Vec<Sender<ConnAssign>>,
        poller: Box<dyn Poller>,
    ) -> AcceptLoop {
        AcceptLoop {
            registry,
            acceptors,
            txs,
            poller,
            ready: Vec::new(),
            backoff_ticks: 0,
        }
    }

    /// Whether the loop is currently backing off after an accept error.
    pub fn backing_off(&self) -> bool {
        self.backoff_ticks > 0
    }

    /// One acceptor tick: wait up to `timeout_ms` for a pending
    /// connection, accept everything pending, admit or shed each.
    /// Returns how many connections were admitted.
    ///
    /// On an accept failure (`EMFILE`/`ENFILE` above all) the error is
    /// counted and the *next* tick is spent sleeping with the listeners
    /// unwatched — accepting resumes one tick later, when a fd may have
    /// been freed. The loop never exits on an accept error.
    pub fn poll_once(&mut self, timeout_ms: i32) -> usize {
        if self.backoff_ticks > 0 {
            self.backoff_ticks -= 1;
            // Sleep without watching the listeners: with zero fds the
            // poller just waits out the timeout.
            let _ = self.poller.wait(&[], timeout_ms, &mut self.ready);
            return 0;
        }
        let interests: Vec<Interest> = self
            .acceptors
            .iter()
            .enumerate()
            .map(|(i, a)| Interest::read(i, a.fd()))
            .collect();
        if self
            .poller
            .wait(&interests, timeout_ms, &mut self.ready)
            .is_err()
        {
            return 0;
        }
        let ready: Vec<usize> = self.ready.iter().map(|r| r.token).collect();
        let mut admitted = 0;
        for token in ready {
            loop {
                match self.acceptors[token].accept() {
                    Ok(Some((io, peer))) => {
                        if self.launch(io, peer) {
                            admitted += 1;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        // EMFILE/ENFILE or a transient accept failure:
                        // count it, sit out a tick, never spin or die.
                        self.registry.note_accept_error();
                        self.backoff_ticks = 1;
                        break;
                    }
                }
            }
        }
        admitted
    }

    /// Admission for one accepted stream; sheds reply `!shed <reason>`
    /// before the close. Returns whether the connection was admitted.
    fn launch(&mut self, mut io: Box<dyn ConnIo>, peer: String) -> bool {
        let id = match self.registry.admit(&peer, 0) {
            Ok(id) => id,
            Err(reason) => {
                // Explicit load shedding, never a silent close. The
                // socket buffer of a fresh connection always has room
                // for one line, so a best-effort write suffices.
                let _ = io.write(&LineCodec::encode(&format!("!shed {reason}")));
                io.shutdown();
                return false;
            }
        };
        let mailbox = Mailbox::new(self.registry.limits().queue_depth);
        let out = OutQueue::new();
        let worker = id.slot as usize % self.txs.len().max(1);
        if let Err(mut refused) = self.txs[worker].send(ConnAssign {
            id,
            io,
            mailbox,
            out,
        }) {
            // Drain raced the accept; the worker is gone.
            self.registry.release(id);
            refused.0.io.shutdown();
            return false;
        }
        true
    }
}
