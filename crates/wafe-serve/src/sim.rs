//! A simulated socket layer for deterministic event-loop tests.
//!
//! [`SimNet`] plays both kernel and client: a test injects byte chunks
//! and accept-queue entries, and the event loop sees them through the
//! same [`ConnIo`]/[`Acceptor`]/[`Poller`] traits the real sockets use.
//! Chunk boundaries are preserved — each injected chunk is returned by
//! exactly one `read` call — so a test controls precisely how a line is
//! split across poll wakeups (the 1-byte-dribble reassembly tests).
//! The poller derives readiness from the queue states, so there is no
//! timing anywhere: a fd is readable iff bytes (or EOF) are pending.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::os::unix::io::RawFd;
use std::sync::{Arc, Mutex};

use wafe_ipc::{Interest, Poller, Readiness};

use crate::event_loop::{Acceptor, ConnIo};

#[derive(Default)]
struct SimConnState {
    /// Client→server chunks; one chunk per `read` call.
    inbound: VecDeque<Vec<u8>>,
    eof: bool,
    /// Server→client bytes.
    received: Vec<u8>,
    shutdown: bool,
}

#[derive(Default)]
struct SimNetState {
    conns: HashMap<RawFd, SimConnState>,
    /// Pending accepts: a connection's pseudo-fd, or an errno the
    /// accept call should fail with.
    accept_queue: VecDeque<Result<RawFd, i32>>,
    next_fd: RawFd,
}

/// The shared simulated network. Clone handles freely; all state lives
/// behind one mutex.
#[derive(Clone, Default)]
pub struct SimNet {
    state: Arc<Mutex<SimNetState>>,
}

/// The listener's pseudo-fd (never collides with conn fds, which start
/// at 1000).
pub const SIM_LISTENER_FD: RawFd = 999;

impl SimNet {
    pub fn new() -> SimNet {
        let net = SimNet::default();
        net.lock().next_fd = 1000;
        net
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SimNetState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn new_conn(&self) -> RawFd {
        let mut s = self.lock();
        let fd = s.next_fd;
        s.next_fd += 1;
        s.conns.insert(fd, SimConnState::default());
        fd
    }

    /// A directly attached connection pair, bypassing the accept queue
    /// (for tests that drive an [`EventLoop`](crate::EventLoop)
    /// without an accept loop).
    pub fn socketpair(&self) -> (SimClient, Box<dyn ConnIo>) {
        let fd = self.new_conn();
        (
            SimClient {
                net: self.clone(),
                fd,
            },
            Box::new(SimConnIo {
                net: self.clone(),
                fd,
            }),
        )
    }

    /// Enqueues a client connection for the accept loop; the returned
    /// client talks to whatever session the accept admits.
    pub fn connect(&self) -> SimClient {
        let fd = self.new_conn();
        self.lock().accept_queue.push_back(Ok(fd));
        SimClient {
            net: self.clone(),
            fd,
        }
    }

    /// Makes the accept loop's next `accept` fail with `errno`
    /// (`EMFILE` = 24, `ENFILE` = 23).
    pub fn push_accept_error(&self, errno: i32) {
        self.lock().accept_queue.push_back(Err(errno));
    }

    /// The acceptor for this net's single simulated listener.
    pub fn acceptor(&self) -> Box<dyn Acceptor> {
        Box::new(SimAcceptor { net: self.clone() })
    }

    /// The poller deriving readiness from this net's queues.
    pub fn poller(&self) -> Box<dyn Poller> {
        Box::new(SimNetPoller { net: self.clone() })
    }

    fn readable(&self, fd: RawFd) -> bool {
        let s = self.lock();
        if fd == SIM_LISTENER_FD {
            return !s.accept_queue.is_empty();
        }
        s.conns
            .get(&fd)
            .map(|c| !c.inbound.is_empty() || c.eof)
            .unwrap_or(false)
    }
}

/// The test's handle to one simulated client connection.
pub struct SimClient {
    net: SimNet,
    fd: RawFd,
}

impl SimClient {
    /// Injects one chunk of client→server bytes; the server's next
    /// `read` on this conn returns exactly this chunk.
    pub fn send(&self, bytes: &[u8]) {
        let mut s = self.net.lock();
        if let Some(c) = s.conns.get_mut(&self.fd) {
            c.inbound.push_back(bytes.to_vec());
        }
    }

    /// Closes the client→server direction (server reads EOF after the
    /// pending chunks).
    pub fn send_eof(&self) {
        let mut s = self.net.lock();
        if let Some(c) = s.conns.get_mut(&self.fd) {
            c.eof = true;
        }
    }

    /// Everything the server has written to this client so far.
    pub fn received(&self) -> Vec<u8> {
        let s = self.net.lock();
        s.conns
            .get(&self.fd)
            .map(|c| c.received.clone())
            .unwrap_or_default()
    }

    /// The server's output split on newlines (complete lines only).
    pub fn received_lines(&self) -> Vec<String> {
        let bytes = self.received();
        let text = String::from_utf8_lossy(&bytes);
        text.split_terminator('\n').map(str::to_string).collect()
    }

    /// Whether the server closed this connection.
    pub fn is_shutdown(&self) -> bool {
        let s = self.net.lock();
        s.conns.get(&self.fd).map(|c| c.shutdown).unwrap_or(true)
    }
}

struct SimConnIo {
    net: SimNet,
    fd: RawFd,
}

impl ConnIo for SimConnIo {
    fn fd(&self) -> RawFd {
        self.fd
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut s = self.net.lock();
        let Some(c) = s.conns.get_mut(&self.fd) else {
            return Ok(0);
        };
        match c.inbound.pop_front() {
            Some(mut chunk) => {
                if chunk.len() > buf.len() {
                    // Oversized chunk: the remainder stays queued.
                    let rest = chunk.split_off(buf.len());
                    c.inbound.push_front(rest);
                }
                buf[..chunk.len()].copy_from_slice(&chunk);
                Ok(chunk.len())
            }
            None if c.eof => Ok(0),
            None => Err(io::Error::from(io::ErrorKind::WouldBlock)),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut s = self.net.lock();
        let Some(c) = s.conns.get_mut(&self.fd) else {
            return Err(io::Error::from(io::ErrorKind::BrokenPipe));
        };
        if c.shutdown {
            return Err(io::Error::from(io::ErrorKind::BrokenPipe));
        }
        c.received.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn shutdown(&mut self) {
        let mut s = self.net.lock();
        if let Some(c) = s.conns.get_mut(&self.fd) {
            c.shutdown = true;
        }
    }
}

struct SimAcceptor {
    net: SimNet,
}

impl Acceptor for SimAcceptor {
    fn fd(&self) -> RawFd {
        SIM_LISTENER_FD
    }

    fn accept(&mut self) -> io::Result<Option<(Box<dyn ConnIo>, String)>> {
        let popped = self.net.lock().accept_queue.pop_front();
        match popped {
            Some(Ok(fd)) => Ok(Some((
                Box::new(SimConnIo {
                    net: self.net.clone(),
                    fd,
                }) as Box<dyn ConnIo>,
                format!("sim/{fd}"),
            ))),
            Some(Err(errno)) => Err(io::Error::from_raw_os_error(errno)),
            None => Ok(None),
        }
    }
}

/// Readiness straight from the [`SimNet`] queues; never waits.
struct SimNetPoller {
    net: SimNet,
}

impl Poller for SimNetPoller {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn wait(
        &mut self,
        interests: &[Interest],
        _timeout_ms: i32,
        out: &mut Vec<Readiness>,
    ) -> io::Result<()> {
        out.clear();
        for i in interests {
            let r = Readiness {
                token: i.token,
                readable: i.read && self.net.readable(i.fd),
                writable: i.write,
                hup: false,
            };
            if r.any() {
                out.push(r);
            }
        }
        Ok(())
    }
}
