//! The round-robin fairness scheduler: one per worker thread, owning
//! every session assigned to that worker.
//!
//! `WafeSession` is single-threaded by construction (`Rc` all the way
//! down), so sessions are *pinned*: the transport hands the scheduler a
//! [`SessionId`], a [`Mailbox`] and a [`SessionSink`] — all `Send` —
//! and the scheduler builds the `ProtocolEngine` locally. Each
//! [`run_turn`](Scheduler::run_turn) sweep gives every session at most
//! `quantum` lines before moving on, so a flooding client only ever
//! gets one quantum ahead of a quiet one; its surplus waits in its own
//! mailbox, never in anyone else's way.
//!
//! Time is virtual, exactly like the backend supervisor's clock: the
//! driver calls [`advance`](Scheduler::advance) with elapsed
//! milliseconds (wall-derived in the real server, scripted in tests),
//! and idle eviction and the drain timeout are decided against that
//! clock only — the deterministic tests never assert on wall time.
//!
//! Reply semantics mirror frontend mode byte-for-byte: only lines the
//! session *sends to the application* (echo output) reach the client;
//! command results and errors do not. The server adds exactly one thing
//! the pipe never carried — `!`-prefixed overload notices (`!shed
//! queue-full`, `!evicted idle`), which appear only past the configured
//! limits, so a client inside its limits sees a byte-identical stream.

use std::sync::Arc;

use wafe_core::{Flavor, WafeSession};
use wafe_ipc::ProtocolEngine;

use crate::mailbox::{Mailbox, SessionSink};
use crate::registry::{Registry, SessionId, LIMIT_KEYS};

struct Entry {
    id: SessionId,
    engine: ProtocolEngine,
    mailbox: Arc<Mailbox>,
    sink: SessionSink,
    last_activity_ms: u64,
    gone: bool,
}

/// One worker's session multiplexer. Single-threaded; the shared state
/// it touches lives in the [`Registry`].
pub struct Scheduler {
    registry: Arc<Registry>,
    flavor: Flavor,
    telemetry: bool,
    sessions: Vec<Entry>,
    passthrough: Vec<(SessionId, String)>,
    now_ms: u64,
    drain_started_ms: Option<u64>,
}

impl Scheduler {
    /// A scheduler creating sessions of the given flavour (telemetry
    /// pre-enabled on each when `telemetry` is set).
    pub fn new(registry: Arc<Registry>, flavor: Flavor, telemetry: bool) -> Self {
        Scheduler {
            registry,
            flavor,
            telemetry,
            sessions: Vec::new(),
            passthrough: Vec::new(),
            now_ms: 0,
            drain_started_ms: None,
        }
    }

    /// The shared registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The scheduler's virtual clock, in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Sessions this scheduler currently owns.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Builds the session for an admitted connection and takes it into
    /// the round-robin ring.
    pub fn attach(&mut self, id: SessionId, mailbox: Arc<Mailbox>, sink: SessionSink) {
        let mut engine = ProtocolEngine::new(self.flavor);
        if self.telemetry {
            engine.session.telemetry.set_enabled(true);
        }
        install_serve_control(&self.registry, &mut engine.session);
        let tel = engine.session.telemetry.clone();
        tel.count("serve.accept");
        tel.set_gauge("serve.sessions.active", self.registry.active() as u64);
        self.sessions.push(Entry {
            id,
            engine,
            mailbox,
            sink,
            last_activity_ms: self.now_ms,
            gone: false,
        });
    }

    /// One round-robin sweep: every session runs at most `quantum`
    /// mailbox lines, its outbound lines are delivered, finished
    /// sessions are released. Returns the number of lines dispatched
    /// (0 = nothing to do, the driver may sleep).
    pub fn run_turn(&mut self) -> usize {
        if self.registry.draining() && self.drain_started_ms.is_none() {
            // Drain: no further input, flush what is already queued.
            self.drain_started_ms = Some(self.now_ms);
            for e in &self.sessions {
                e.mailbox.close();
            }
        }
        let quantum = self.registry.limits().quantum.max(1);
        let mut dispatched = 0usize;
        let mut i = 0;
        while i < self.sessions.len() {
            let entry = &mut self.sessions[i];
            let tel = entry.engine.session.telemetry.clone();
            let mut ran = 0usize;
            while ran < quantum {
                let Some(line) = entry.mailbox.pop() else {
                    break;
                };
                let timer = tel.timer();
                // The root of the causal trace: one per dispatched
                // line, stamped with the session that sent it. Every
                // ipc.command / tcl.* span below shares its trace ID.
                let span = tel.span_begin_root("serve.command", || format!("{} {line}", entry.id));
                let _ = entry.engine.handle_line(&line);
                if span {
                    tel.span_end();
                }
                tel.observe_since("serve.dispatch", timer);
                tel.count("serve.commands");
                ran += 1;
            }
            if ran > 0 {
                dispatched += ran;
                entry.last_activity_ms = self.now_ms;
                self.registry.note_commands(entry.id, ran as u64);
            }
            // Outbound: only application-bound lines, like the pipe.
            for out in entry.engine.take_app_lines() {
                if !entry.sink.send(&out) {
                    entry.gone = true;
                }
            }
            // Queue-full sheds the transport recorded since last sweep:
            // count them and tell the client explicitly, after the
            // replies to the lines that did get through.
            let shed = entry.mailbox.take_shed();
            for _ in 0..shed {
                self.registry.note_shed_queue();
                if !entry.sink.send("!shed queue-full") {
                    entry.gone = true;
                }
            }
            if shed > 0 {
                tel.add("serve.shed", shed);
            }
            for p in entry.engine.take_passthrough() {
                self.passthrough.push((entry.id, p));
            }
            let _ = entry.engine.take_errors(); // counted as ipc.errors
            tel.set_gauge("serve.queue.depth", entry.mailbox.len() as u64);
            let finished = entry.gone
                || entry.engine.session.quit_requested()
                || (entry.mailbox.is_closed() && entry.mailbox.is_empty());
            if finished {
                let entry = self.sessions.remove(i);
                self.finish(entry);
            } else {
                i += 1;
            }
        }
        dispatched
    }

    /// Advances the virtual clock: idle eviction and the drain timeout
    /// are decided here, against virtual time only.
    pub fn advance(&mut self, ms: u64) {
        self.now_ms = self.now_ms.saturating_add(ms);
        let limits = self.registry.limits();
        if limits.idle_evict_ms > 0 && !self.registry.draining() {
            let mut i = 0;
            while i < self.sessions.len() {
                let e = &self.sessions[i];
                let idle = self.now_ms.saturating_sub(e.last_activity_ms);
                if e.mailbox.is_empty() && idle > limits.idle_evict_ms {
                    let entry = self.sessions.remove(i);
                    entry.sink.send("!evicted idle");
                    entry.engine.session.telemetry.count("serve.evict");
                    self.registry.note_evicted();
                    self.finish(entry);
                } else {
                    i += 1;
                }
            }
        }
        if let Some(started) = self.drain_started_ms {
            if limits.drain_timeout_ms > 0
                && self.now_ms.saturating_sub(started) > limits.drain_timeout_ms
                && !self.sessions.is_empty()
            {
                // Sessions still busy past the deadline are cut off
                // with their remaining queue unflushed.
                for entry in std::mem::take(&mut self.sessions) {
                    self.finish(entry);
                }
            }
        }
    }

    /// Whether a drain is in progress and this scheduler is done.
    pub fn is_drained(&self) -> bool {
        self.registry.draining() && self.sessions.is_empty()
    }

    /// Takes the passthrough lines collected since the last call, each
    /// tagged with the session that wrote it (the server logs these —
    /// in single-process frontend mode they went to stdout).
    pub fn take_passthrough(&mut self) -> Vec<(SessionId, String)> {
        std::mem::take(&mut self.passthrough)
    }

    fn finish(&mut self, entry: Entry) {
        entry.mailbox.close();
        self.registry.release(entry.id);
        let tel = entry.engine.session.telemetry.clone();
        tel.set_gauge("serve.sessions.active", self.registry.active() as u64);
        // Dropping the entry drops its sink; a channel sink closing is
        // what tells the connection's writer thread to hang up.
    }
}

/// Installs the `serve` control handler (registered as a command by
/// wafe-core) into one session's dispatch table.
pub fn install_serve_control(registry: &Arc<Registry>, session: &mut WafeSession) {
    let r = registry.clone();
    let tel = session.telemetry.clone();
    session.controls.borrow_mut().insert(
        "serve".into(),
        Box::new(move |argv| serve_control(&r, &tel, argv)),
    );
}

fn serve_control(
    r: &Arc<Registry>,
    tel: &wafe_trace::Telemetry,
    argv: &[String],
) -> Result<String, String> {
    const USAGE: &str = "serve status|sessions|drain|metrics|limits ?key ?value??";
    match argv.get(1).map(String::as_str) {
        Some("status") if argv.len() == 2 => Ok(wafe_tcl::list_join(&r.status_words())),
        Some("sessions") if argv.len() == 2 => Ok(wafe_tcl::list_join(&r.sessions_words())),
        Some("metrics") if argv.len() == 2 => {
            // Prometheus text exposition: the server-wide registry rows
            // plus this session's telemetry store, key-sorted.
            let mut pairs = r.metrics_pairs();
            pairs.extend(wafe_trace::export::telemetry_pairs(tel));
            pairs.sort();
            Ok(wafe_trace::export::prometheus_text(&pairs))
        }
        Some("drain") if argv.len() == 2 => {
            r.begin_drain();
            Ok(String::new())
        }
        Some("limits") => match argv.len() {
            2 => {
                let words: Vec<String> = LIMIT_KEYS
                    .iter()
                    .flat_map(|k| {
                        [
                            k.to_string(),
                            r.get_limit(k).expect("every listed key resolves"),
                        ]
                    })
                    .collect();
                Ok(wafe_tcl::list_join(&words))
            }
            3 => r.get_limit(&argv[2]).ok_or_else(|| {
                format!(
                    "unknown limit \"{}\": must be one of {}",
                    argv[2],
                    LIMIT_KEYS.join(", ")
                )
            }),
            4 => {
                r.set_limit(&argv[2], &argv[3])?;
                Ok(String::new())
            }
            _ => Err(format!("wrong # args: should be \"{USAGE}\"")),
        },
        _ => Err(format!("wrong # args: should be \"{USAGE}\"")),
    }
}
