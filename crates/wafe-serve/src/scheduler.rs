//! The round-robin fairness scheduler: one per worker thread, owning
//! every session assigned to that worker.
//!
//! `WafeSession` is single-threaded by construction (`Rc` all the way
//! down), so sessions are *pinned*: the transport hands the scheduler a
//! [`SessionId`], a [`Mailbox`] and a [`SessionSink`] — all `Send` —
//! and the scheduler builds the `ProtocolEngine` locally. Each
//! [`run_turn`](Scheduler::run_turn) sweep gives every session at most
//! `quantum` lines before moving on, so a flooding client only ever
//! gets one quantum ahead of a quiet one; its surplus waits in its own
//! mailbox, never in anyone else's way.
//!
//! Time is virtual, exactly like the backend supervisor's clock: the
//! driver calls [`advance`](Scheduler::advance) with elapsed
//! milliseconds (wall-derived in the real server, scripted in tests),
//! and idle eviction and the drain timeout are decided against that
//! clock only — the deterministic tests never assert on wall time.
//!
//! Reply semantics mirror frontend mode byte-for-byte: only lines the
//! session *sends to the application* (echo output) reach the client;
//! command results and errors do not. The server adds exactly one thing
//! the pipe never carried — `!`-prefixed notices (`!shed queue-full`,
//! `!parked <id>`, `!restored <id>`), which appear only past the
//! configured limits or around an explicit park/restore, so a client
//! inside its limits sees a byte-identical stream.
//!
//! Idle eviction *parks* rather than discards: the session is captured
//! into a [`SessionSnapshot`], the registry keeps the encoded bytes
//! under the generation-stamped [`SessionId`], and a later connection
//! saying `session restore <id>` gets the whole session back — widget
//! tree, interpreter state and the outbound lines that were still
//! queued, replayed in order right after the `!restored` ack.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;

use wafe_core::{Flavor, SessionSnapshot, WafeSession};
use wafe_ipc::{FaultPlan, ProtocolEngine};

use crate::display::{install_display_control, pump_frame, DisplayCtl};
use crate::mailbox::{Mailbox, SessionSink};
use crate::registry::{Registry, SessionId, LIMIT_KEYS};

/// Deferred `session park`/`session restore` requests. The control
/// handler runs *inside* the session's own interpreter, which cannot
/// snapshot or replace the engine it is executing in — so the handler
/// only raises a flag here and the scheduler acts on it after the
/// quantum, from outside the engine.
#[derive(Default)]
pub struct SessionCtl {
    park: Cell<bool>,
    restore: RefCell<Option<SessionId>>,
}

struct Entry {
    id: SessionId,
    engine: ProtocolEngine,
    ctl: Rc<SessionCtl>,
    display: Rc<DisplayCtl>,
    mailbox: Arc<Mailbox>,
    sink: SessionSink,
    last_activity_ms: u64,
    gone: bool,
}

/// One worker's session multiplexer. Single-threaded; the shared state
/// it touches lives in the [`Registry`].
pub struct Scheduler {
    registry: Arc<Registry>,
    flavor: Flavor,
    telemetry: bool,
    sessions: Vec<Entry>,
    passthrough: Vec<(SessionId, String)>,
    now_ms: u64,
    drain_started_ms: Option<u64>,
    faults: Option<FaultPlan>,
}

impl Scheduler {
    /// A scheduler creating sessions of the given flavour (telemetry
    /// pre-enabled on each when `telemetry` is set).
    pub fn new(registry: Arc<Registry>, flavor: Flavor, telemetry: bool) -> Self {
        Scheduler {
            registry,
            flavor,
            telemetry,
            sessions: Vec::new(),
            passthrough: Vec::new(),
            now_ms: 0,
            drain_started_ms: None,
            // The server binary validates the spec loudly at startup;
            // here an unset/invalid variable just means no plan.
            faults: FaultPlan::from_env().and_then(Result::ok),
        }
    }

    /// Replaces the fault-injection plan (the deterministic chaos tests
    /// script faults here instead of through the environment).
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.faults = plan;
    }

    /// The shared registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The scheduler's virtual clock, in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Sessions this scheduler currently owns.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Mailbox lines queued across this scheduler's sessions (the
    /// shard's `queued` gauge in the `serve status` breakdown).
    pub fn queued_lines(&self) -> usize {
        self.sessions.iter().map(|e| e.mailbox.len()).sum()
    }

    /// Builds the session for an admitted connection and takes it into
    /// the round-robin ring.
    pub fn attach(&mut self, id: SessionId, mailbox: Arc<Mailbox>, sink: SessionSink) {
        let ctl = Rc::new(SessionCtl::default());
        let display = Rc::new(DisplayCtl::default());
        let engine = build_engine(&self.registry, self.flavor, self.telemetry, &ctl, &display);
        let tel = engine.session.telemetry.clone();
        tel.count("serve.accept");
        tel.set_gauge("serve.sessions.active", self.registry.active() as u64);
        self.sessions.push(Entry {
            id,
            engine,
            ctl,
            display,
            mailbox,
            sink,
            last_activity_ms: self.now_ms,
            gone: false,
        });
    }

    /// One round-robin sweep: every session runs at most `quantum`
    /// mailbox lines, its outbound lines are delivered, finished
    /// sessions are released. Returns the number of lines dispatched
    /// (0 = nothing to do, the driver may sleep).
    pub fn run_turn(&mut self) -> usize {
        if self.registry.draining() && self.drain_started_ms.is_none() {
            // Drain: no further input, flush what is already queued.
            self.drain_started_ms = Some(self.now_ms);
            for e in &self.sessions {
                e.mailbox.close();
            }
        }
        let quantum = self.registry.limits().quantum.max(1);
        let mut dispatched = 0usize;
        let mut i = 0;
        while i < self.sessions.len() {
            let entry = &mut self.sessions[i];
            let tel = entry.engine.session.telemetry.clone();
            let mut ran = 0usize;
            while ran < quantum {
                let Some(line) = entry.mailbox.pop() else {
                    break;
                };
                let timer = tel.timer();
                // The root of the causal trace: one per dispatched
                // line, stamped with the session that sent it. Every
                // ipc.command / tcl.* span below shares its trace ID.
                let span = tel.span_begin_root("serve.command", || format!("{} {line}", entry.id));
                let _ = entry.engine.handle_line(&line);
                if span {
                    tel.span_end();
                }
                tel.observe_since("serve.dispatch", timer);
                tel.count("serve.commands");
                ran += 1;
                // A park or restore request ends the quantum: lines
                // still queued must run in the session as it exists
                // *after* the action — not in the engine that is about
                // to be captured or replaced.
                if entry.ctl.park.get() || entry.ctl.restore.borrow().is_some() {
                    break;
                }
            }
            if ran > 0 {
                dispatched += ran;
                entry.last_activity_ms = self.now_ms;
                self.registry.note_commands(entry.id, ran as u64);
            }
            // Deferred `session` control actions, acted on before the
            // outbound flush: lines still pending inside the engine
            // ride the snapshot on park, and follow `!restored` on
            // restore — either way they are never silently dropped.
            let park_req = entry.ctl.park.take();
            let restore_req = entry.ctl.restore.borrow_mut().take();
            if park_req {
                let entry = self.sessions.remove(i);
                self.park_entry(entry, "manual");
                continue;
            }
            if let Some(old) = restore_req {
                self.restore_entry(i, old);
            }
            let entry = &mut self.sessions[i];
            let tel = entry.engine.session.telemetry.clone();
            // Outbound: only application-bound lines, like the pipe.
            for out in entry.engine.take_app_lines() {
                if !entry.sink.send(&out) {
                    entry.gone = true;
                }
            }
            // Queue-full sheds the transport recorded since last sweep:
            // count them and tell the client explicitly, after the
            // replies to the lines that did get through.
            let shed = entry.mailbox.take_shed();
            for _ in 0..shed {
                self.registry.note_shed_queue(entry.id);
                if !entry.sink.send("!shed queue-full") {
                    entry.gone = true;
                }
            }
            if shed > 0 {
                tel.add("serve.shed", shed);
            }
            for p in entry.engine.take_passthrough() {
                self.passthrough.push((entry.id, p));
            }
            let _ = entry.engine.take_errors(); // counted as ipc.errors
                                                // The display frame pump: after the replies, so a frame
                                                // never delays the lines whose commands produced it.
            if !pump_frame(
                &entry.engine.session,
                &entry.display,
                &entry.sink,
                &mut self.faults,
            ) {
                entry.gone = true;
            }
            tel.set_gauge("serve.queue.depth", entry.mailbox.len() as u64);
            let finished = entry.gone
                || entry.engine.session.quit_requested()
                || (entry.mailbox.is_closed() && entry.mailbox.is_empty());
            if finished {
                let entry = self.sessions.remove(i);
                // A persistent drain (waferd --park-dir) parks every
                // session it flushes instead of dropping it, so the
                // whole server's state survives the restart. Sessions
                // that quit or hung up are gone by choice and are not
                // parked.
                let drain_park = self.registry.draining()
                    && self.registry.park_persistent()
                    && !entry.gone
                    && !entry.engine.session.quit_requested();
                if drain_park {
                    self.park_entry(entry, "drain");
                } else {
                    self.finish(entry);
                }
            } else {
                i += 1;
            }
        }
        dispatched
    }

    /// Advances the virtual clock: idle eviction and the drain timeout
    /// are decided here, against virtual time only.
    pub fn advance(&mut self, ms: u64) {
        self.now_ms = self.now_ms.saturating_add(ms);
        let limits = self.registry.limits();
        if limits.idle_evict_ms > 0 && !self.registry.draining() {
            let mut i = 0;
            while i < self.sessions.len() {
                let e = &self.sessions[i];
                let idle = self.now_ms.saturating_sub(e.last_activity_ms);
                if e.mailbox.is_empty() && idle > limits.idle_evict_ms {
                    // Idle eviction parks instead of discarding: the
                    // client sees `!parked <id>` and can reconnect
                    // later with `session restore <id>`.
                    let entry = self.sessions.remove(i);
                    entry.engine.session.telemetry.count("serve.evict");
                    self.registry.note_evicted(entry.id);
                    self.park_entry(entry, "idle");
                } else {
                    i += 1;
                }
            }
        }
        if let Some(started) = self.drain_started_ms {
            if limits.drain_timeout_ms > 0
                && self.now_ms.saturating_sub(started) > limits.drain_timeout_ms
                && !self.sessions.is_empty()
            {
                // Sessions still busy past the deadline are cut off
                // with their remaining queue unflushed.
                for entry in std::mem::take(&mut self.sessions) {
                    self.finish(entry);
                }
            }
        }
    }

    /// Whether a drain is in progress and this scheduler is done.
    pub fn is_drained(&self) -> bool {
        self.registry.draining() && self.sessions.is_empty()
    }

    /// Takes the passthrough lines collected since the last call, each
    /// tagged with the session that wrote it (the server logs these —
    /// in single-process frontend mode they went to stdout).
    pub fn take_passthrough(&mut self) -> Vec<(SessionId, String)> {
        std::mem::take(&mut self.passthrough)
    }

    /// Parks a session: captures it (pending application-bound lines
    /// included), hands the encoded snapshot to the registry under the
    /// session's stamped id, acks `!parked <id>` to the client and
    /// releases the slot. `cause` is `manual`, `idle` or `drain` — the
    /// `serve.park.*` counter suffix.
    fn park_entry(&mut self, mut entry: Entry, cause: &str) {
        let tel = entry.engine.session.telemetry.clone();
        let outbound = entry.engine.take_app_lines();
        let bytes = SessionSnapshot::capture(&entry.engine.session, outbound).encode();
        let len = bytes.len() as u64;
        match self.registry.park(entry.id, bytes, self.now_ms) {
            Ok(()) => {
                tel.count(match cause {
                    "idle" => "serve.park.idle",
                    "drain" => "serve.park.drain",
                    _ => "serve.park.manual",
                });
                tel.add("serve.park.bytes", len);
                entry.sink.send(&format!("!parked {}", entry.id));
            }
            Err(e) => {
                // A persistence failure is loud, never a silent
                // memory-only checkpoint the client would trust across
                // a restart.
                tel.count("serve.park.error");
                entry.sink.send(&format!("!park-failed {} {e}", entry.id));
            }
        }
        self.finish(entry);
    }

    /// Replaces session `i`'s engine with one restored from the parked
    /// snapshot `old`, then replays the snapshot's outbound lines to
    /// the client right after the `!restored` ack — in exactly the
    /// order they were queued at park time.
    fn restore_entry(&mut self, i: usize, old: SessionId) {
        let Some(bytes) = self.registry.take_parked(old) else {
            // Validated when the command ran, but claimed by another
            // session since — a genuine race, reported like any miss.
            let entry = &mut self.sessions[i];
            entry.engine.session.telemetry.count("serve.restore.miss");
            if !entry.sink.send(&format!("!restore-miss {old}")) {
                entry.gone = true;
            }
            return;
        };
        let ctl = self.sessions[i].ctl.clone();
        let display = self.sessions[i].display.clone();
        let tel = self.sessions[i].engine.session.telemetry.clone();
        let timer = tel.timer();
        match SessionSnapshot::decode(&bytes) {
            Err(e) => {
                tel.count("serve.restore.error");
                let entry = &mut self.sessions[i];
                if !entry.sink.send(&format!("!restore-failed {old} {e}")) {
                    entry.gone = true;
                }
            }
            Ok(snap) => {
                let mut engine =
                    build_engine(&self.registry, self.flavor, self.telemetry, &ctl, &display);
                let report = snap.restore_into(&mut engine.session);
                let tel = engine.session.telemetry.clone();
                let entry = &mut self.sessions[i];
                // Output the outgoing engine still held is flushed
                // before the swap — it precedes the restore causally
                // and must precede `!restored` on the wire.
                for line in entry.engine.take_app_lines() {
                    if !entry.sink.send(&line) {
                        entry.gone = true;
                    }
                }
                entry.engine = engine;
                entry.last_activity_ms = self.now_ms;
                if !entry.sink.send(&format!("!restored {old}")) {
                    entry.gone = true;
                }
                for line in &snap.outbound {
                    if !entry.sink.send(line) {
                        entry.gone = true;
                    }
                }
                tel.observe_since("serve.restore", timer);
                tel.count("serve.restore.ok");
                tel.add("serve.restore.widgets", report.widgets as u64);
                if report.widgets_skipped > 0 {
                    tel.add(
                        "serve.restore.widgetsSkipped",
                        report.widgets_skipped as u64,
                    );
                }
            }
        }
    }

    fn finish(&mut self, entry: Entry) {
        entry.mailbox.close();
        self.registry.release(entry.id);
        let tel = entry.engine.session.telemetry.clone();
        tel.set_gauge("serve.sessions.active", self.registry.active() as u64);
        // Dropping the entry drops its sink; a channel sink closing is
        // what tells the connection's writer thread to hang up.
    }
}

/// A fully wired serve-mode engine: telemetry per the server flag, and
/// the `serve` and `session` control handlers installed. Used both for
/// freshly attached connections and for restored engines (which share
/// the connection's [`SessionCtl`]).
fn build_engine(
    registry: &Arc<Registry>,
    flavor: Flavor,
    telemetry: bool,
    ctl: &Rc<SessionCtl>,
    display: &Rc<DisplayCtl>,
) -> ProtocolEngine {
    let mut engine = ProtocolEngine::new(flavor);
    if telemetry {
        engine.session.telemetry.set_enabled(true);
    }
    install_serve_control(registry, &mut engine.session);
    install_session_control(registry, ctl, &mut engine.session);
    install_display_control(display, &mut engine.session);
    engine
}

/// Installs the `serve` control handler (registered as a command by
/// wafe-core) into one session's dispatch table.
pub fn install_serve_control(registry: &Arc<Registry>, session: &mut WafeSession) {
    let r = registry.clone();
    let tel = session.telemetry.clone();
    session.controls.borrow_mut().insert(
        "serve".into(),
        Box::new(move |argv| serve_control(&r, &tel, argv)),
    );
}

fn serve_control(
    r: &Arc<Registry>,
    tel: &wafe_trace::Telemetry,
    argv: &[String],
) -> Result<String, String> {
    const USAGE: &str = "serve status|sessions|drain|metrics|limits ?key ?value??";
    match argv.get(1).map(String::as_str) {
        Some("status") if argv.len() == 2 => Ok(wafe_tcl::list_join(&r.status_words())),
        Some("sessions") if argv.len() == 2 => Ok(wafe_tcl::list_join(&r.sessions_words())),
        Some("metrics") if argv.len() == 2 => {
            // Prometheus text exposition: the server-wide registry rows
            // plus this session's telemetry store, key-sorted.
            let mut pairs = r.metrics_pairs();
            pairs.extend(wafe_trace::export::telemetry_pairs(tel));
            pairs.sort();
            Ok(wafe_trace::export::prometheus_text(&pairs))
        }
        Some("drain") if argv.len() == 2 => {
            r.begin_drain();
            Ok(String::new())
        }
        Some("limits") => match argv.len() {
            2 => {
                let words: Vec<String> = LIMIT_KEYS
                    .iter()
                    .flat_map(|k| {
                        [
                            k.to_string(),
                            r.get_limit(k).expect("every listed key resolves"),
                        ]
                    })
                    .collect();
                Ok(wafe_tcl::list_join(&words))
            }
            3 => r.get_limit(&argv[2]).ok_or_else(|| {
                format!(
                    "unknown limit \"{}\": must be one of {}",
                    argv[2],
                    LIMIT_KEYS.join(", ")
                )
            }),
            4 => {
                r.set_limit(&argv[2], &argv[3])?;
                Ok(String::new())
            }
            _ => Err(format!("wrong # args: should be \"{USAGE}\"")),
        },
        _ => Err(format!("wrong # args: should be \"{USAGE}\"")),
    }
}

/// Installs the `session` control handler (registered as a command by
/// wafe-core) into one session's dispatch table. Park and restore only
/// raise flags on `ctl`; the scheduler acts on them after the quantum.
pub fn install_session_control(
    registry: &Arc<Registry>,
    ctl: &Rc<SessionCtl>,
    session: &mut WafeSession,
) {
    let r = registry.clone();
    let c = ctl.clone();
    let tel = session.telemetry.clone();
    session.controls.borrow_mut().insert(
        "session".into(),
        Box::new(move |argv| session_control(&r, &c, &tel, argv)),
    );
}

fn session_control(
    r: &Arc<Registry>,
    ctl: &Rc<SessionCtl>,
    tel: &wafe_trace::Telemetry,
    argv: &[String],
) -> Result<String, String> {
    const USAGE: &str = "session park|restore slot:generation|snapshots";
    match argv.get(1).map(String::as_str) {
        Some("park") if argv.len() == 2 => {
            ctl.park.set(true);
            Ok(String::new())
        }
        Some("restore") if argv.len() == 3 => {
            let id = parse_session_id(&argv[2]).ok_or_else(|| {
                format!(
                    "bad session id \"{}\": should be \"slot:generation\"",
                    argv[2]
                )
            })?;
            if !r.has_parked(id) {
                r.note_restore_miss();
                tel.count("serve.restore.miss");
                return Err(format!("no parked session \"{id}\""));
            }
            *ctl.restore.borrow_mut() = Some(id);
            Ok(String::new())
        }
        Some("snapshots") if argv.len() == 2 => Ok(wafe_tcl::list_join(&r.parked_words())),
        _ => Err(format!("wrong # args: should be \"{USAGE}\"")),
    }
}

fn parse_session_id(s: &str) -> Option<SessionId> {
    let (slot, generation) = s.split_once(':')?;
    Some(SessionId {
        slot: slot.parse().ok()?,
        generation: generation.parse().ok()?,
    })
}
