//! wafe-serve: many concurrent Wafe frontends in one process.
//!
//! The paper binds exactly one application to one Wafe process over a
//! duplex pipe. This crate is the serving layer that removes the 1:1
//! bound: a std-only multi-session server (`waferd`) accepts TCP and
//! Unix-socket connections speaking the *same* `%`-prefixed line
//! protocol — framed by the same [`wafe_ipc::LineCodec`] the pipe uses,
//! so the two transports cannot drift — and runs one headless
//! `WafeSession` per connection.
//!
//! The moving parts, one module each:
//!
//! * [`registry`] — generation-stamped session identities, admission
//!   control (max-sessions, draining) and the server-wide counters
//!   behind the `serve status` Tcl command.
//! * [`mailbox`] — the bounded per-session inbound queue (full = an
//!   explicit `!shed queue-full` reply, never a silent drop) and the
//!   outbound sink abstraction.
//! * [`scheduler`] — the deterministic core: sessions pinned to a
//!   worker, round-robin sweeps of at most `quantum` lines per session
//!   (a flooding client cannot starve a quiet one), idle eviction and
//!   drain timeout on a virtual-tick clock. Everything the tests
//!   assert lives here, with no threads and no wall clock. Idle
//!   eviction *parks* the session — a versioned `SessionSnapshot`
//!   kept by the registry under the generation-stamped id — and a
//!   reconnect saying `session restore <id>` gets it back, queued
//!   outbound lines replayed in order (`docs/checkpoint.md`).
//! * [`event_loop`] — the readiness-driven transport core: one poll(2)
//!   wakeup drains every readable connection into its mailbox (the
//!   batched sweep), the scheduler runs, replies flush — behind the
//!   [`wafe_ipc::Poller`] trait so tests swap in a simulated net.
//! * [`sim`] — that simulated net: scripted byte chunks, accept-queue
//!   errors and readiness with no timing anywhere.
//! * [`server`] — the socket transport: the event-loop workers (default)
//!   or the thread-per-connection baseline, plus graceful drain.
//! * [`display`] — the remote display channel: `%display attach` turns
//!   on compositing and the scheduler ships damage-tracked
//!   [`wafe_display::Frame`]s as `!display frame <hex>` notices, with
//!   input coming back as `%display event <hex>` lines
//!   (`docs/display.md`).
//!
//! Observability flows through `wafe-trace` per session:
//! `serve.accept` / `serve.commands` / `serve.shed` / `serve.evict`
//! counters, `serve.sessions.active` / `serve.queue.depth` gauges and
//! the `serve.dispatch` latency histogram (p50/p90/p99 via `telemetry
//! histogram serve.dispatch`). The `serve status|sessions|drain|limits`
//! command is registered by wafe-core and dispatches into
//! [`scheduler::install_serve_control`].

pub mod display;
pub mod event_loop;
pub mod mailbox;
pub mod registry;
pub mod scheduler;
pub mod server;
pub mod sim;

pub use display::{install_display_control, DisplayCtl};
pub use event_loop::{AcceptLoop, Acceptor, ConnAssign, ConnIo, EventLoop};
pub use mailbox::{Mailbox, OutQueue, SessionSink};
pub use registry::{Limits, Registry, ServerStats, SessionId, ShedReason, LIMIT_KEYS};
pub use scheduler::{install_serve_control, install_session_control, Scheduler, SessionCtl};
pub use server::{IoModel, Server, ServerConfig};
pub use sim::{SimClient, SimNet};
