//! The per-session mailbox and reply sink — the two hand-off points
//! between a connection's transport threads and the worker that owns
//! the session.
//!
//! A mailbox is the *inbound* half: the reader thread pushes decoded
//! lines, the scheduler pops them a quantum at a time. It is bounded —
//! a full mailbox refuses the push and the transport answers the client
//! with `!shed queue-full` instead of buffering without limit. The sink
//! is the *outbound* half: everything the session wants the application
//! to read (echo output, shed/evict notices) goes through it, either
//! into an in-memory buffer (deterministic tests) or an `mpsc` channel
//! feeding the connection's writer thread.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// A bounded inbound line queue, shared between one reader thread and
/// one scheduler.
pub struct Mailbox {
    queue: Mutex<VecDeque<String>>,
    cap: usize,
    closed: AtomicBool,
    shed: AtomicU64,
}

impl Mailbox {
    /// A mailbox holding at most `cap` lines.
    pub fn new(cap: usize) -> Arc<Mailbox> {
        Arc::new(Mailbox {
            queue: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
            closed: AtomicBool::new(false),
            shed: AtomicU64::new(0),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<String>> {
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueues one line. `false` means the line was shed: the mailbox
    /// is full (counted here) or closed.
    pub fn push(&self, line: String) -> bool {
        if self.is_closed() {
            return false;
        }
        let mut q = self.lock();
        if q.len() >= self.cap {
            drop(q);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        q.push_back(line);
        true
    }

    /// Dequeues the oldest line.
    pub fn pop(&self) -> Option<String> {
        self.lock().pop_front()
    }

    /// Lines currently queued.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Marks the inbound direction finished (EOF, eviction, drain);
    /// further pushes are refused, queued lines still drain.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    /// Whether the inbound direction is finished.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Takes (and resets) the count of lines shed since the last call.
    pub fn take_shed(&self) -> u64 {
        self.shed.swap(0, Ordering::Relaxed)
    }
}

/// The outbound line queue between a session and the event loop that
/// flushes its connection. Unlike the `mpsc` channel the thread model
/// uses, both ends are polled by the same worker, so this is a plain
/// locked deque plus two completion flags: `sink_closed` (the session
/// is finished; flush what is queued, then close the socket) and
/// `receiver_gone` (the client vanished; drop everything pushed).
#[derive(Default)]
struct OutQueueInner {
    lines: VecDeque<String>,
    /// At most one display frame in flight per connection. A newer
    /// frame *replaces* an unsent one (coalesce-to-latest) — the
    /// scheduler re-merges the replaced frame's damage, so a slow
    /// client falls behind in time, never in content, and the queue
    /// stays bounded no matter how fast the screen changes.
    frame: Option<String>,
    sink_closed: bool,
    receiver_gone: bool,
}

/// Shared outbound queue for the event-loop transport.
#[derive(Default)]
pub struct OutQueue {
    inner: Mutex<OutQueueInner>,
}

impl OutQueue {
    pub fn new() -> Arc<OutQueue> {
        Arc::new(OutQueue::default())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, OutQueueInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueues one line; `false` means the client side is gone.
    pub fn push(&self, line: &str) -> bool {
        let mut q = self.lock();
        if q.receiver_gone {
            return false;
        }
        q.lines.push_back(line.to_string());
        true
    }

    /// Dequeues the oldest line (the event loop's flush pass). Ordinary
    /// lines drain first; the frame slot goes last, so protocol replies
    /// are never delayed behind a bulky frame.
    pub fn pop(&self) -> Option<String> {
        let mut q = self.lock();
        if let Some(line) = q.lines.pop_front() {
            return Some(line);
        }
        q.frame.take()
    }

    /// Stores a display frame, replacing any unsent one. `false` means
    /// the client side is gone.
    pub fn set_frame(&self, line: &str) -> bool {
        let mut q = self.lock();
        if q.receiver_gone {
            return false;
        }
        q.frame = Some(line.to_string());
        true
    }

    /// Whether the frame slot is free (nothing unsent).
    pub fn frame_slot_free(&self) -> bool {
        self.lock().frame.is_none()
    }

    /// Lines waiting to be written (the frame slot counts as one).
    pub fn len(&self) -> usize {
        let q = self.lock();
        q.lines.len() + q.frame.is_some() as usize
    }

    pub fn is_empty(&self) -> bool {
        let q = self.lock();
        q.lines.is_empty() && q.frame.is_none()
    }

    /// The session finished; once the queue drains the connection
    /// should be closed.
    pub fn close_sink(&self) {
        self.lock().sink_closed = true;
    }

    pub fn sink_closed(&self) -> bool {
        self.lock().sink_closed
    }

    /// The client vanished; future pushes are refused.
    pub fn mark_receiver_gone(&self) {
        let mut q = self.lock();
        q.receiver_gone = true;
        q.lines.clear();
        q.frame = None;
    }

    /// Session done *and* everything flushed — time to close the
    /// connection.
    pub fn is_finished(&self) -> bool {
        let q = self.lock();
        q.sink_closed && q.lines.is_empty() && q.frame.is_none()
    }
}

/// Where a session's outbound lines go.
pub enum SessionSink {
    /// Collected in memory — the deterministic tests read this.
    Buffer(Arc<Mutex<Vec<String>>>),
    /// Fed to the connection's writer thread. A failed send means the
    /// client is gone.
    Channel(mpsc::Sender<String>),
    /// Queued for the owning worker's event loop to flush. Dropping the
    /// sink (the scheduler releasing the session) closes the queue so
    /// the event loop flushes the tail and closes the socket.
    Queue(Arc<OutQueue>),
}

impl SessionSink {
    /// A buffer sink plus the handle to read it.
    pub fn buffer() -> (SessionSink, Arc<Mutex<Vec<String>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (SessionSink::Buffer(buf.clone()), buf)
    }

    /// Delivers one line; `false` means the receiving side is gone.
    pub fn send(&self, line: &str) -> bool {
        match self {
            SessionSink::Buffer(buf) => {
                buf.lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(line.to_string());
                true
            }
            SessionSink::Channel(tx) => tx.send(line.to_string()).is_ok(),
            SessionSink::Queue(q) => q.push(line),
        }
    }

    /// Whether a display frame can be sent right now. Buffer and
    /// channel sinks always accept; a queue sink accepts only while its
    /// single frame slot is free — the scheduler's backpressure signal
    /// to keep accumulating damage instead of building frames.
    pub fn can_send_frame(&self) -> bool {
        match self {
            SessionSink::Buffer(_) | SessionSink::Channel(_) => true,
            SessionSink::Queue(q) => q.frame_slot_free(),
        }
    }

    /// Delivers one display frame line; `false` means the receiving
    /// side is gone. On a queue sink the frame takes the dedicated
    /// slot rather than the line queue.
    pub fn send_frame(&self, line: &str) -> bool {
        match self {
            SessionSink::Buffer(_) | SessionSink::Channel(_) => self.send(line),
            SessionSink::Queue(q) => q.set_frame(line),
        }
    }
}

impl Drop for SessionSink {
    fn drop(&mut self) {
        if let SessionSink::Queue(q) = self {
            q.close_sink();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_sheds_when_full_and_refuses_when_closed() {
        let m = Mailbox::new(2);
        assert!(m.push("a".into()));
        assert!(m.push("b".into()));
        assert!(!m.push("c".into()), "over capacity");
        assert_eq!(m.take_shed(), 1);
        assert_eq!(m.pop().as_deref(), Some("a"));
        assert!(m.push("c".into()), "room again after a pop");
        m.close();
        assert!(!m.push("d".into()), "closed");
        assert_eq!(m.take_shed(), 0, "closed pushes are not queue sheds");
        assert_eq!(m.len(), 2, "queued lines survive the close");
    }

    #[test]
    fn buffer_sink_collects_in_order() {
        let (sink, buf) = SessionSink::buffer();
        assert!(sink.send("one"));
        assert!(sink.send("two"));
        assert_eq!(*buf.lock().unwrap(), vec!["one", "two"]);
    }

    #[test]
    fn out_queue_flush_then_close_protocol() {
        let q = OutQueue::new();
        let sink = SessionSink::Queue(q.clone());
        assert!(sink.send("reply"));
        assert!(!q.is_finished(), "open and non-empty");
        drop(sink);
        assert!(q.sink_closed());
        assert!(!q.is_finished(), "tail must flush before close");
        assert_eq!(q.pop().as_deref(), Some("reply"));
        assert!(q.is_finished());
        q.mark_receiver_gone();
        assert!(!q.push("void"), "gone client refuses pushes");
    }

    #[test]
    fn frame_slot_coalesces_and_drains_after_lines() {
        let q = OutQueue::new();
        let sink = SessionSink::Queue(q.clone());
        assert!(sink.can_send_frame());
        assert!(sink.send_frame("!display frame aa"));
        assert!(!sink.can_send_frame(), "one frame in flight");
        assert!(sink.send_frame("!display frame bb"), "newer frame replaces");
        assert!(sink.send("reply"));
        assert_eq!(q.len(), 2, "lines plus the one frame slot");
        assert_eq!(q.pop().as_deref(), Some("reply"), "replies drain first");
        assert_eq!(q.pop().as_deref(), Some("!display frame bb"));
        assert!(sink.can_send_frame(), "slot free once flushed");
        q.mark_receiver_gone();
        assert!(!sink.send_frame("!display frame cc"), "gone client refuses");
    }

    #[test]
    fn channel_sink_reports_a_gone_client() {
        let (tx, rx) = mpsc::channel();
        let sink = SessionSink::Channel(tx);
        assert!(sink.send("hello"));
        assert_eq!(rx.recv().unwrap(), "hello");
        drop(rx);
        assert!(!sink.send("void"));
    }
}
