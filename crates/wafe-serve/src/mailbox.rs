//! The per-session mailbox and reply sink — the two hand-off points
//! between a connection's transport threads and the worker that owns
//! the session.
//!
//! A mailbox is the *inbound* half: the reader thread pushes decoded
//! lines, the scheduler pops them a quantum at a time. It is bounded —
//! a full mailbox refuses the push and the transport answers the client
//! with `!shed queue-full` instead of buffering without limit. The sink
//! is the *outbound* half: everything the session wants the application
//! to read (echo output, shed/evict notices) goes through it, either
//! into an in-memory buffer (deterministic tests) or an `mpsc` channel
//! feeding the connection's writer thread.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// A bounded inbound line queue, shared between one reader thread and
/// one scheduler.
pub struct Mailbox {
    queue: Mutex<VecDeque<String>>,
    cap: usize,
    closed: AtomicBool,
    shed: AtomicU64,
}

impl Mailbox {
    /// A mailbox holding at most `cap` lines.
    pub fn new(cap: usize) -> Arc<Mailbox> {
        Arc::new(Mailbox {
            queue: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
            closed: AtomicBool::new(false),
            shed: AtomicU64::new(0),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<String>> {
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueues one line. `false` means the line was shed: the mailbox
    /// is full (counted here) or closed.
    pub fn push(&self, line: String) -> bool {
        if self.is_closed() {
            return false;
        }
        let mut q = self.lock();
        if q.len() >= self.cap {
            drop(q);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        q.push_back(line);
        true
    }

    /// Dequeues the oldest line.
    pub fn pop(&self) -> Option<String> {
        self.lock().pop_front()
    }

    /// Lines currently queued.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Marks the inbound direction finished (EOF, eviction, drain);
    /// further pushes are refused, queued lines still drain.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    /// Whether the inbound direction is finished.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Takes (and resets) the count of lines shed since the last call.
    pub fn take_shed(&self) -> u64 {
        self.shed.swap(0, Ordering::Relaxed)
    }
}

/// Where a session's outbound lines go.
pub enum SessionSink {
    /// Collected in memory — the deterministic tests read this.
    Buffer(Arc<Mutex<Vec<String>>>),
    /// Fed to the connection's writer thread. A failed send means the
    /// client is gone.
    Channel(mpsc::Sender<String>),
}

impl SessionSink {
    /// A buffer sink plus the handle to read it.
    pub fn buffer() -> (SessionSink, Arc<Mutex<Vec<String>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (SessionSink::Buffer(buf.clone()), buf)
    }

    /// Delivers one line; `false` means the receiving side is gone.
    pub fn send(&self, line: &str) -> bool {
        match self {
            SessionSink::Buffer(buf) => {
                buf.lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(line.to_string());
                true
            }
            SessionSink::Channel(tx) => tx.send(line.to_string()).is_ok(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_sheds_when_full_and_refuses_when_closed() {
        let m = Mailbox::new(2);
        assert!(m.push("a".into()));
        assert!(m.push("b".into()));
        assert!(!m.push("c".into()), "over capacity");
        assert_eq!(m.take_shed(), 1);
        assert_eq!(m.pop().as_deref(), Some("a"));
        assert!(m.push("c".into()), "room again after a pop");
        m.close();
        assert!(!m.push("d".into()), "closed");
        assert_eq!(m.take_shed(), 0, "closed pushes are not queue sheds");
        assert_eq!(m.len(), 2, "queued lines survive the close");
    }

    #[test]
    fn buffer_sink_collects_in_order() {
        let (sink, buf) = SessionSink::buffer();
        assert!(sink.send("one"));
        assert!(sink.send("two"));
        assert_eq!(*buf.lock().unwrap(), vec!["one", "two"]);
    }

    #[test]
    fn channel_sink_reports_a_gone_client() {
        let (tx, rx) = mpsc::channel();
        let sink = SessionSink::Channel(tx);
        assert!(sink.send("hello"));
        assert_eq!(rx.recv().unwrap(), "hello");
        drop(rx);
        assert!(!sink.send("void"));
    }
}
