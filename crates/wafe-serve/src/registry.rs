//! The session registry: generation-stamped identities, admission
//! control and the server-wide counters behind `serve status`.
//!
//! The registry is the state shared between the accept loop, the worker
//! event loops and the `serve` Tcl command. To keep that sharing off
//! the hot path it is *sharded*: slots, per-slot bookkeeping, parked
//! snapshots and the event counters live in one [`Mutex`]-guarded shard
//! per worker, and a session's stamped id pins it to its shard for life
//! (`shard = slot % nshards`). Workers therefore never contend on each
//! other's locks — only `serve status` / `serve metrics` walk all
//! shards, aggregating at read time. The only cross-shard state is a
//! pair of atomics (the active count backing exact `maxSessions`
//! admission and the draining flag) plus rarely-touched configuration
//! (limits, park directory).

use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A session identity that cannot be confused with a later tenant of
/// the same slot: the slot index is reused, the generation never is.
/// A release carrying a stale generation is ignored, which is what
/// makes "evict and the transport notices later" race-free.
///
/// The slot also encodes placement: `slot % nshards` is the registry
/// shard and (with one worker per shard) the worker that owns the
/// session, so routing is a modulo, not a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId {
    /// Index into the registry's slot table (reused).
    pub slot: u32,
    /// Bumped every time the slot is released (never reused).
    pub generation: u32,
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.slot, self.generation)
    }
}

/// Why an admission was refused. Sheds are explicit protocol replies
/// (`!shed <reason>`), never silent drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The `maxSessions` limit is reached.
    MaxSessions,
    /// The server is draining: no new sessions, existing ones flush.
    Draining,
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShedReason::MaxSessions => "max-sessions",
            ShedReason::Draining => "draining",
        })
    }
}

/// Tuning knobs of the server, mutable at runtime via `serve limits`.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Concurrent sessions admitted before `!shed max-sessions`.
    pub max_sessions: usize,
    /// Lines a session's mailbox holds before `!shed queue-full`
    /// (applies to mailboxes created after a change).
    pub queue_depth: usize,
    /// Lines one session may run per scheduler sweep — the fairness
    /// quantum: a flooding client only ever gets this much ahead.
    pub quantum: usize,
    /// Evict a session idle for this many virtual milliseconds
    /// (0 = never).
    pub idle_evict_ms: u64,
    /// After a drain begins, sessions still busy past this many virtual
    /// milliseconds are cut off with their queues unflushed.
    pub drain_timeout_ms: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_sessions: 128,
            queue_depth: 256,
            quantum: 32,
            idle_evict_ms: 0,
            drain_timeout_ms: 5_000,
        }
    }
}

/// The Tcl-visible limit keys, in `serve limits` listing order.
pub const LIMIT_KEYS: &[&str] = &[
    "maxSessions",
    "queueDepth",
    "quantum",
    "idleEvict",
    "drainTimeout",
];

impl Limits {
    /// The value of a Tcl-visible key ([`LIMIT_KEYS`]).
    pub fn get(&self, key: &str) -> Option<String> {
        Some(match key {
            "maxSessions" => self.max_sessions.to_string(),
            "queueDepth" => self.queue_depth.to_string(),
            "quantum" => self.quantum.to_string(),
            "idleEvict" => self.idle_evict_ms.to_string(),
            "drainTimeout" => self.drain_timeout_ms.to_string(),
            _ => return None,
        })
    }

    /// Sets a Tcl-visible key from its string form.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        let n: u64 = value
            .trim()
            .parse()
            .map_err(|_| format!("expected integer but got \"{value}\""))?;
        match key {
            "maxSessions" => self.max_sessions = n as usize,
            "queueDepth" => self.queue_depth = n as usize,
            "quantum" => self.quantum = (n as usize).max(1),
            "idleEvict" => self.idle_evict_ms = n,
            "drainTimeout" => self.drain_timeout_ms = n,
            _ => {
                return Err(format!(
                    "unknown limit \"{key}\": must be one of {}",
                    LIMIT_KEYS.join(", ")
                ))
            }
        }
        Ok(())
    }
}

/// Server-wide event totals (`serve status`). Kept per shard and summed
/// at read time.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Sessions admitted.
    pub accepted: u64,
    /// Connections refused at admission (max-sessions or draining).
    pub shed_admission: u64,
    /// Inbound lines refused because a session's mailbox was full.
    pub shed_queue: u64,
    /// Sessions evicted for idling past `idleEvict`.
    pub evicted: u64,
    /// Sessions released (any cause: disconnect, quit, evict, drain).
    pub closed: u64,
    /// Protocol lines dispatched across all sessions.
    pub commands: u64,
    /// Sessions parked (idle eviction, drain park-all, `session park`).
    pub parked: u64,
    /// Parked snapshots restored into a reconnecting session.
    pub restored: u64,
    /// Restore attempts naming an unknown or already-taken snapshot.
    pub restore_miss: u64,
    /// `accept(2)` failures (fd exhaustion etc.) the accept loop backed
    /// off from instead of spinning on.
    pub accept_errors: u64,
}

impl ServerStats {
    fn add(&mut self, o: &ServerStats) {
        self.accepted += o.accepted;
        self.shed_admission += o.shed_admission;
        self.shed_queue += o.shed_queue;
        self.evicted += o.evicted;
        self.closed += o.closed;
        self.commands += o.commands;
        self.parked += o.parked;
        self.restored += o.restored;
        self.restore_miss += o.restore_miss;
        self.accept_errors += o.accept_errors;
    }
}

/// One parked session's checkpoint, held by the registry until a
/// reconnect claims it (or, with a park directory, until a later
/// process claims it from disk).
#[derive(Debug, Clone)]
struct Parked {
    bytes: Vec<u8>,
    parked_ms: u64,
}

/// Per-session bookkeeping for the `serve sessions` listing.
#[derive(Debug, Clone)]
struct Slot {
    peer: String,
    admitted_ms: u64,
    commands: u64,
}

/// One registry shard: everything a single worker touches for its own
/// sessions. Slot vectors are indexed by *local* index; the global slot
/// is `local * nshards + shard`.
#[derive(Default)]
struct ShardInner {
    /// `generations[i]` is the generation the *next or current* tenant
    /// of the shard's local slot `i` carries; bumped on release.
    generations: Vec<u32>,
    slots: Vec<Option<Slot>>,
    stats: ServerStats,
    /// Parked snapshots, keyed by the full stamped identity. The
    /// generation stamp is what makes park/reconnect race-free: a slot
    /// may be re-tenanted immediately, but `slot:generation` never
    /// recurs, so a parked id can neither collide nor be forged stale.
    parked: HashMap<(u32, u32), Parked>,
    /// Mailbox-depth gauge, updated by the shard's event loop after
    /// each sweep (the `serve status` shards breakdown).
    queued: usize,
}

/// The shared half of the server. Cheap to clone behind an `Arc`; every
/// method takes `&self`.
pub struct Registry {
    shards: Vec<Mutex<ShardInner>>,
    /// Live session count across all shards; admission reserves with a
    /// CAS against `maxSessions`, so the limit stays exact without a
    /// global lock.
    active: AtomicUsize,
    /// Round-robin cursor spreading admissions across shards.
    next_admit: AtomicUsize,
    limits: Mutex<Limits>,
    /// Snapshot persistence directory (`waferd --park-dir`); parks are
    /// written through and restores remove the file.
    park_dir: Mutex<Option<PathBuf>>,
    draining: AtomicBool,
    /// Readiness backend surfaced in `serve status` (`poll`, `sim`,
    /// `threads`; `none` before a server attaches).
    poller: Mutex<&'static str>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new(Limits::default())
    }
}

impl Registry {
    /// A single-shard registry enforcing the given limits — the embedded
    /// and test configuration, where slot numbers are dense.
    pub fn new(limits: Limits) -> Self {
        Registry::with_shards(limits, 1)
    }

    /// A registry with one shard per worker.
    pub fn with_shards(limits: Limits, nshards: usize) -> Self {
        let nshards = nshards.max(1);
        Registry {
            shards: (0..nshards)
                .map(|_| Mutex::new(ShardInner::default()))
                .collect(),
            active: AtomicUsize::new(0),
            next_admit: AtomicUsize::new(0),
            limits: Mutex::new(limits),
            park_dir: Mutex::new(None),
            draining: AtomicBool::new(false),
            poller: Mutex::new("none"),
        }
    }

    /// How many shards (== workers) the registry was built for.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a stamped id lives on.
    pub fn shard_of(&self, id: SessionId) -> usize {
        id.slot as usize % self.shards.len()
    }

    fn shard(&self, i: usize) -> std::sync::MutexGuard<'_, ShardInner> {
        self.shards[i].lock().unwrap_or_else(|p| p.into_inner())
    }

    fn shard_for_slot(&self, slot: u32) -> std::sync::MutexGuard<'_, ShardInner> {
        self.shard(slot as usize % self.shards.len())
    }

    /// Records which readiness backend the server runs on.
    pub fn set_poller_backend(&self, name: &'static str) {
        *self.poller.lock().unwrap_or_else(|p| p.into_inner()) = name;
    }

    /// The active readiness backend (`serve status` `poller` key).
    pub fn poller_backend(&self) -> &'static str {
        *self.poller.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Updates one shard's mailbox-depth gauge (set by its event loop
    /// after each sweep).
    pub fn set_shard_queued(&self, shard: usize, queued: usize) {
        if shard < self.shards.len() {
            self.shard(shard).queued = queued;
        }
    }

    /// Admission control: a slot for a new session, or the reason it
    /// was shed. The active count is reserved with a CAS first, so
    /// `maxSessions` stays exact even with shards admitting in
    /// parallel.
    pub fn admit(&self, peer: &str, now_ms: u64) -> Result<SessionId, ShedReason> {
        let cursor = self.next_admit.fetch_add(1, Ordering::Relaxed);
        let nshards = self.shards.len();
        if self.draining() {
            self.shard(cursor % nshards).stats.shed_admission += 1;
            return Err(ShedReason::Draining);
        }
        let max = self.limits().max_sessions;
        let mut cur = self.active.load(Ordering::Relaxed);
        loop {
            if cur >= max {
                self.shard(cursor % nshards).stats.shed_admission += 1;
                return Err(ShedReason::MaxSessions);
            }
            match self.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::SeqCst,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
        let shard_idx = cursor % nshards;
        let slot = Slot {
            peer: peer.to_string(),
            admitted_ms: now_ms,
            commands: 0,
        };
        let mut shard = self.shard(shard_idx);
        let local = match shard.slots.iter().position(|s| s.is_none()) {
            Some(i) => {
                shard.slots[i] = Some(slot);
                i
            }
            None => {
                shard.slots.push(Some(slot));
                shard.generations.push(1);
                shard.slots.len() - 1
            }
        };
        shard.stats.accepted += 1;
        Ok(SessionId {
            slot: (local * nshards + shard_idx) as u32,
            generation: shard.generations[local],
        })
    }

    /// Releases a session's slot. A stale id (older generation, or a
    /// slot already freed) is ignored and returns false.
    pub fn release(&self, id: SessionId) -> bool {
        let nshards = self.shards.len();
        let local = id.slot as usize / nshards;
        let mut shard = self.shard_for_slot(id.slot);
        if local >= shard.slots.len()
            || shard.generations[local] != id.generation
            || shard.slots[local].is_none()
        {
            return false;
        }
        shard.slots[local] = None;
        shard.generations[local] += 1;
        shard.stats.closed += 1;
        drop(shard);
        self.active.fetch_sub(1, Ordering::SeqCst);
        true
    }

    /// Adds dispatched-line counts to a session and its shard's total.
    pub fn note_commands(&self, id: SessionId, n: u64) {
        let nshards = self.shards.len();
        let local = id.slot as usize / nshards;
        let mut shard = self.shard_for_slot(id.slot);
        shard.stats.commands += n;
        if local < shard.slots.len() && shard.generations[local] == id.generation {
            if let Some(slot) = shard.slots[local].as_mut() {
                slot.commands += n;
            }
        }
    }

    /// Counts one queue-full shed against the session's shard (the
    /// transport replies `!shed queue-full` to the client).
    pub fn note_shed_queue(&self, id: SessionId) {
        self.shard_for_slot(id.slot).stats.shed_queue += 1;
    }

    /// Counts one idle eviction against the session's shard.
    pub fn note_evicted(&self, id: SessionId) {
        self.shard_for_slot(id.slot).stats.evicted += 1;
    }

    /// Counts one accept-loop failure (`EMFILE`/`ENFILE` back-off).
    pub fn note_accept_error(&self) {
        self.shard(0).stats.accept_errors += 1;
    }

    /// Counts a restore attempt that named an unknown snapshot (the
    /// in-band `session restore` validation path; [`take_parked`]
    /// counts its own misses).
    ///
    /// [`take_parked`]: Registry::take_parked
    pub fn note_restore_miss(&self) {
        self.shard(0).stats.restore_miss += 1;
    }

    /// Sessions currently registered.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// The server-wide totals, summed across shards.
    pub fn stats(&self) -> ServerStats {
        let mut total = ServerStats::default();
        for i in 0..self.shards.len() {
            total.add(&self.shard(i).stats);
        }
        total
    }

    /// A copy of the current limits.
    pub fn limits(&self) -> Limits {
        self.limits
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Reads one Tcl-visible limit.
    pub fn get_limit(&self, key: &str) -> Option<String> {
        self.limits().get(key)
    }

    /// Sets one Tcl-visible limit.
    pub fn set_limit(&self, key: &str, value: &str) -> Result<(), String> {
        self.limits
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .set(key, value)
    }

    fn park_dir(&self) -> Option<PathBuf> {
        self.park_dir
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Parks a session's encoded snapshot under its stamped identity.
    /// With a park directory configured, the snapshot is also written
    /// through to `park-<slot>-<generation>.wsnap` so it survives a
    /// process restart; a write failure fails the park loudly rather
    /// than silently keeping a memory-only checkpoint.
    pub fn park(&self, id: SessionId, bytes: Vec<u8>, now_ms: u64) -> Result<(), String> {
        if let Some(dir) = self.park_dir() {
            let path = dir.join(park_file_name(id));
            std::fs::write(&path, &bytes)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        let mut shard = self.shard_for_slot(id.slot);
        shard.parked.insert(
            (id.slot, id.generation),
            Parked {
                bytes,
                parked_ms: now_ms,
            },
        );
        shard.stats.parked += 1;
        Ok(())
    }

    /// Claims a parked snapshot, removing it from the registry (and the
    /// park directory, if one is configured). `None` counts a restore
    /// miss: the id was never parked, or was already claimed.
    pub fn take_parked(&self, id: SessionId) -> Option<Vec<u8>> {
        let mut shard = self.shard_for_slot(id.slot);
        match shard.parked.remove(&(id.slot, id.generation)) {
            Some(p) => {
                shard.stats.restored += 1;
                drop(shard);
                if let Some(dir) = self.park_dir() {
                    let _ = std::fs::remove_file(dir.join(park_file_name(id)));
                }
                Some(p.bytes)
            }
            None => {
                shard.stats.restore_miss += 1;
                None
            }
        }
    }

    /// Whether a snapshot is parked under this exact stamped identity.
    pub fn has_parked(&self, id: SessionId) -> bool {
        self.shard_for_slot(id.slot)
            .parked
            .contains_key(&(id.slot, id.generation))
    }

    /// Snapshots currently parked.
    pub fn parked_count(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.shard(i).parked.len())
            .sum()
    }

    /// `session snapshots` payload: one `{id bytes parkedMs}` sublist
    /// per parked snapshot, in id order.
    pub fn parked_words(&self) -> Vec<String> {
        let mut rows: Vec<((u32, u32), usize, u64)> = Vec::new();
        for i in 0..self.shards.len() {
            let shard = self.shard(i);
            for (&key, p) in &shard.parked {
                rows.push((key, p.bytes.len(), p.parked_ms));
            }
        }
        rows.sort();
        rows.into_iter()
            .map(|((slot, generation), len, ms)| {
                wafe_tcl::list_join(&[
                    SessionId { slot, generation }.to_string(),
                    len.to_string(),
                    ms.to_string(),
                ])
            })
            .collect()
    }

    /// Whether parked snapshots are written through to disk — when
    /// true, a graceful drain parks every live session instead of
    /// dropping it, so the sessions survive the restart.
    pub fn park_persistent(&self) -> bool {
        self.park_dir().is_some()
    }

    /// Configures the park directory and loads any snapshots a previous
    /// process left there. Loading seeds each slot's generation floor
    /// past the parked generation, so new admissions can never mint an
    /// id that collides with a pre-restart parked one. Returns how many
    /// snapshots were loaded.
    pub fn set_park_dir(&self, dir: PathBuf) -> Result<usize, String> {
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let mut loaded = Vec::new();
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
            let name = entry.file_name();
            let Some(id) = parse_park_file_name(&name.to_string_lossy()) else {
                continue;
            };
            let bytes = std::fs::read(entry.path())
                .map_err(|e| format!("cannot read {}: {e}", entry.path().display()))?;
            loaded.push((id, bytes));
        }
        let nshards = self.shards.len();
        for (id, bytes) in loaded {
            let local = id.slot as usize / nshards;
            let mut shard = self.shard_for_slot(id.slot);
            if local >= shard.slots.len() {
                shard.slots.resize(local + 1, None);
                shard.generations.resize(local + 1, 1);
            }
            shard.generations[local] = shard.generations[local].max(id.generation + 1);
            shard.parked.insert(
                (id.slot, id.generation),
                Parked {
                    bytes,
                    parked_ms: 0,
                },
            );
        }
        *self.park_dir.lock().unwrap_or_else(|p| p.into_inner()) = Some(dir);
        Ok(self.parked_count())
    }

    /// Whether a drain is in progress.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Starts the graceful drain: acceptors stop admitting, schedulers
    /// flush their mailboxes and release every session.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// `serve status` payload: a flat key/value word list. The original
    /// aggregate keys come first (their positions are part of the wire
    /// contract); the shard-era keys — `acceptErrors`, `poller` and the
    /// per-shard `shards` breakdown — are appended at the end.
    pub fn status_words(&self) -> Vec<String> {
        let draining = self.draining();
        let s = self.stats();
        let mut shard_rows = Vec::new();
        for i in 0..self.shards.len() {
            let shard = self.shard(i);
            let active = shard.slots.iter().filter(|s| s.is_some()).count();
            shard_rows.push(wafe_tcl::list_join(&[
                "shard".to_string(),
                i.to_string(),
                "active".to_string(),
                active.to_string(),
                "queued".to_string(),
                shard.queued.to_string(),
            ]));
        }
        [
            (
                "state",
                if draining { "draining" } else { "serving" }.into(),
            ),
            ("active", self.active().to_string()),
            ("accepted", s.accepted.to_string()),
            ("shedAdmission", s.shed_admission.to_string()),
            ("shedQueue", s.shed_queue.to_string()),
            ("evicted", s.evicted.to_string()),
            ("closed", s.closed.to_string()),
            ("commands", s.commands.to_string()),
            ("parked", s.parked.to_string()),
            ("restored", s.restored.to_string()),
            ("restoreMiss", s.restore_miss.to_string()),
            ("parkedNow", self.parked_count().to_string()),
            ("acceptErrors", s.accept_errors.to_string()),
            ("poller", self.poller_backend().to_string()),
            ("shards", wafe_tcl::list_join(&shard_rows)),
        ]
        .into_iter()
        .flat_map(|(k, v): (&str, String)| [k.to_string(), v])
        .collect()
    }

    /// The server-level rows of the metrics exposition (`serve metrics`
    /// and waferd's `--metrics` endpoint): the `serve status` facts as
    /// key-sorted numeric pairs under `serve.server.*` (the non-numeric
    /// `state` word becomes the 0/1 `draining` flag).
    pub fn metrics_pairs(&self) -> Vec<(String, String)> {
        let draining = self.draining();
        let s = self.stats();
        let mut pairs: Vec<(String, String)> = [
            ("draining", draining as u64),
            ("active", self.active() as u64),
            ("accepted", s.accepted),
            ("shedAdmission", s.shed_admission),
            ("shedQueue", s.shed_queue),
            ("evicted", s.evicted),
            ("closed", s.closed),
            ("commands", s.commands),
            ("parked", s.parked),
            ("restored", s.restored),
            ("restoreMiss", s.restore_miss),
            ("parkedNow", self.parked_count() as u64),
            ("acceptErrors", s.accept_errors),
        ]
        .into_iter()
        .map(|(k, v)| (format!("serve.server.{k}"), v.to_string()))
        .collect();
        pairs.sort();
        pairs
    }

    /// `serve sessions` payload: one `{id peer admittedMs commands}`
    /// sublist per live session, in slot order.
    pub fn sessions_words(&self) -> Vec<String> {
        let nshards = self.shards.len();
        let mut rows: Vec<(u32, String)> = Vec::new();
        for i in 0..nshards {
            let shard = self.shard(i);
            for (local, s) in shard.slots.iter().enumerate() {
                let Some(s) = s.as_ref() else { continue };
                let id = SessionId {
                    slot: (local * nshards + i) as u32,
                    generation: shard.generations[local],
                };
                rows.push((
                    id.slot,
                    wafe_tcl::list_join(&[
                        id.to_string(),
                        s.peer.clone(),
                        s.admitted_ms.to_string(),
                        s.commands.to_string(),
                    ]),
                ));
            }
        }
        rows.sort();
        rows.into_iter().map(|(_, w)| w).collect()
    }
}

/// `park-<slot>-<generation>.wsnap`, the on-disk name of one parked
/// snapshot.
fn park_file_name(id: SessionId) -> String {
    format!("park-{}-{}.wsnap", id.slot, id.generation)
}

fn parse_park_file_name(name: &str) -> Option<SessionId> {
    let rest = name.strip_prefix("park-")?.strip_suffix(".wsnap")?;
    let (slot, generation) = rest.split_once('-')?;
    Some(SessionId {
        slot: slot.parse().ok()?,
        generation: generation.parse().ok()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_never_reuse() {
        let r = Registry::new(Limits::default());
        let a = r.admit("one", 0).unwrap();
        assert_eq!((a.slot, a.generation), (0, 1));
        assert!(r.release(a));
        let b = r.admit("two", 0).unwrap();
        assert_eq!(b.slot, a.slot, "slot is reused");
        assert_eq!(b.generation, 2, "generation is not");
        assert!(!r.release(a), "stale release is ignored");
        assert_eq!(r.active(), 1);
    }

    #[test]
    fn admission_sheds_at_max_and_while_draining() {
        let r = Registry::new(Limits {
            max_sessions: 2,
            ..Limits::default()
        });
        r.admit("a", 0).unwrap();
        let b = r.admit("b", 0).unwrap();
        assert_eq!(r.admit("c", 0), Err(ShedReason::MaxSessions));
        r.release(b);
        r.admit("c", 0).unwrap();
        r.begin_drain();
        assert_eq!(r.admit("d", 0), Err(ShedReason::Draining));
        assert_eq!(r.stats().shed_admission, 2);
    }

    #[test]
    fn limits_roundtrip_through_tcl_keys() {
        let r = Registry::default();
        for key in LIMIT_KEYS {
            assert!(r.get_limit(key).is_some(), "{key} must be readable");
        }
        r.set_limit("maxSessions", "3").unwrap();
        assert_eq!(r.limits().max_sessions, 3);
        r.set_limit("quantum", "0").unwrap();
        assert_eq!(r.limits().quantum, 1, "quantum floor keeps progress");
        assert!(r.set_limit("nosuchknob", "1").is_err());
        assert!(r.set_limit("quantum", "fast").is_err());
    }

    #[test]
    fn parked_snapshots_are_claimed_exactly_once() {
        let r = Registry::default();
        let id = r.admit("one", 0).unwrap();
        r.park(id, vec![1, 2, 3], 7).unwrap();
        assert!(r.has_parked(id));
        assert_eq!(r.parked_words(), vec!["0:1 3 7".to_string()]);
        r.release(id);
        let reused = r.admit("two", 0).unwrap();
        assert_eq!(reused.slot, id.slot);
        assert!(
            !r.has_parked(reused),
            "new tenant's stamped id must not see the old tenant's snapshot"
        );
        assert_eq!(r.take_parked(id), Some(vec![1, 2, 3]));
        assert_eq!(r.take_parked(id), None, "second claim is a miss");
        let s = r.stats();
        assert_eq!((s.parked, s.restored, s.restore_miss), (1, 1, 1));
    }

    #[test]
    fn park_dir_persists_and_seeds_generation_floors() {
        let dir = std::env::temp_dir().join(format!("wafe-park-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let r = Registry::default();
        r.set_park_dir(dir.clone()).unwrap();
        let id = r.admit("one", 0).unwrap();
        r.park(id, b"snapshot-bytes".to_vec(), 0).unwrap();
        r.release(id);
        assert!(dir.join("park-0-1.wsnap").exists());

        // A fresh registry (a restarted waferd) finds the snapshot and
        // will never mint 0:1 again.
        let r2 = Registry::default();
        assert_eq!(r2.set_park_dir(dir.clone()).unwrap(), 1);
        let fresh = r2.admit("two", 0).unwrap();
        assert_eq!((fresh.slot, fresh.generation), (0, 2));
        assert_eq!(r2.take_parked(id), Some(b"snapshot-bytes".to_vec()));
        assert!(
            !dir.join("park-0-1.wsnap").exists(),
            "claim removes the file"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_words_are_a_flat_even_list() {
        let r = Registry::default();
        let words = r.status_words();
        assert!(words.len().is_multiple_of(2));
        assert_eq!(words[0], "state");
        assert_eq!(words[1], "serving");
        r.begin_drain();
        assert_eq!(r.status_words()[1], "draining");
    }

    #[test]
    fn sharded_slots_interleave_and_route_by_modulo() {
        let r = Registry::with_shards(Limits::default(), 4);
        let ids: Vec<SessionId> = (0..6)
            .map(|i| r.admit(&format!("c{i}"), 0).unwrap())
            .collect();
        // Round-robin admission: global slots 0,1,2,3 then 4,5 (the
        // second lap of shards 0 and 1).
        assert_eq!(
            ids.iter().map(|id| id.slot).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5]
        );
        for id in &ids {
            assert_eq!(r.shard_of(*id), id.slot as usize % 4);
        }
        assert_eq!(r.active(), 6);
        // Releasing a shard-2 session frees exactly that slot for the
        // next shard-2 lap.
        assert!(r.release(ids[2]));
        assert_eq!(r.active(), 5);
        // sessions_words stays globally slot-ordered across shards.
        let words = r.sessions_words();
        assert_eq!(words.len(), 5);
        assert!(words[0].starts_with("0:1 "));
        assert!(words.iter().all(|w| !w.starts_with("2:")));
    }

    #[test]
    fn sharded_max_sessions_is_exact() {
        let r = Registry::with_shards(
            Limits {
                max_sessions: 5,
                ..Limits::default()
            },
            4,
        );
        let ids: Vec<_> = (0..5)
            .map(|i| r.admit(&format!("c{i}"), 0).unwrap())
            .collect();
        assert_eq!(r.admit("over", 0), Err(ShedReason::MaxSessions));
        assert_eq!(r.active(), 5);
        r.release(ids[0]);
        assert!(r.admit("fits", 0).is_ok());
        assert_eq!(r.stats().accepted, 6);
        assert_eq!(r.stats().shed_admission, 1);
    }

    #[test]
    fn status_reports_poller_and_shard_breakdown() {
        let r = Registry::with_shards(Limits::default(), 2);
        r.set_poller_backend("sim");
        r.admit("a", 0).unwrap();
        r.set_shard_queued(1, 9);
        let words = r.status_words();
        let find = |key: &str| {
            words
                .iter()
                .position(|w| w == key)
                .map(|i| words[i + 1].clone())
                .unwrap()
        };
        assert_eq!(find("poller"), "sim");
        assert_eq!(find("acceptErrors"), "0");
        assert_eq!(
            find("shards"),
            "{shard 0 active 1 queued 0} {shard 1 active 0 queued 9}"
        );
        r.note_accept_error();
        assert_eq!(
            r.metrics_pairs()
                .iter()
                .find(|(k, _)| k == "serve.server.acceptErrors")
                .unwrap()
                .1,
            "1"
        );
    }
}
