//! The session registry: generation-stamped identities, admission
//! control and the server-wide counters behind `serve status`.
//!
//! The registry is the only state shared between the acceptor threads,
//! the worker threads and the `serve` Tcl command, so it is the one
//! place locking happens: a single short-held [`Mutex`] around plain
//! data, plus a lock-free draining flag the accept loops poll.

use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// A session identity that cannot be confused with a later tenant of
/// the same slot: the slot index is reused, the generation never is.
/// A release carrying a stale generation is ignored, which is what
/// makes "evict and the transport notices later" race-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId {
    /// Index into the registry's slot table (reused).
    pub slot: u32,
    /// Bumped every time the slot is released (never reused).
    pub generation: u32,
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.slot, self.generation)
    }
}

/// Why an admission was refused. Sheds are explicit protocol replies
/// (`!shed <reason>`), never silent drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The `maxSessions` limit is reached.
    MaxSessions,
    /// The server is draining: no new sessions, existing ones flush.
    Draining,
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShedReason::MaxSessions => "max-sessions",
            ShedReason::Draining => "draining",
        })
    }
}

/// Tuning knobs of the server, mutable at runtime via `serve limits`.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Concurrent sessions admitted before `!shed max-sessions`.
    pub max_sessions: usize,
    /// Lines a session's mailbox holds before `!shed queue-full`
    /// (applies to mailboxes created after a change).
    pub queue_depth: usize,
    /// Lines one session may run per scheduler sweep — the fairness
    /// quantum: a flooding client only ever gets this much ahead.
    pub quantum: usize,
    /// Evict a session idle for this many virtual milliseconds
    /// (0 = never).
    pub idle_evict_ms: u64,
    /// After a drain begins, sessions still busy past this many virtual
    /// milliseconds are cut off with their queues unflushed.
    pub drain_timeout_ms: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_sessions: 128,
            queue_depth: 256,
            quantum: 32,
            idle_evict_ms: 0,
            drain_timeout_ms: 5_000,
        }
    }
}

/// The Tcl-visible limit keys, in `serve limits` listing order.
pub const LIMIT_KEYS: &[&str] = &[
    "maxSessions",
    "queueDepth",
    "quantum",
    "idleEvict",
    "drainTimeout",
];

impl Limits {
    /// The value of a Tcl-visible key ([`LIMIT_KEYS`]).
    pub fn get(&self, key: &str) -> Option<String> {
        Some(match key {
            "maxSessions" => self.max_sessions.to_string(),
            "queueDepth" => self.queue_depth.to_string(),
            "quantum" => self.quantum.to_string(),
            "idleEvict" => self.idle_evict_ms.to_string(),
            "drainTimeout" => self.drain_timeout_ms.to_string(),
            _ => return None,
        })
    }

    /// Sets a Tcl-visible key from its string form.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        let n: u64 = value
            .trim()
            .parse()
            .map_err(|_| format!("expected integer but got \"{value}\""))?;
        match key {
            "maxSessions" => self.max_sessions = n as usize,
            "queueDepth" => self.queue_depth = n as usize,
            "quantum" => self.quantum = (n as usize).max(1),
            "idleEvict" => self.idle_evict_ms = n,
            "drainTimeout" => self.drain_timeout_ms = n,
            _ => {
                return Err(format!(
                    "unknown limit \"{key}\": must be one of {}",
                    LIMIT_KEYS.join(", ")
                ))
            }
        }
        Ok(())
    }
}

/// Server-wide event totals (`serve status`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Sessions admitted.
    pub accepted: u64,
    /// Connections refused at admission (max-sessions or draining).
    pub shed_admission: u64,
    /// Inbound lines refused because a session's mailbox was full.
    pub shed_queue: u64,
    /// Sessions evicted for idling past `idleEvict`.
    pub evicted: u64,
    /// Sessions released (any cause: disconnect, quit, evict, drain).
    pub closed: u64,
    /// Protocol lines dispatched across all sessions.
    pub commands: u64,
    /// Sessions parked (idle eviction, drain park-all, `session park`).
    pub parked: u64,
    /// Parked snapshots restored into a reconnecting session.
    pub restored: u64,
    /// Restore attempts naming an unknown or already-taken snapshot.
    pub restore_miss: u64,
}

/// One parked session's checkpoint, held by the registry until a
/// reconnect claims it (or, with a park directory, until a later
/// process claims it from disk).
#[derive(Debug, Clone)]
struct Parked {
    bytes: Vec<u8>,
    parked_ms: u64,
}

/// Per-session bookkeeping for the `serve sessions` listing.
#[derive(Debug, Clone)]
struct Slot {
    peer: String,
    admitted_ms: u64,
    commands: u64,
}

struct Inner {
    /// `generations[i]` is the generation the *next or current* tenant
    /// of slot `i` carries; bumped on release.
    generations: Vec<u32>,
    slots: Vec<Option<Slot>>,
    limits: Limits,
    stats: ServerStats,
    /// Parked snapshots, keyed by the full stamped identity. The
    /// generation stamp is what makes park/reconnect race-free: a slot
    /// may be re-tenanted immediately, but `slot:generation` never
    /// recurs, so a parked id can neither collide nor be forged stale.
    parked: HashMap<(u32, u32), Parked>,
    /// Snapshot persistence directory (`waferd --park-dir`); parks are
    /// written through and restores remove the file.
    park_dir: Option<PathBuf>,
}

/// The shared half of the server. Cheap to clone behind an `Arc`; every
/// method takes `&self`.
pub struct Registry {
    inner: Mutex<Inner>,
    draining: AtomicBool,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new(Limits::default())
    }
}

impl Registry {
    /// A registry enforcing the given limits.
    pub fn new(limits: Limits) -> Self {
        Registry {
            inner: Mutex::new(Inner {
                generations: Vec::new(),
                slots: Vec::new(),
                limits,
                stats: ServerStats::default(),
                parked: HashMap::new(),
                park_dir: None,
            }),
            draining: AtomicBool::new(false),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admission control: a slot for a new session, or the reason it
    /// was shed.
    pub fn admit(&self, peer: &str, now_ms: u64) -> Result<SessionId, ShedReason> {
        if self.draining() {
            self.lock().stats.shed_admission += 1;
            return Err(ShedReason::Draining);
        }
        let mut inner = self.lock();
        let active = inner.slots.iter().filter(|s| s.is_some()).count();
        if active >= inner.limits.max_sessions {
            inner.stats.shed_admission += 1;
            return Err(ShedReason::MaxSessions);
        }
        let slot = Slot {
            peer: peer.to_string(),
            admitted_ms: now_ms,
            commands: 0,
        };
        let idx = match inner.slots.iter().position(|s| s.is_none()) {
            Some(i) => {
                inner.slots[i] = Some(slot);
                i
            }
            None => {
                inner.slots.push(Some(slot));
                inner.generations.push(1);
                inner.slots.len() - 1
            }
        };
        inner.stats.accepted += 1;
        Ok(SessionId {
            slot: idx as u32,
            generation: inner.generations[idx],
        })
    }

    /// Releases a session's slot. A stale id (older generation, or a
    /// slot already freed) is ignored and returns false.
    pub fn release(&self, id: SessionId) -> bool {
        let mut inner = self.lock();
        let idx = id.slot as usize;
        if idx >= inner.slots.len()
            || inner.generations[idx] != id.generation
            || inner.slots[idx].is_none()
        {
            return false;
        }
        inner.slots[idx] = None;
        inner.generations[idx] += 1;
        inner.stats.closed += 1;
        true
    }

    /// Adds dispatched-line counts to a session and the global total.
    pub fn note_commands(&self, id: SessionId, n: u64) {
        let mut inner = self.lock();
        inner.stats.commands += n;
        let idx = id.slot as usize;
        if idx < inner.slots.len() && inner.generations[idx] == id.generation {
            if let Some(slot) = inner.slots[idx].as_mut() {
                slot.commands += n;
            }
        }
    }

    /// Counts one queue-full shed (the transport replies `!shed
    /// queue-full` to the client).
    pub fn note_shed_queue(&self) {
        self.lock().stats.shed_queue += 1;
    }

    /// Counts one idle eviction.
    pub fn note_evicted(&self) {
        self.lock().stats.evicted += 1;
    }

    /// Counts a restore attempt that named an unknown snapshot (the
    /// in-band `session restore` validation path; [`take_parked`]
    /// counts its own misses).
    ///
    /// [`take_parked`]: Registry::take_parked
    pub fn note_restore_miss(&self) {
        self.lock().stats.restore_miss += 1;
    }

    /// Sessions currently registered.
    pub fn active(&self) -> usize {
        self.lock().slots.iter().filter(|s| s.is_some()).count()
    }

    /// A copy of the server-wide totals.
    pub fn stats(&self) -> ServerStats {
        self.lock().stats
    }

    /// A copy of the current limits.
    pub fn limits(&self) -> Limits {
        self.lock().limits.clone()
    }

    /// Reads one Tcl-visible limit.
    pub fn get_limit(&self, key: &str) -> Option<String> {
        self.lock().limits.get(key)
    }

    /// Sets one Tcl-visible limit.
    pub fn set_limit(&self, key: &str, value: &str) -> Result<(), String> {
        self.lock().limits.set(key, value)
    }

    /// Parks a session's encoded snapshot under its stamped identity.
    /// With a park directory configured, the snapshot is also written
    /// through to `park-<slot>-<generation>.wsnap` so it survives a
    /// process restart; a write failure fails the park loudly rather
    /// than silently keeping a memory-only checkpoint.
    pub fn park(&self, id: SessionId, bytes: Vec<u8>, now_ms: u64) -> Result<(), String> {
        let mut inner = self.lock();
        if let Some(dir) = inner.park_dir.clone() {
            let path = dir.join(park_file_name(id));
            std::fs::write(&path, &bytes)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        inner.parked.insert(
            (id.slot, id.generation),
            Parked {
                bytes,
                parked_ms: now_ms,
            },
        );
        inner.stats.parked += 1;
        Ok(())
    }

    /// Claims a parked snapshot, removing it from the registry (and the
    /// park directory, if one is configured). `None` counts a restore
    /// miss: the id was never parked, or was already claimed.
    pub fn take_parked(&self, id: SessionId) -> Option<Vec<u8>> {
        let mut inner = self.lock();
        match inner.parked.remove(&(id.slot, id.generation)) {
            Some(p) => {
                inner.stats.restored += 1;
                if let Some(dir) = inner.park_dir.clone() {
                    let _ = std::fs::remove_file(dir.join(park_file_name(id)));
                }
                Some(p.bytes)
            }
            None => {
                inner.stats.restore_miss += 1;
                None
            }
        }
    }

    /// Whether a snapshot is parked under this exact stamped identity.
    pub fn has_parked(&self, id: SessionId) -> bool {
        self.lock().parked.contains_key(&(id.slot, id.generation))
    }

    /// Snapshots currently parked.
    pub fn parked_count(&self) -> usize {
        self.lock().parked.len()
    }

    /// `session snapshots` payload: one `{id bytes parkedMs}` sublist
    /// per parked snapshot, in id order.
    pub fn parked_words(&self) -> Vec<String> {
        let inner = self.lock();
        let mut keys: Vec<&(u32, u32)> = inner.parked.keys().collect();
        keys.sort();
        keys.into_iter()
            .map(|&(slot, generation)| {
                let p = &inner.parked[&(slot, generation)];
                wafe_tcl::list_join(&[
                    SessionId { slot, generation }.to_string(),
                    p.bytes.len().to_string(),
                    p.parked_ms.to_string(),
                ])
            })
            .collect()
    }

    /// Whether parked snapshots are written through to disk — when
    /// true, a graceful drain parks every live session instead of
    /// dropping it, so the sessions survive the restart.
    pub fn park_persistent(&self) -> bool {
        self.lock().park_dir.is_some()
    }

    /// Configures the park directory and loads any snapshots a previous
    /// process left there. Loading seeds each slot's generation floor
    /// past the parked generation, so new admissions can never mint an
    /// id that collides with a pre-restart parked one. Returns how many
    /// snapshots were loaded.
    pub fn set_park_dir(&self, dir: PathBuf) -> Result<usize, String> {
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let mut loaded = Vec::new();
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
            let name = entry.file_name();
            let Some(id) = parse_park_file_name(&name.to_string_lossy()) else {
                continue;
            };
            let bytes = std::fs::read(entry.path())
                .map_err(|e| format!("cannot read {}: {e}", entry.path().display()))?;
            loaded.push((id, bytes));
        }
        let mut inner = self.lock();
        for (id, bytes) in loaded {
            let idx = id.slot as usize;
            if idx >= inner.slots.len() {
                inner.slots.resize(idx + 1, None);
                inner.generations.resize(idx + 1, 1);
            }
            inner.generations[idx] = inner.generations[idx].max(id.generation + 1);
            inner.parked.insert(
                (id.slot, id.generation),
                Parked {
                    bytes,
                    parked_ms: 0,
                },
            );
        }
        inner.park_dir = Some(dir);
        Ok(inner.parked.len())
    }

    /// Whether a drain is in progress.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Starts the graceful drain: acceptors stop admitting, schedulers
    /// flush their mailboxes and release every session.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// `serve status` payload: a flat key/value word list.
    pub fn status_words(&self) -> Vec<String> {
        let draining = self.draining();
        let inner = self.lock();
        let active = inner.slots.iter().filter(|s| s.is_some()).count();
        let s = inner.stats;
        [
            (
                "state",
                if draining { "draining" } else { "serving" }.into(),
            ),
            ("active", active.to_string()),
            ("accepted", s.accepted.to_string()),
            ("shedAdmission", s.shed_admission.to_string()),
            ("shedQueue", s.shed_queue.to_string()),
            ("evicted", s.evicted.to_string()),
            ("closed", s.closed.to_string()),
            ("commands", s.commands.to_string()),
            ("parked", s.parked.to_string()),
            ("restored", s.restored.to_string()),
            ("restoreMiss", s.restore_miss.to_string()),
            ("parkedNow", inner.parked.len().to_string()),
        ]
        .into_iter()
        .flat_map(|(k, v): (&str, String)| [k.to_string(), v])
        .collect()
    }

    /// The server-level rows of the metrics exposition (`serve metrics`
    /// and waferd's `--metrics` endpoint): the `serve status` facts as
    /// key-sorted numeric pairs under `serve.server.*` (the non-numeric
    /// `state` word becomes the 0/1 `draining` flag).
    pub fn metrics_pairs(&self) -> Vec<(String, String)> {
        let draining = self.draining();
        let inner = self.lock();
        let active = inner.slots.iter().filter(|s| s.is_some()).count();
        let s = inner.stats;
        let mut pairs: Vec<(String, String)> = [
            ("draining", draining as u64),
            ("active", active as u64),
            ("accepted", s.accepted),
            ("shedAdmission", s.shed_admission),
            ("shedQueue", s.shed_queue),
            ("evicted", s.evicted),
            ("closed", s.closed),
            ("commands", s.commands),
            ("parked", s.parked),
            ("restored", s.restored),
            ("restoreMiss", s.restore_miss),
            ("parkedNow", inner.parked.len() as u64),
        ]
        .into_iter()
        .map(|(k, v)| (format!("serve.server.{k}"), v.to_string()))
        .collect();
        pairs.sort();
        pairs
    }

    /// `serve sessions` payload: one `{id peer admittedMs commands}`
    /// sublist per live session, in slot order.
    pub fn sessions_words(&self) -> Vec<String> {
        let inner = self.lock();
        inner
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let s = s.as_ref()?;
                let id = SessionId {
                    slot: i as u32,
                    generation: inner.generations[i],
                };
                Some(wafe_tcl::list_join(&[
                    id.to_string(),
                    s.peer.clone(),
                    s.admitted_ms.to_string(),
                    s.commands.to_string(),
                ]))
            })
            .collect()
    }
}

/// `park-<slot>-<generation>.wsnap`, the on-disk name of one parked
/// snapshot.
fn park_file_name(id: SessionId) -> String {
    format!("park-{}-{}.wsnap", id.slot, id.generation)
}

fn parse_park_file_name(name: &str) -> Option<SessionId> {
    let rest = name.strip_prefix("park-")?.strip_suffix(".wsnap")?;
    let (slot, generation) = rest.split_once('-')?;
    Some(SessionId {
        slot: slot.parse().ok()?,
        generation: generation.parse().ok()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_never_reuse() {
        let r = Registry::new(Limits::default());
        let a = r.admit("one", 0).unwrap();
        assert_eq!((a.slot, a.generation), (0, 1));
        assert!(r.release(a));
        let b = r.admit("two", 0).unwrap();
        assert_eq!(b.slot, a.slot, "slot is reused");
        assert_eq!(b.generation, 2, "generation is not");
        assert!(!r.release(a), "stale release is ignored");
        assert_eq!(r.active(), 1);
    }

    #[test]
    fn admission_sheds_at_max_and_while_draining() {
        let r = Registry::new(Limits {
            max_sessions: 2,
            ..Limits::default()
        });
        r.admit("a", 0).unwrap();
        let b = r.admit("b", 0).unwrap();
        assert_eq!(r.admit("c", 0), Err(ShedReason::MaxSessions));
        r.release(b);
        r.admit("c", 0).unwrap();
        r.begin_drain();
        assert_eq!(r.admit("d", 0), Err(ShedReason::Draining));
        assert_eq!(r.stats().shed_admission, 2);
    }

    #[test]
    fn limits_roundtrip_through_tcl_keys() {
        let r = Registry::default();
        for key in LIMIT_KEYS {
            assert!(r.get_limit(key).is_some(), "{key} must be readable");
        }
        r.set_limit("maxSessions", "3").unwrap();
        assert_eq!(r.limits().max_sessions, 3);
        r.set_limit("quantum", "0").unwrap();
        assert_eq!(r.limits().quantum, 1, "quantum floor keeps progress");
        assert!(r.set_limit("nosuchknob", "1").is_err());
        assert!(r.set_limit("quantum", "fast").is_err());
    }

    #[test]
    fn parked_snapshots_are_claimed_exactly_once() {
        let r = Registry::default();
        let id = r.admit("one", 0).unwrap();
        r.park(id, vec![1, 2, 3], 7).unwrap();
        assert!(r.has_parked(id));
        assert_eq!(r.parked_words(), vec!["0:1 3 7".to_string()]);
        r.release(id);
        let reused = r.admit("two", 0).unwrap();
        assert_eq!(reused.slot, id.slot);
        assert!(
            !r.has_parked(reused),
            "new tenant's stamped id must not see the old tenant's snapshot"
        );
        assert_eq!(r.take_parked(id), Some(vec![1, 2, 3]));
        assert_eq!(r.take_parked(id), None, "second claim is a miss");
        let s = r.stats();
        assert_eq!((s.parked, s.restored, s.restore_miss), (1, 1, 1));
    }

    #[test]
    fn park_dir_persists_and_seeds_generation_floors() {
        let dir = std::env::temp_dir().join(format!("wafe-park-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let r = Registry::default();
        r.set_park_dir(dir.clone()).unwrap();
        let id = r.admit("one", 0).unwrap();
        r.park(id, b"snapshot-bytes".to_vec(), 0).unwrap();
        r.release(id);
        assert!(dir.join("park-0-1.wsnap").exists());

        // A fresh registry (a restarted waferd) finds the snapshot and
        // will never mint 0:1 again.
        let r2 = Registry::default();
        assert_eq!(r2.set_park_dir(dir.clone()).unwrap(), 1);
        let fresh = r2.admit("two", 0).unwrap();
        assert_eq!((fresh.slot, fresh.generation), (0, 2));
        assert_eq!(r2.take_parked(id), Some(b"snapshot-bytes".to_vec()));
        assert!(
            !dir.join("park-0-1.wsnap").exists(),
            "claim removes the file"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_words_are_a_flat_even_list() {
        let r = Registry::default();
        let words = r.status_words();
        assert!(words.len().is_multiple_of(2));
        assert_eq!(words[0], "state");
        assert_eq!(words[1], "serving");
        r.begin_drain();
        assert_eq!(r.status_words()[1], "draining");
    }
}
