//! Deterministic tests of the serving core: scheduler fairness,
//! admission-control shedding, graceful drain and idle eviction —
//! all driven directly on a [`Scheduler`] with buffer sinks and the
//! virtual-tick clock. No threads, no sockets, no wall-clock asserts:
//! each test is a pure function of the lines pushed and the ticks
//! advanced, which is what lets ci.sh repeat the suite 50 times as a
//! flakiness gate.

use std::sync::Arc;

use wafe_core::Flavor;
use wafe_serve::{Limits, Mailbox, Registry, Scheduler, SessionSink, ShedReason};

fn scheduler(limits: Limits) -> Scheduler {
    Scheduler::new(Arc::new(Registry::new(limits)), Flavor::Athena, false)
}

/// Admits a session and attaches it; returns its mailbox and the
/// buffer its outbound lines land in.
fn session(
    sched: &mut Scheduler,
    peer: &str,
) -> (
    Arc<Mailbox>,
    Arc<std::sync::Mutex<Vec<String>>>,
    wafe_serve::SessionId,
) {
    let registry = sched.registry().clone();
    let id = registry.admit(peer, sched.now_ms()).expect("admitted");
    let mailbox = Mailbox::new(registry.limits().queue_depth);
    let (sink, buf) = SessionSink::buffer();
    sched.attach(id, mailbox.clone(), sink);
    (mailbox, buf, id)
}

fn lines(buf: &std::sync::Mutex<Vec<String>>) -> Vec<String> {
    buf.lock().unwrap().clone()
}

#[test]
fn round_robin_quantum_keeps_a_flooder_from_starving_others() {
    // Session A floods 100 commands; session B has 5. With quantum 4,
    // B must be fully served after exactly two sweeps, while A's
    // surplus is still queued — A can never get more than one quantum
    // ahead of B.
    let mut sched = scheduler(Limits {
        quantum: 4,
        queue_depth: 1_000,
        ..Limits::default()
    });
    let (flood_mb, flood_buf, _) = session(&mut sched, "flooder");
    let (quiet_mb, quiet_buf, _) = session(&mut sched, "quiet");
    for i in 0..100 {
        assert!(flood_mb.push(format!("%echo a{i}")));
    }
    for i in 0..5 {
        assert!(quiet_mb.push(format!("%echo b{i}")));
    }

    // Sweep 1: both sessions run exactly one quantum.
    assert_eq!(sched.run_turn(), 8);
    assert_eq!(lines(&flood_buf), ["a0", "a1", "a2", "a3"]);
    assert_eq!(lines(&quiet_buf), ["b0", "b1", "b2", "b3"]);
    assert_eq!(flood_mb.len(), 96);

    // Sweep 2: the quiet session finishes; the flooder is still deep
    // in its own backlog.
    assert_eq!(sched.run_turn(), 5);
    assert_eq!(lines(&quiet_buf), ["b0", "b1", "b2", "b3", "b4"]);
    assert!(quiet_mb.is_empty());
    assert_eq!(flood_mb.len(), 92);

    // The flooder drains at quantum speed from here on.
    let mut turns = 0;
    while !flood_mb.is_empty() {
        sched.run_turn();
        turns += 1;
        assert!(turns <= 23, "flooder must drain in 92/4 = 23 turns");
    }
    assert_eq!(lines(&flood_buf).len(), 100);
}

#[test]
fn admission_control_sheds_beyond_max_sessions() {
    let mut sched = scheduler(Limits {
        max_sessions: 2,
        ..Limits::default()
    });
    let registry = sched.registry().clone();
    session(&mut sched, "one");
    session(&mut sched, "two");
    assert_eq!(registry.admit("three", 0), Err(ShedReason::MaxSessions));
    assert_eq!(registry.stats().shed_admission, 1);
    assert_eq!(registry.active(), 2);
    // The shed reply the transport sends is the reason, spelled out.
    assert_eq!(ShedReason::MaxSessions.to_string(), "max-sessions");
    assert_eq!(ShedReason::Draining.to_string(), "draining");
}

#[test]
fn queue_full_sheds_explicitly_and_keeps_the_session() {
    let mut sched = scheduler(Limits {
        queue_depth: 3,
        quantum: 8,
        ..Limits::default()
    });
    let registry = sched.registry().clone();
    let (mb, buf, _) = session(&mut sched, "chatty");
    // 5 pushes against a depth of 3: two refused.
    for i in 0..5 {
        let accepted = mb.push(format!("%echo m{i}"));
        assert_eq!(accepted, i < 3, "push {i}");
    }
    sched.run_turn();
    let got = lines(&buf);
    // The three accepted lines round-tripped; each shed line produced
    // an explicit notice, not a silent drop.
    assert_eq!(
        got,
        ["m0", "m1", "m2", "!shed queue-full", "!shed queue-full"]
    );
    assert_eq!(registry.stats().shed_queue, 2);
    assert_eq!(
        registry.active(),
        1,
        "shedding load does not kill the session"
    );
    // The session keeps working afterwards.
    assert!(mb.push("%echo recovered".into()));
    sched.run_turn();
    assert_eq!(lines(&buf).last().map(String::as_str), Some("recovered"));
}

#[test]
fn graceful_drain_flushes_mailboxes_before_releasing() {
    let mut sched = scheduler(Limits {
        quantum: 2,
        ..Limits::default()
    });
    let registry = sched.registry().clone();
    let (mb_a, buf_a, _) = session(&mut sched, "a");
    let (mb_b, buf_b, _) = session(&mut sched, "b");
    for i in 0..6 {
        assert!(mb_a.push(format!("%echo a{i}")));
    }
    assert!(mb_b.push("%echo b0".into()));
    registry.begin_drain();
    assert!(!sched.is_drained(), "queued work first");
    // New input is refused the moment the scheduler notices the drain…
    sched.run_turn();
    assert!(!mb_a.push("%echo late".into()), "drain closed the mailbox");
    // …but everything already queued is flushed, at quantum pace.
    while !sched.is_drained() {
        sched.run_turn();
    }
    assert_eq!(lines(&buf_a), ["a0", "a1", "a2", "a3", "a4", "a5"]);
    assert_eq!(lines(&buf_b), ["b0"]);
    assert_eq!(registry.active(), 0, "every slot released");
    assert_eq!(registry.stats().closed, 2);
    assert_eq!(registry.admit("late", 0), Err(ShedReason::Draining));
}

#[test]
fn drain_timeout_cuts_off_a_session_that_cannot_finish() {
    let mut sched = scheduler(Limits {
        quantum: 1,
        drain_timeout_ms: 100,
        ..Limits::default()
    });
    let registry = sched.registry().clone();
    let (mb, buf, _) = session(&mut sched, "slow");
    for i in 0..50 {
        assert!(mb.push(format!("%echo s{i}")));
    }
    registry.begin_drain();
    sched.run_turn(); // notices the drain, flushes 1 of 50
    sched.advance(101); // virtual deadline passes
    assert!(sched.is_drained(), "cut off, queue unflushed");
    assert_eq!(lines(&buf), ["s0"]);
    assert_eq!(registry.active(), 0);
}

#[test]
fn idle_sessions_are_parked_on_virtual_ticks() {
    let mut sched = scheduler(Limits {
        idle_evict_ms: 100,
        ..Limits::default()
    });
    let registry = sched.registry().clone();
    let (mb_a, buf_a, id_a) = session(&mut sched, "active");
    let (_mb_b, buf_b, id_b) = session(&mut sched, "idle");
    sched.advance(60);
    // A speaks at t=60; B stays silent.
    assert!(mb_a.push("%echo ping".into()));
    sched.run_turn();
    sched.advance(60);
    sched.run_turn();
    // t=120: B idled 120ms > 100 and is *parked* — an explicit notice
    // carrying the stamped id it can present to come back, never a
    // silent drop of its state. A's last activity was 60ms ago and it
    // survives.
    assert_eq!(lines(&buf_b), [format!("!parked {id_b}")]);
    assert_eq!(lines(&buf_a), ["ping"]);
    assert_eq!(registry.active(), 1);
    assert_eq!(registry.stats().evicted, 1);
    assert_eq!(registry.stats().parked, 1);
    assert!(registry.has_parked(id_b), "eviction parks, not discards");
    // The evicted id is stale: its slot can be re-admitted under a new
    // generation, and a late release of the old id is ignored.
    assert!(!registry.release(id_b), "stale release is a no-op");
    let id_c = registry.admit("next", sched.now_ms()).unwrap();
    assert_eq!(id_c.slot, id_b.slot);
    assert!(id_c.generation > id_b.generation);
    assert!(
        !registry.has_parked(id_c),
        "the new tenant's id never aliases the parked snapshot"
    );
    assert!(registry.release(id_a));
}

#[test]
fn manual_park_then_restore_replays_queued_output_in_order() {
    let mut sched = scheduler(Limits::default());
    let registry = sched.registry().clone();
    let (mb_a, buf_a, id_a) = session(&mut sched, "parker");
    assert!(mb_a.push("%set greeting {hello from the past}".into()));
    assert!(mb_a.push("%label sign topLevel label Parked".into()));
    assert!(mb_a.push("%echo queued-before-park".into()));
    assert!(mb_a.push("%session park".into()));
    sched.run_turn();
    // The pending echo rides the snapshot instead of the wire: the only
    // thing the client sees is the park ack, verbatim.
    assert_eq!(lines(&buf_a), [format!("!parked {id_a}")]);
    assert_eq!(registry.active(), 0, "park releases the slot");
    assert_eq!(registry.stats().parked, 1);
    assert!(registry.has_parked(id_a));

    // A later connection lists the snapshot and restores by stamped id:
    // the ack comes first, then the queued output replayed in order.
    let (mb_b, buf_b, _) = session(&mut sched, "returning");
    assert!(mb_b.push("%echo [lindex [lindex [session snapshots] 0] 0]".into()));
    assert!(mb_b.push(format!("%session restore {id_a}")));
    sched.run_turn();
    assert_eq!(
        lines(&buf_b),
        [
            id_a.to_string(),
            format!("!restored {id_a}"),
            "queued-before-park".to_string(),
        ]
    );
    // The restored engine carries the old interpreter and widget state.
    assert!(mb_b.push("%echo [set greeting]".into()));
    sched.run_turn();
    assert_eq!(
        lines(&buf_b).last().map(String::as_str),
        Some("hello from the past")
    );
    assert!(
        !registry.has_parked(id_a),
        "a snapshot restores exactly once"
    );
    assert_eq!(registry.stats().restored, 1);
    // Counter surface: the registry exports the park/restore totals.
    let pairs = registry.metrics_pairs();
    let get = |k: &str| {
        pairs
            .iter()
            .find(|(n, _)| n == k)
            .map(|(_, v)| v.as_str())
            .unwrap_or_else(|| panic!("missing {k}"))
            .to_string()
    };
    assert_eq!(get("serve.server.parked"), "1");
    assert_eq!(get("serve.server.restored"), "1");
    assert_eq!(get("serve.server.restoreMiss"), "0");
    assert_eq!(get("serve.server.parkedNow"), "0");
}

#[test]
fn restore_of_an_unknown_id_is_a_loud_miss_that_keeps_the_session() {
    let mut sched = scheduler(Limits::default());
    let registry = sched.registry().clone();
    let (mb, buf, _) = session(&mut sched, "guesser");
    // Command errors are not echoed (byte-identity with the pipe), so
    // read the miss back through catch.
    assert!(mb.push("%echo [catch {session restore 7:9}]".into()));
    assert!(mb.push("%echo [catch {session restore not-an-id}]".into()));
    assert!(mb.push("%echo still-alive".into()));
    sched.run_turn();
    assert_eq!(lines(&buf), ["1", "1", "still-alive"]);
    assert_eq!(registry.stats().restore_miss, 1, "bad syntax is not a miss");
    assert_eq!(registry.active(), 1, "a failed restore keeps the session");
}

/// The acceptance test for hot handoff: a recursive-proc workload (the
/// E19 benchmark's shape) is interrupted mid-way by an idle park,
/// restored into a brand-new connection, and continued — the combined
/// client-visible output must be byte-identical to a control session
/// that ran the whole workload uninterrupted.
#[test]
fn parked_then_restored_session_continues_workload_byte_identically() {
    const DEFINE: &str =
        "%proc fact {n} {if {$n <= 1} {return 1}; expr {$n * [fact [expr {$n - 1}]]}}";
    let first: Vec<String> = (1..=8)
        .map(|n| format!("%echo fact({n})=[fact {n}]"))
        .collect();
    let second: Vec<String> = (9..=16)
        .map(|n| format!("%echo fact({n})=[fact {n}]"))
        .collect();

    // Control: one session, never parked.
    let mut control = scheduler(Limits::default());
    let (mb, control_buf, _) = session(&mut control, "control");
    assert!(mb.push(DEFINE.into()));
    for l in first.iter().chain(&second) {
        assert!(mb.push(l.clone()));
    }
    while !mb.is_empty() {
        control.run_turn();
    }

    // Experiment: first half, idle park at a known virtual tick,
    // restore under the stamped id, second half.
    let mut sched = scheduler(Limits {
        idle_evict_ms: 50,
        ..Limits::default()
    });
    let registry = sched.registry().clone();
    let (mb_a, buf_a, id_a) = session(&mut sched, "before");
    assert!(mb_a.push(DEFINE.into()));
    for l in &first {
        assert!(mb_a.push(l.clone()));
    }
    while !mb_a.is_empty() {
        sched.run_turn();
    }
    sched.advance(51);
    assert_eq!(
        lines(&buf_a).last(),
        Some(&format!("!parked {id_a}")),
        "idle-parked at virtual t=51"
    );

    let (mb_b, buf_b, _) = session(&mut sched, "after");
    assert!(mb_b.push(format!("%session restore {id_a}")));
    for l in &second {
        assert!(mb_b.push(l.clone()));
    }
    while !mb_b.is_empty() {
        sched.run_turn();
    }

    let mut combined = lines(&buf_a);
    assert_eq!(combined.pop(), Some(format!("!parked {id_a}")));
    let after = lines(&buf_b);
    assert_eq!(after[0], format!("!restored {id_a}"));
    combined.extend(after[1..].iter().cloned());
    assert_eq!(combined, lines(&control_buf), "byte-identical continuation");
    assert_eq!(registry.stats().restored, 1);
}

#[test]
fn drain_with_park_dir_parks_every_session_for_the_next_process() {
    let dir = std::env::temp_dir().join(format!("wafe-drain-park-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First "process": two sessions with state, then a drain.
    let mut sched = scheduler(Limits::default());
    let registry = sched.registry().clone();
    registry.set_park_dir(dir.clone()).unwrap();
    let (mb_a, buf_a, id_a) = session(&mut sched, "a");
    let (mb_b, buf_b, id_b) = session(&mut sched, "b");
    assert!(mb_a.push("%set who alpha".into()));
    assert!(mb_b.push("%set who beta".into()));
    registry.begin_drain();
    while !sched.is_drained() {
        sched.run_turn();
    }
    assert_eq!(lines(&buf_a), [format!("!parked {id_a}")]);
    assert_eq!(lines(&buf_b), [format!("!parked {id_b}")]);
    assert_eq!(registry.stats().parked, 2);

    // Second "process": a fresh registry over the same directory finds
    // both snapshots; each session restores under its old id.
    let registry2 = Arc::new(Registry::new(Limits::default()));
    assert_eq!(registry2.set_park_dir(dir.clone()).unwrap(), 2);
    let mut sched2 = Scheduler::new(registry2.clone(), Flavor::Athena, false);
    for (old, want) in [(id_a, "alpha"), (id_b, "beta")] {
        let id = registry2.admit("returning", 0).unwrap();
        let mailbox = Mailbox::new(registry2.limits().queue_depth);
        let (sink, buf) = SessionSink::buffer();
        sched2.attach(id, mailbox.clone(), sink);
        assert!(mailbox.push(format!("%session restore {old}")));
        assert!(mailbox.push("%echo [set who]".into()));
        while !mailbox.is_empty() {
            sched2.run_turn();
        }
        assert_eq!(lines(&buf), [format!("!restored {old}"), want.to_string()]);
    }
    assert_eq!(registry2.parked_count(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quit_command_releases_the_session() {
    let mut sched = scheduler(Limits::default());
    let registry = sched.registry().clone();
    let (mb, buf, _) = session(&mut sched, "quitter");
    assert!(mb.push("%echo bye".into()));
    assert!(mb.push("%quit".into()));
    sched.run_turn();
    assert_eq!(lines(&buf), ["bye"]);
    assert_eq!(registry.active(), 0);
    assert_eq!(registry.stats().closed, 1);
}

#[test]
fn serve_command_reports_and_drains_from_inside_a_session() {
    let mut sched = scheduler(Limits {
        max_sessions: 7,
        ..Limits::default()
    });
    let registry = sched.registry().clone();
    let (mb, buf, _) = session(&mut sched, "operator");
    // Command results are not echoed (byte-identity with the pipe);
    // clients read them back through command substitution.
    assert!(mb.push("%echo [serve limits maxSessions]".into()));
    assert!(mb.push("%echo [lindex [serve status] 1]".into()));
    assert!(mb.push("%serve limits maxSessions 9".into()));
    assert!(mb.push("%echo [serve limits maxSessions]".into()));
    assert!(mb.push("%echo [lindex [lindex [serve sessions] 0] 1]".into()));
    sched.run_turn();
    assert_eq!(lines(&buf), ["7", "serving", "9", "operator"]);
    assert_eq!(registry.limits().max_sessions, 9);
    // Draining from inside: the session's own mailbox flushes, then
    // every session is released.
    assert!(mb.push("%serve drain".into()));
    assert!(mb.push("%echo flushed-after-drain".into()));
    while !sched.is_drained() {
        sched.run_turn();
    }
    assert_eq!(
        lines(&buf).last().map(String::as_str),
        Some("flushed-after-drain")
    );
    assert_eq!(registry.active(), 0);
}

#[test]
fn fifty_sessions_multiplex_without_crosstalk() {
    // One scheduler, 50 sessions, interleaved traffic: every session
    // must get exactly its own replies, in its own order.
    let mut sched = scheduler(Limits {
        max_sessions: 64,
        quantum: 3,
        ..Limits::default()
    });
    let registry = sched.registry().clone();
    let mut handles = Vec::new();
    for s in 0..50 {
        let (mb, buf, _) = session(&mut sched, &format!("client-{s}"));
        for i in 0..5 {
            assert!(mb.push(format!("%set v {s}-{i}")));
            assert!(mb.push("%echo [set v]".to_string()));
        }
        handles.push((mb, buf));
    }
    let mut guard = 0;
    while handles.iter().any(|(mb, _)| !mb.is_empty()) {
        sched.run_turn();
        guard += 1;
        assert!(
            guard <= 10,
            "500 lines / (50 sessions * 3 quantum) < 10 turns"
        );
    }
    for (s, (_, buf)) in handles.iter().enumerate() {
        let want: Vec<String> = (0..5).map(|i| format!("{s}-{i}")).collect();
        assert_eq!(lines(buf), want, "session {s}");
    }
    assert_eq!(registry.stats().commands, 500);
}

#[test]
fn span_tree_attributes_every_layer_of_a_dispatched_command() {
    // The acceptance test for causal tracing: a scripted session turns
    // spans on, defines and calls a proc, turns spans off, and prints
    // the tree. Every tick is virtual, so the tree is byte-stable.
    let mut sched = scheduler(Limits {
        quantum: 8,
        ..Limits::default()
    });
    let (mb, buf, id) = session(&mut sched, "tracer");
    for line in [
        "%telemetry spans on",
        "%proc double {x} {expr {$x * 2}}",
        "%echo [double 21]",
        "%telemetry spans off",
        "%echo [telemetry spans tree]",
    ] {
        assert!(mb.push(line.to_string()));
    }
    sched.run_turn();
    // `%telemetry spans on` records nothing (its own begins ran while
    // still disabled); `%telemetry spans off` leaves nothing open; the
    // tree-printing command's spans are themselves still open when the
    // tree renders, so they never appear in their own output. What is
    // left is exactly the two traced commands, every layer attributed:
    // the serve dispatch root, the ipc protocol hop, the eval, the
    // bytecode run, and the proc call — one trace ID per command.
    let want: Vec<String> = [
        "42".to_string(),
        format!("serve.command 1:1 [1,8] {id} %proc double {{x}} {{expr {{$x * 2}}}}"),
        "  ipc.command 1:1 [2,7] %proc double {x} {expr {$x * 2}}".to_string(),
        "    tcl.eval 1:1 [3,6] proc double {x} {expr {$x * 2}}".to_string(),
        "      tcl.bc 1:1 [4,5]".to_string(),
        format!("serve.command 1:2 [9,22] {id} %echo [double 21]"),
        "  ipc.command 1:2 [10,21] %echo [double 21]".to_string(),
        "    tcl.eval 1:2 [11,20] echo [double 21]".to_string(),
        "      tcl.bc 1:2 [12,19]".to_string(),
        "        tcl.proc 1:2 [13,18] double".to_string(),
        "          tcl.eval 1:2 [14,17]".to_string(),
        "            tcl.bc 1:2 [15,16]".to_string(),
    ]
    .into();
    assert_eq!(lines(&buf), want);
}

#[test]
fn status_reports_poller_backend_and_per_shard_breakdown_verbatim() {
    use wafe_serve::event_loop::ConnAssign;
    use wafe_serve::{EventLoop, OutQueue, SimNet};

    // Two shards, two event loops, one simulated net — exactly the
    // poll-model server shape, scripted tick by tick.
    let registry = Arc::new(Registry::with_shards(Limits::default(), 2));
    let net = SimNet::new();
    let attach = |el: &mut EventLoop| {
        let id = registry.admit("sim/test", 0).expect("admitted");
        let (client, io) = net.socketpair();
        el.attach(ConnAssign {
            id,
            io,
            mailbox: Mailbox::new(registry.limits().queue_depth),
            out: OutQueue::new(),
        });
        client
    };
    let mut el0 = EventLoop::new(
        Scheduler::new(registry.clone(), Flavor::Athena, false),
        0,
        net.poller(),
    );
    let mut el1 = EventLoop::new(
        Scheduler::new(registry.clone(), Flavor::Athena, false),
        1,
        net.poller(),
    );
    let operator = attach(&mut el0); // slot 0 -> shard 0
    let busy = attach(&mut el1); // slot 1 -> shard 1

    // Shard 1 has three lines swept into the mailbox but not yet run:
    // its queue-depth gauge reads 3 at status time.
    busy.send(b"%echo q0\n%echo q1\n%echo q2\n");
    el1.poll_io(0);
    el1.flush_and_reap();

    operator.send(b"%echo [serve status]\n");
    el0.poll_io(0);
    el0.run_turn();
    el0.flush_and_reap();
    assert_eq!(
        operator.received_lines(),
        vec![
            "state serving active 2 accepted 2 shedAdmission 0 shedQueue 0 evicted 0 \
             closed 0 commands 0 parked 0 restored 0 restoreMiss 0 parkedNow 0 \
             acceptErrors 0 poller sim shards \
             {{shard 0 active 1 queued 0} {shard 1 active 1 queued 3}}"
                .to_string()
        ]
    );

    // The staged lines still run and reply normally afterwards.
    el1.run_turn();
    el1.flush_and_reap();
    assert_eq!(busy.received_lines(), vec!["q0", "q1", "q2"]);
}
