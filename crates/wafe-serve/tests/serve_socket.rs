//! End-to-end tests over real sockets: many concurrent TCP clients, a
//! Unix-socket client, admission shedding on the wire and the graceful
//! drain. These assert on *completion and content only* — ordering and
//! timing stay in `serve_deterministic.rs` where the clock is virtual.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::Arc;

use wafe_serve::{Limits, Server, ServerConfig};

fn start(limits: Limits) -> Server {
    Server::start(ServerConfig {
        limits,
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind 127.0.0.1:0")
}

#[test]
fn concurrent_tcp_clients_round_trip_without_crosstalk() {
    let server = start(Limits {
        max_sessions: 32,
        ..Limits::default()
    });
    let addr = server.local_addr().unwrap();
    let mut joins = Vec::new();
    for c in 0..16 {
        joins.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut w = stream;
            for i in 0..10 {
                w.write_all(format!("%set v c{c}-{i}\n%echo [set v]\n").as_bytes())
                    .unwrap();
                w.flush().unwrap();
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                assert_eq!(line.trim_end(), format!("c{c}-{i}"), "client {c}");
            }
        }));
    }
    for j in joins {
        j.join().expect("client thread");
    }
    let registry = server.registry();
    assert_eq!(registry.stats().accepted, 16);
    assert_eq!(registry.stats().commands, 320);
    server.drain();
}

#[test]
fn unix_socket_speaks_the_same_protocol() {
    let path = std::env::temp_dir().join(format!("wafe-serve-test-{}.sock", std::process::id()));
    let server = Server::start(ServerConfig {
        tcp: None,
        unix: Some(path.clone()),
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind unix socket");
    let stream = UnixStream::connect(&path).expect("connect unix");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut w = stream;
    w.write_all(b"%echo over-unix\n").unwrap();
    w.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "over-unix");
    server.drain();
    assert!(!path.exists(), "socket file removed after drain");
}

#[test]
fn admission_shed_is_an_explicit_reply_on_the_wire() {
    let server = start(Limits {
        max_sessions: 1,
        ..Limits::default()
    });
    let addr = server.local_addr().unwrap();
    // First client occupies the single slot (a round-trip proves the
    // session is admitted, not just the TCP handshake done).
    let first = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(first.try_clone().unwrap());
    let mut w = first;
    w.write_all(b"%echo in\n").unwrap();
    w.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "in");
    // The second is shed with the reason, then disconnected.
    let second = TcpStream::connect(addr).unwrap();
    let mut r2 = BufReader::new(second);
    let mut shed = String::new();
    r2.read_line(&mut shed).unwrap();
    assert_eq!(shed.trim_end(), "!shed max-sessions");
    shed.clear();
    assert_eq!(r2.read_line(&mut shed).unwrap(), 0, "EOF after the shed");
    assert_eq!(server.registry().stats().shed_admission, 1);
    server.drain();
}

#[test]
fn a_client_command_drains_the_whole_server() {
    let server = start(Limits::default());
    let addr = server.local_addr().unwrap();
    let registry = server.registry();
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut w = stream;
    // Flush-behind-drain ordering is pinned down deterministically in
    // serve_deterministic.rs; on the wire we assert the lifecycle: the
    // work before the drain completes, then the server hangs up.
    w.write_all(b"%echo flushed\n%serve drain\n").unwrap();
    w.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "flushed");
    // …then the server hangs up and every thread exits.
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "EOF after drain");
    server.wait();
    assert!(Arc::strong_count(&registry) >= 1);
    assert_eq!(registry.active(), 0);
    assert!(registry.draining());
}

#[test]
fn one_byte_writes_reassemble_across_park_and_restore_on_the_wire() {
    let server = Server::start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind 127.0.0.1:0");
    let addr = server.local_addr().unwrap();

    // Trickle every byte in its own write(2) so the server sees the
    // lines split across many poll wakeups and partial reads.
    let dribble = |w: &mut TcpStream, bytes: &[u8]| {
        for b in bytes {
            w.write_all(&[*b]).unwrap();
            w.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    };

    let first = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(first.try_clone().unwrap());
    let mut w = first;
    dribble(&mut w, b"%set greeting bonjour\n%session park\n");
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let parked_id = line
        .trim_end()
        .strip_prefix("!parked ")
        .expect("park ack")
        .to_string();
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "EOF after park");

    // A fresh connection dribbles the restore and reads the state back.
    let second = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(second.try_clone().unwrap());
    let mut w = second;
    dribble(
        &mut w,
        format!("%session restore {parked_id}\n%echo [set greeting]\n").as_bytes(),
    );
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), format!("!restored {parked_id}"));
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "bonjour", "state crossed the park intact");

    let stats = server.registry().stats();
    assert_eq!((stats.parked, stats.restored), (1, 1));
    server.drain();
}
