//! Deterministic event-loop tests on the simulated net: scripted byte
//! chunks, scripted accept errors, readiness derived from queue state —
//! no sockets, no threads, no timing. These pin down the transport
//! semantics the real poll(2) backend must share: batched sweeps,
//! chunking-invariant reassembly, accept-error back-off.

use std::sync::mpsc;
use std::sync::Arc;

use wafe_core::Flavor;
use wafe_serve::event_loop::ConnAssign;
use wafe_serve::{
    AcceptLoop, EventLoop, Limits, Mailbox, OutQueue, Registry, Scheduler, SessionId, SimClient,
    SimNet,
};

fn new_loop(registry: &Arc<Registry>, shard: usize, net: &SimNet) -> EventLoop {
    let sched = Scheduler::new(registry.clone(), Flavor::Athena, false);
    EventLoop::new(sched, shard, net.poller())
}

/// Admits a fresh session and attaches a simulated connection for it.
fn attach_client(
    el: &mut EventLoop,
    registry: &Arc<Registry>,
    net: &SimNet,
) -> (SessionId, SimClient) {
    let id = registry.admit("sim/test", 0).expect("admit");
    let (client, io) = net.socketpair();
    el.attach(ConnAssign {
        id,
        io,
        mailbox: Mailbox::new(registry.limits().queue_depth),
        out: OutQueue::new(),
    });
    (id, client)
}

/// One full worker iteration, as server.rs drives it.
fn tick(el: &mut EventLoop) {
    el.poll_io(0);
    el.run_turn();
    el.flush_and_reap();
}

#[test]
fn one_wakeup_drains_every_readable_connection_before_the_scheduler_runs() {
    let registry = Arc::new(Registry::new(Limits::default()));
    let net = SimNet::new();
    let mut el = new_loop(&registry, 0, &net);
    let clients: Vec<SimClient> = (0..3)
        .map(|_| attach_client(&mut el, &registry, &net).1)
        .collect();
    for (i, c) in clients.iter().enumerate() {
        c.send(format!("%echo from-{i}\n").as_bytes());
    }
    // The batched sweep: one poll wakeup moves all three lines into
    // their mailboxes...
    assert_eq!(el.poll_io(0), 3, "all readable conns drained in one wakeup");
    // ...and only then does the scheduler sweep, dispatching all three.
    assert_eq!(el.run_turn(), 3);
    el.flush_and_reap();
    for (i, c) in clients.iter().enumerate() {
        assert_eq!(c.received_lines(), vec![format!("from-{i}")]);
    }
}

#[test]
fn accept_errors_back_off_for_a_tick_and_are_counted() {
    let registry = Arc::new(Registry::new(Limits::default()));
    let net = SimNet::new();
    let (tx, rx) = mpsc::channel();
    let mut accept = AcceptLoop::new(
        registry.clone(),
        vec![net.acceptor()],
        vec![tx],
        net.poller(),
    );
    // The kernel reports EMFILE, then ENFILE, then a real connection is
    // waiting behind them.
    net.push_accept_error(24); // EMFILE
    net.push_accept_error(23); // ENFILE
    let client = net.connect();

    // Tick 1: EMFILE. Counted, loop alive, back-off armed.
    assert_eq!(accept.poll_once(0), 0);
    assert_eq!(registry.stats().accept_errors, 1);
    assert!(accept.backing_off());
    // Tick 2: the back-off tick — the listener is not even polled.
    assert_eq!(accept.poll_once(0), 0);
    assert_eq!(registry.stats().accept_errors, 1, "no accept attempted");
    assert!(!accept.backing_off());
    // Tick 3: ENFILE. Counted again, still alive.
    assert_eq!(accept.poll_once(0), 0);
    assert_eq!(registry.stats().accept_errors, 2);
    // Tick 4: back-off again. Tick 5: the real connection gets in.
    assert_eq!(accept.poll_once(0), 0);
    assert_eq!(accept.poll_once(0), 1, "accepting resumed after back-off");
    assert_eq!(registry.stats().accepted, 1);
    let assign = rx.try_recv().expect("routed to the worker");
    assert_eq!(assign.id.slot, 0);
    drop(assign);
    drop(client);
}

#[test]
fn shed_reply_reaches_the_simulated_client_before_the_close() {
    let registry = Arc::new(Registry::new(Limits {
        max_sessions: 0,
        ..Limits::default()
    }));
    let net = SimNet::new();
    let (tx, _rx) = mpsc::channel();
    let mut accept = AcceptLoop::new(
        registry.clone(),
        vec![net.acceptor()],
        vec![tx],
        net.poller(),
    );
    let client = net.connect();
    assert_eq!(accept.poll_once(0), 0);
    assert_eq!(client.received_lines(), vec!["!shed max-sessions"]);
    assert!(client.is_shutdown());
    assert_eq!(registry.stats().shed_admission, 1);
}

#[test]
fn one_byte_reads_reassemble_byte_identically_across_a_park_and_restore() {
    let registry = Arc::new(Registry::new(Limits::default()));
    let net = SimNet::new();
    let mut el = new_loop(&registry, 0, &net);

    // Phase 1: the first tenant dribbles state-building commands one
    // byte per poll wakeup — every byte is a separate readiness event,
    // a separate read(2), a separate LineAssembler push.
    let (id_a, client_a) = attach_client(&mut el, &registry, &net);
    for b in b"%set greeting salut\n%session park\n" {
        client_a.send(&[*b]);
        tick(&mut el);
    }
    assert_eq!(
        client_a.received_lines(),
        vec![format!("!parked {id_a}")],
        "dribbled park parked the session"
    );
    assert!(client_a.is_shutdown(), "parked session's conn is closed");
    assert!(registry.has_parked(id_a));

    // Phase 2: a new connection dribbles the restore — including the
    // parked id — one byte per wakeup, then asks for the state that
    // crossed the park.
    let (_id_b, client_b) = attach_client(&mut el, &registry, &net);
    for b in format!("%session restore {id_a}\n%echo [set greeting]\n").as_bytes() {
        client_b.send(&[*b]);
        tick(&mut el);
    }
    assert_eq!(
        client_b.received_lines(),
        vec![format!("!restored {id_a}"), "salut".to_string()],
        "reassembled byte-identically across park/restore"
    );
    assert_eq!(registry.stats().restored, 1);
    assert_eq!(registry.stats().restore_miss, 0);
}

#[test]
fn client_eof_finishes_the_session_and_closes_the_connection() {
    let registry = Arc::new(Registry::new(Limits::default()));
    let net = SimNet::new();
    let mut el = new_loop(&registry, 0, &net);
    let (_, client) = attach_client(&mut el, &registry, &net);
    client.send(b"%echo last-words\n");
    client.send_eof();
    tick(&mut el);
    tick(&mut el);
    assert_eq!(client.received_lines(), vec!["last-words"]);
    assert!(client.is_shutdown(), "EOF drains the mailbox then closes");
    assert_eq!(el.conn_count(), 0);
    assert_eq!(registry.active(), 0);
    assert_eq!(registry.stats().closed, 1);
}

#[test]
fn queue_overflow_on_the_sim_transport_sheds_explicitly() {
    let registry = Arc::new(Registry::new(Limits {
        queue_depth: 2,
        quantum: 2,
        ..Limits::default()
    }));
    let net = SimNet::new();
    let mut el = new_loop(&registry, 0, &net);
    let (_, client) = attach_client(&mut el, &registry, &net);
    // Five lines in one chunk against depth 2: two queued, three shed.
    client.send(b"%echo m0\n%echo m1\n%echo m2\n%echo m3\n%echo m4\n");
    el.poll_io(0);
    el.run_turn();
    el.flush_and_reap();
    assert_eq!(
        client.received_lines(),
        vec![
            "m0",
            "m1",
            "!shed queue-full",
            "!shed queue-full",
            "!shed queue-full"
        ]
    );
    assert_eq!(registry.stats().shed_queue, 3);
}
