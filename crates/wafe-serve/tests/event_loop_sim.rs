//! Deterministic event-loop tests on the simulated net: scripted byte
//! chunks, scripted accept errors, readiness derived from queue state —
//! no sockets, no threads, no timing. These pin down the transport
//! semantics the real poll(2) backend must share: batched sweeps,
//! chunking-invariant reassembly, accept-error back-off.

use std::sync::mpsc;
use std::sync::Arc;

use wafe_core::Flavor;
use wafe_serve::event_loop::ConnAssign;
use wafe_serve::{
    AcceptLoop, EventLoop, Limits, Mailbox, OutQueue, Registry, Scheduler, SessionId, SimClient,
    SimNet,
};

fn new_loop(registry: &Arc<Registry>, shard: usize, net: &SimNet) -> EventLoop {
    let sched = Scheduler::new(registry.clone(), Flavor::Athena, false);
    EventLoop::new(sched, shard, net.poller())
}

/// Admits a fresh session and attaches a simulated connection for it.
fn attach_client(
    el: &mut EventLoop,
    registry: &Arc<Registry>,
    net: &SimNet,
) -> (SessionId, SimClient) {
    let id = registry.admit("sim/test", 0).expect("admit");
    let (client, io) = net.socketpair();
    el.attach(ConnAssign {
        id,
        io,
        mailbox: Mailbox::new(registry.limits().queue_depth),
        out: OutQueue::new(),
    });
    (id, client)
}

/// One full worker iteration, as server.rs drives it.
fn tick(el: &mut EventLoop) {
    el.poll_io(0);
    el.run_turn();
    el.flush_and_reap();
}

#[test]
fn one_wakeup_drains_every_readable_connection_before_the_scheduler_runs() {
    let registry = Arc::new(Registry::new(Limits::default()));
    let net = SimNet::new();
    let mut el = new_loop(&registry, 0, &net);
    let clients: Vec<SimClient> = (0..3)
        .map(|_| attach_client(&mut el, &registry, &net).1)
        .collect();
    for (i, c) in clients.iter().enumerate() {
        c.send(format!("%echo from-{i}\n").as_bytes());
    }
    // The batched sweep: one poll wakeup moves all three lines into
    // their mailboxes...
    assert_eq!(el.poll_io(0), 3, "all readable conns drained in one wakeup");
    // ...and only then does the scheduler sweep, dispatching all three.
    assert_eq!(el.run_turn(), 3);
    el.flush_and_reap();
    for (i, c) in clients.iter().enumerate() {
        assert_eq!(c.received_lines(), vec![format!("from-{i}")]);
    }
}

#[test]
fn accept_errors_back_off_for_a_tick_and_are_counted() {
    let registry = Arc::new(Registry::new(Limits::default()));
    let net = SimNet::new();
    let (tx, rx) = mpsc::channel();
    let mut accept = AcceptLoop::new(
        registry.clone(),
        vec![net.acceptor()],
        vec![tx],
        net.poller(),
    );
    // The kernel reports EMFILE, then ENFILE, then a real connection is
    // waiting behind them.
    net.push_accept_error(24); // EMFILE
    net.push_accept_error(23); // ENFILE
    let client = net.connect();

    // Tick 1: EMFILE. Counted, loop alive, back-off armed.
    assert_eq!(accept.poll_once(0), 0);
    assert_eq!(registry.stats().accept_errors, 1);
    assert!(accept.backing_off());
    // Tick 2: the back-off tick — the listener is not even polled.
    assert_eq!(accept.poll_once(0), 0);
    assert_eq!(registry.stats().accept_errors, 1, "no accept attempted");
    assert!(!accept.backing_off());
    // Tick 3: ENFILE. Counted again, still alive.
    assert_eq!(accept.poll_once(0), 0);
    assert_eq!(registry.stats().accept_errors, 2);
    // Tick 4: back-off again. Tick 5: the real connection gets in.
    assert_eq!(accept.poll_once(0), 0);
    assert_eq!(accept.poll_once(0), 1, "accepting resumed after back-off");
    assert_eq!(registry.stats().accepted, 1);
    let assign = rx.try_recv().expect("routed to the worker");
    assert_eq!(assign.id.slot, 0);
    drop(assign);
    drop(client);
}

#[test]
fn shed_reply_reaches_the_simulated_client_before_the_close() {
    let registry = Arc::new(Registry::new(Limits {
        max_sessions: 0,
        ..Limits::default()
    }));
    let net = SimNet::new();
    let (tx, _rx) = mpsc::channel();
    let mut accept = AcceptLoop::new(
        registry.clone(),
        vec![net.acceptor()],
        vec![tx],
        net.poller(),
    );
    let client = net.connect();
    assert_eq!(accept.poll_once(0), 0);
    assert_eq!(client.received_lines(), vec!["!shed max-sessions"]);
    assert!(client.is_shutdown());
    assert_eq!(registry.stats().shed_admission, 1);
}

#[test]
fn one_byte_reads_reassemble_byte_identically_across_a_park_and_restore() {
    let registry = Arc::new(Registry::new(Limits::default()));
    let net = SimNet::new();
    let mut el = new_loop(&registry, 0, &net);

    // Phase 1: the first tenant dribbles state-building commands one
    // byte per poll wakeup — every byte is a separate readiness event,
    // a separate read(2), a separate LineAssembler push.
    let (id_a, client_a) = attach_client(&mut el, &registry, &net);
    for b in b"%set greeting salut\n%session park\n" {
        client_a.send(&[*b]);
        tick(&mut el);
    }
    assert_eq!(
        client_a.received_lines(),
        vec![format!("!parked {id_a}")],
        "dribbled park parked the session"
    );
    assert!(client_a.is_shutdown(), "parked session's conn is closed");
    assert!(registry.has_parked(id_a));

    // Phase 2: a new connection dribbles the restore — including the
    // parked id — one byte per wakeup, then asks for the state that
    // crossed the park.
    let (_id_b, client_b) = attach_client(&mut el, &registry, &net);
    for b in format!("%session restore {id_a}\n%echo [set greeting]\n").as_bytes() {
        client_b.send(&[*b]);
        tick(&mut el);
    }
    assert_eq!(
        client_b.received_lines(),
        vec![format!("!restored {id_a}"), "salut".to_string()],
        "reassembled byte-identically across park/restore"
    );
    assert_eq!(registry.stats().restored, 1);
    assert_eq!(registry.stats().restore_miss, 0);
}

#[test]
fn client_eof_finishes_the_session_and_closes_the_connection() {
    let registry = Arc::new(Registry::new(Limits::default()));
    let net = SimNet::new();
    let mut el = new_loop(&registry, 0, &net);
    let (_, client) = attach_client(&mut el, &registry, &net);
    client.send(b"%echo last-words\n");
    client.send_eof();
    tick(&mut el);
    tick(&mut el);
    assert_eq!(client.received_lines(), vec!["last-words"]);
    assert!(client.is_shutdown(), "EOF drains the mailbox then closes");
    assert_eq!(el.conn_count(), 0);
    assert_eq!(registry.active(), 0);
    assert_eq!(registry.stats().closed, 1);
}

#[test]
fn queue_overflow_on_the_sim_transport_sheds_explicitly() {
    let registry = Arc::new(Registry::new(Limits {
        queue_depth: 2,
        quantum: 2,
        ..Limits::default()
    }));
    let net = SimNet::new();
    let mut el = new_loop(&registry, 0, &net);
    let (_, client) = attach_client(&mut el, &registry, &net);
    // Five lines in one chunk against depth 2: two queued, three shed.
    client.send(b"%echo m0\n%echo m1\n%echo m2\n%echo m3\n%echo m4\n");
    el.poll_io(0);
    el.run_turn();
    el.flush_and_reap();
    assert_eq!(
        client.received_lines(),
        vec![
            "m0",
            "m1",
            "!shed queue-full",
            "!shed queue-full",
            "!shed queue-full"
        ]
    );
    assert_eq!(registry.stats().shed_queue, 3);
}

// ---------------------------------------------------------------------------
// The display channel over the simulated net: attach → damage → frame →
// input event, entirely deterministic and byte-exact. See docs/display.md.

use wafe_display::{from_hex, to_hex, Frame, InputEvent};
use wafe_ipc::FaultPlan;

const SCREEN: u64 = 1024 * 768;

fn frame_lines(client: &SimClient) -> Vec<String> {
    client
        .received_lines()
        .into_iter()
        .filter(|l| l.starts_with("!display frame "))
        .collect()
}

fn decode_frame_line(line: &str) -> Frame {
    let hex = line.strip_prefix("!display frame ").expect("a frame line");
    let bytes = from_hex(hex).expect("valid hex payload");
    let frame = Frame::decode(&bytes).expect("frame decodes");
    // The codec is canonical: re-encoding the decoded frame must
    // reproduce the exact bytes that crossed the simulated wire.
    assert_eq!(frame.encode(), bytes, "encode∘decode identity on the wire");
    frame
}

#[test]
fn display_attach_damage_frame_and_input_event_round_trip() {
    let registry = Arc::new(Registry::new(Limits::default()));
    let net = SimNet::new();
    let mut el = new_loop(&registry, 0, &net);
    let (_, client) = attach_client(&mut el, &registry, &net);

    // Attach: the scheduler ships one full first frame on its next sweep.
    client.send(b"%display attach\n");
    tick(&mut el);
    let frames = frame_lines(&client);
    assert_eq!(frames.len(), 1, "attach ships exactly one initial frame");
    let first = decode_frame_line(&frames[0]);
    assert!(first.full, "the first frame covers the whole screen");
    assert_eq!(first.seq, 1);
    assert_eq!((first.width, first.height), (1024, 768));
    assert_eq!(first.rects.len(), 1);
    assert_eq!(first.rects[0].data.pixel_count(), SCREEN);

    // Realize a widget with a KeyPress translation: the next frame is
    // damage-tracked — only the widget's footprint, not the screen.
    client.send(
        b"%label hello topLevel label {Hello Display} width 120 height 40\n\
          %action hello override {<KeyPress>: exec(echo key-callback-ran)}\n\
          %realize\n",
    );
    tick(&mut el);
    let frames = frame_lines(&client);
    assert_eq!(frames.len(), 2, "one coalesced frame for the whole batch");
    let second = decode_frame_line(&frames[1]);
    assert!(!second.full, "a widget update must not force a full frame");
    assert_eq!(second.seq, 2);
    assert!(!second.rects.is_empty());
    let covered: u64 = second.rects.iter().map(|fr| fr.rect.area()).sum();
    assert!(
        covered < SCREEN / 2,
        "damage-tracked: {covered} of {SCREEN} pixels repainted"
    );
    for fr in &second.rects {
        assert_eq!(fr.data.pixel_count(), fr.rect.area());
    }

    // Input comes back over the same wire: move the pointer into the
    // damaged area, press Return — the widget's translation runs its
    // Tcl callback and the echo output arrives on this client.
    let target = second.rects[0].rect;
    let (cx, cy) = (
        target.x + target.w as i32 / 2,
        target.y + target.h as i32 / 2,
    );
    let motion = InputEvent::Motion { x: cx, y: cy }.encode();
    client.send(format!("%display event {}\n", to_hex(&motion)).as_bytes());
    let key = InputEvent::Key {
        name: "Return".into(),
        modifiers: 0,
    }
    .encode();
    client.send(format!("%display event {}\n", to_hex(&key)).as_bytes());
    tick(&mut el);
    assert!(
        client
            .received_lines()
            .iter()
            .any(|l| l == "key-callback-ran"),
        "the remote key press must fire the Tcl callback: {:?}",
        client.received_lines()
    );
}

#[test]
fn garbled_frame_is_rejected_loudly_and_a_resync_recovers() {
    let registry = Arc::new(Registry::new(Limits::default()));
    let net = SimNet::new();
    let mut el = new_loop(&registry, 0, &net);
    el.scheduler()
        .set_fault_plan(Some(FaultPlan::parse("display:garble@2").unwrap()));
    let (_, client) = attach_client(&mut el, &registry, &net);

    client.send(b"%display attach\n");
    tick(&mut el);
    assert_eq!(frame_lines(&client).len(), 1, "first frame intact");

    client.send(b"%label hello topLevel label Hi\n%realize\n");
    tick(&mut el);
    // The second frame was garbled in flight. The client must reject
    // it — either it no longer looks like a frame line at all, or its
    // payload fails validation — never paint it best-effort.
    let notices: Vec<String> = client
        .received_lines()
        .into_iter()
        .filter(|l| l.starts_with('!'))
        .collect();
    assert_eq!(
        notices.len(),
        2,
        "the garbled frame still arrives as a line"
    );
    let rejected = match notices[1].strip_prefix("!display frame ") {
        None => true,
        Some(hex) => from_hex(hex).and_then(|b| Frame::decode(&b)).is_err(),
    };
    assert!(rejected, "corrupt frame decoded cleanly: {:?}", notices[1]);

    // The recovery path: the client asks for a resync and the next
    // frame is a full repaint that includes the missed widget.
    client.send(b"%display frame\n");
    tick(&mut el);
    let notices: Vec<String> = client
        .received_lines()
        .into_iter()
        .filter(|l| l.starts_with('!'))
        .collect();
    assert_eq!(notices.len(), 3);
    let recovered = decode_frame_line(&notices[2]);
    assert!(recovered.full, "resync ships a full repaint");
    assert_eq!(recovered.seq, 3, "sequence numbers keep counting");
    let r = recovered.rects[0].rect;
    assert_eq!((r.x, r.y, r.w, r.h), (0, 0, 1024, 768));
}
