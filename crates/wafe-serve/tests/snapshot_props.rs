//! Property tests pinning the session snapshot codec — the suite the
//! park/restore machinery leans on.
//!
//! The invariants, each driven by generated states (wafe-prop's
//! deterministic xorshift cases):
//!
//! 1. **Canonical bytes** — `encode(decode(bytes)) == bytes` for every
//!    snapshot captured from a real session: the encoding has exactly
//!    one byte form per state.
//! 2. **Faithful restore** — capturing a restored session re-produces
//!    the original bytes: park → restore → park is a fixed point.
//! 3. **No shimmer** — capture peeks at `Value` dual reps, never forces
//!    one, and cached numeric reps survive the round trip.
//! 4. **Loud failure** — every truncation of a valid blob, and random
//!    garbage, decodes to an error; never a panic, never silent
//!    garbage state.

use wafe_core::{Flavor, SessionSnapshot, WafeSession};
use wafe_prop::{cases, Rng};
use wafe_tcl::snapshot::InterpSnapshot;
use wafe_tcl::value::IntRep;
use wafe_tcl::{Interp, Value};

const NAME_CHARS: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'x', 'y', 'z', '0', '1', '2', '_',
];

fn var_name(rng: &mut Rng, tag: usize) -> String {
    let len = rng.range(1, 8);
    format!("v{tag}_{}", rng.string_from(NAME_CHARS, len))
}

/// A random Value across every representation the codec carries:
/// plain strings (any Unicode), cached ints and doubles, lists —
/// sometimes with the string rep already forced, sometimes not.
fn random_value(rng: &mut Rng, depth: usize) -> Value {
    let v = match rng.below(5) {
        0 => Value::from(rng.unicode_string(0, 12)),
        1 => Value::from(rng.range_i64(-1_000_000, 1_000_000)),
        2 => Value::from((rng.unit_f64() - 0.5) * 1e6),
        3 if depth > 0 => {
            let n = rng.range(0, 4);
            Value::from_list((0..n).map(|_| random_value(rng, depth - 1)).collect())
        }
        _ => Value::from(rng.ascii_string(16)),
    };
    if rng.chance() {
        // Force the string rep so both reps are cached at capture.
        let _ = v.shared_str();
    }
    v
}

fn random_interp(rng: &mut Rng) -> Interp {
    let mut interp = Interp::new();
    for tag in 0..rng.range(0, 10) {
        let name = var_name(rng, tag);
        if rng.chance() {
            for e in 0..rng.range(1, 4) {
                interp
                    .set_elem(&name, &format!("k{e}"), random_value(rng, 1))
                    .unwrap();
            }
        } else {
            interp.set_var(&name, random_value(rng, 2)).unwrap();
        }
    }
    for tag in 0..rng.range(0, 4) {
        interp
            .eval(&format!(
                "proc p{tag} {{x}} {{return [expr {{$x + {tag}}}]}}"
            ))
            .unwrap();
    }
    interp
}

#[test]
fn interp_snapshots_roundtrip_byte_identically() {
    cases(300, |rng| {
        let interp = random_interp(rng);
        let snap = InterpSnapshot::capture(&interp);
        let mut bytes = Vec::new();
        snap.encode_into(&mut bytes);

        // Canonical bytes: decode and re-encode is the identity.
        let mut r = wafe_tcl::snapshot::wire::Reader::new(&bytes);
        let decoded = InterpSnapshot::decode_from(&mut r).unwrap();
        r.done().unwrap();
        let mut again = Vec::new();
        decoded.encode_into(&mut again);
        assert_eq!(again, bytes, "encode ∘ decode must be the identity");

        // Faithful restore: applying to a fresh interp and re-capturing
        // reproduces the same bytes — park → restore → park is a fixed
        // point.
        let mut fresh = Interp::new();
        decoded.apply(&mut fresh);
        let mut third = Vec::new();
        InterpSnapshot::capture(&fresh).encode_into(&mut third);
        assert_eq!(third, bytes, "restore must reproduce the state");
    });
}

#[test]
fn capture_peeks_at_dual_reps_and_never_shimmers() {
    cases(200, |rng| {
        let n = rng.range_i64(-1_000_000_000, 1_000_000_000);
        let mut interp = Interp::new();

        // A pure-int Value whose string rep was never computed: capture
        // must not force it (forcing is the write half of shimmer).
        interp.set_var("lazy", Value::from(n)).unwrap();
        let snap = InterpSnapshot::capture(&interp);
        let lazy = interp.get_var("lazy").unwrap();
        let (s, rep) = lazy.snapshot_parts();
        assert!(s.is_none(), "capture must not force the string rep");
        assert!(matches!(rep, IntRep::Int(v) if v == n));

        // Both-reps-cached values keep the numeric rep through the
        // round trip: reading the restored value as an int must not
        // need a reparse.
        interp.set_var("eager", Value::from(n)).unwrap();
        let _ = interp.get_var("eager").unwrap().shared_str();
        let snap = {
            let _ = snap;
            InterpSnapshot::capture(&interp)
        };
        let mut bytes = Vec::new();
        snap.encode_into(&mut bytes);
        let mut r = wafe_tcl::snapshot::wire::Reader::new(&bytes);
        let decoded = InterpSnapshot::decode_from(&mut r).unwrap();
        let mut fresh = Interp::new();
        decoded.apply(&mut fresh);
        for name in ["lazy", "eager"] {
            let v = fresh.get_var(name).unwrap();
            let (_, rep) = v.snapshot_parts();
            assert!(
                matches!(rep, IntRep::Int(got) if got == n),
                "{name}: int rep must survive the round trip un-shimmered"
            );
            assert_eq!(v.shared_str().as_ref(), n.to_string());
        }
    });
}

/// Whole-session snapshots driven through the Tcl surface: variables,
/// procs, widgets with generated resource text, resource-DB lines and
/// a queued outbound tail.
#[test]
fn session_snapshots_roundtrip_and_restore_faithfully() {
    cases(60, |rng| {
        let mut s = WafeSession::new(Flavor::Athena);
        for tag in 0..rng.range(0, 6) {
            let name = var_name(rng, tag);
            let value = rng.ascii_string(20);
            s.eval(&wafe_tcl::list_join(&["set".into(), name, value]))
                .unwrap();
        }
        for w in 0..rng.range(0, 4) {
            let class = if rng.chance() { "label" } else { "command" };
            let text = rng.ascii_string(12);
            s.eval(&wafe_tcl::list_join(&[
                class.into(),
                format!("w{w}"),
                "topLevel".into(),
                "label".into(),
                text,
            ]))
            .unwrap();
        }
        if rng.chance() {
            s.eval("realize").unwrap();
        }
        let outbound: Vec<String> = (0..rng.range(0, 5)).map(|_| rng.ascii_string(24)).collect();

        let snap = SessionSnapshot::capture(&s, outbound.clone());
        let bytes = snap.encode();
        let decoded = SessionSnapshot::decode(&bytes).unwrap();
        assert_eq!(decoded.encode(), bytes, "canonical bytes");
        assert_eq!(decoded.outbound, outbound, "outbound order preserved");

        let mut fresh = WafeSession::new(Flavor::Athena);
        let report = decoded.restore_into(&mut fresh);
        assert_eq!(report.widgets_skipped, 0, "every record must replay");
        let again = SessionSnapshot::capture(&fresh, outbound).encode();
        assert_eq!(again, bytes, "park → restore → park is a fixed point");
    });
}

#[test]
fn truncations_and_garbage_fail_loudly_never_panic() {
    cases(120, |rng| {
        let mut s = WafeSession::new(Flavor::Athena);
        s.eval("set alpha 1").unwrap();
        s.eval("label sign topLevel label truncate-me").unwrap();
        let bytes = SessionSnapshot::capture(&s, vec!["tail".into()]).encode();

        // Every proper prefix is an error — a length-prefixed format
        // must notice any truncation, at any boundary.
        let cut = rng.range(0, bytes.len());
        assert!(
            SessionSnapshot::decode(&bytes[..cut]).is_err(),
            "truncation at {cut}/{} must be rejected",
            bytes.len()
        );

        // Random garbage never panics; without the magic it must err.
        let garbage: Vec<u8> = (0..rng.range(0, 64))
            .map(|_| rng.below(256) as u8)
            .collect();
        if !garbage.starts_with(b"WAFESNAP") {
            assert!(SessionSnapshot::decode(&garbage).is_err());
        }

        // A single flipped bit in the 12-byte header is always caught
        // by the magic or version check.
        let mut flipped = bytes.clone();
        let bit = rng.range(0, 12 * 8);
        flipped[bit / 8] ^= 1 << (bit % 8);
        assert!(
            SessionSnapshot::decode(&flipped).is_err(),
            "header bit {bit} flip must be rejected"
        );
    });
}
